//! Deterministic fault-injection seam at the engine's job boundary.
//!
//! Chaos testing a long-running daemon needs a way to make one specific
//! variant fail *inside* a worker thread — past the protocol parser, past
//! admission control, inside the clustering job itself — without touching
//! the data path for every other variant. This module is that seam: a
//! process-global "poisoned ε" that [`check`] compares against
//! bit-exactly before each assignment runs. A variant whose ε matches the
//! armed value panics with a recognizable message; every other variant is
//! untouched (the cost on the hot path is one relaxed atomic load per
//! assignment).
//!
//! The seam exists for tests and soak tooling — nothing in the engine or
//! the service arms it on its own. Bit-exact comparison keeps concurrent
//! test binaries honest: armed values are chosen outside any real
//! workload's parameter grid, so an armed seam cannot accidentally fire
//! for unrelated traffic, and [`disarm`] (or the RAII [`ArmedFault`])
//! restores the default.
//!
//! The containment contract under test lives in
//! [`Engine::try_run_prepared_warm`](crate::Engine::try_run_prepared_warm):
//! an injected panic must surface as a typed [`JobPanic`](crate::JobPanic)
//! for that run while the process — dispatcher threads, caches, other
//! connections — stays alive.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::variant::Variant;

/// Sentinel meaning "no fault armed". `u64::MAX` is a NaN bit pattern, and
/// variant ε values are validated finite, so no legitimate variant can
/// ever collide with it.
const DISARMED: u64 = u64::MAX;

static PANIC_EPS_BITS: AtomicU64 = AtomicU64::new(DISARMED);

/// The panic message prefix injected faults carry, so tests can tell an
/// injected panic from a genuine engine bug.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault";

/// Arms the seam: any variant whose ε is bit-exactly `eps` panics at the
/// start of its clustering job. Replaces any previously armed value.
pub fn arm_panic_on_eps(eps: f64) {
    PANIC_EPS_BITS.store(eps.to_bits(), Ordering::SeqCst);
}

/// Disarms the seam (idempotent).
pub fn disarm() {
    PANIC_EPS_BITS.store(DISARMED, Ordering::SeqCst);
}

/// Returns `true` while a fault is armed.
pub fn is_armed() -> bool {
    PANIC_EPS_BITS.load(Ordering::SeqCst) != DISARMED
}

/// RAII guard: arms on construction, disarms on drop — so a panicking test
/// cannot leak an armed fault into tests that run after it.
pub struct ArmedFault;

impl ArmedFault {
    /// Arms the seam for the lifetime of the guard.
    pub fn new(eps: f64) -> Self {
        arm_panic_on_eps(eps);
        ArmedFault
    }
}

impl Drop for ArmedFault {
    fn drop(&mut self) {
        disarm();
    }
}

/// The job-boundary probe: called by the engine worker right before a
/// variant's clustering work. Panics iff the seam is armed for this exact
/// ε.
#[inline]
pub(crate) fn check(variant: Variant) {
    // Relaxed is enough: the seam is test plumbing, and arming happens
    // strictly before the traffic that should observe it.
    let armed = PANIC_EPS_BITS.load(Ordering::Relaxed);
    if armed != DISARMED && variant.eps.to_bits() == armed {
        panic!("{INJECTED_PANIC_PREFIX}: variant {variant} poisoned via vbp fault seam");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All seam tests share one process-global atomic, so they live in a
    // single #[test] to avoid ordering races with the parallel test
    // harness.
    #[test]
    fn arm_fire_and_disarm() {
        assert!(!is_armed());
        check(Variant::new(1.0, 4)); // disarmed: no panic

        {
            let _guard = ArmedFault::new(0.125);
            assert!(is_armed());
            // Non-matching ε passes through even while armed.
            check(Variant::new(1.0, 4));
            let hit = std::panic::catch_unwind(|| check(Variant::new(0.125, 4)));
            let msg = *hit.unwrap_err().downcast::<String>().unwrap();
            assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "{msg}");
        }
        // Guard dropped: disarmed again.
        assert!(!is_armed());
        check(Variant::new(0.125, 4));
    }
}
