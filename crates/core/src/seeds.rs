//! Cluster seed selection — §IV-C's reuse prioritization heuristics.
//!
//! When variant `v_i` reuses the clusters of `v_j`, the order in which old
//! clusters are expanded matters: expanding one cluster can *destroy*
//! others (absorb their points), and a destroyed cluster can no longer be
//! reused wholesale — its points fall through to the from-scratch
//! remainder pass. Prioritizing the clusters most worth keeping maximizes
//! the number of ε-neighborhood searches avoided.

use vbp_dbscan::{ClusterId, ClusterResult};
use vbp_geom::Point2;

/// The §IV-C cluster reuse prioritization techniques, plus `Disabled`
/// (never reuse — the reference DBSCAN behavior, used as the baseline
/// everywhere the paper compares "VariantDBSCAN vs. reference").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReuseScheme {
    /// Do not reuse previous results at all; every variant clusters from
    /// scratch with plain DBSCAN.
    Disabled,
    /// ClusDefault: reuse clusters in the order they were generated.
    ClusDefault,
    /// ClusDensity: highest `|C| / area(MBB(C))` first. The paper's
    /// winner (565% faster than the reference on SW1 at T = 1).
    #[default]
    ClusDensity,
    /// ClusPtsSquared: highest `|C|² / area(MBB(C))` first — biases
    /// toward large clusters; the paper shows it can *lose* to the
    /// reference when it forces low reuse.
    ClusPtsSquared,
}

impl ReuseScheme {
    /// Returns `true` if this scheme reuses previous variant results.
    #[inline]
    pub fn reuses(&self) -> bool {
        !matches!(self, ReuseScheme::Disabled)
    }

    /// Short stable name for reports (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            ReuseScheme::Disabled => "Disabled",
            ReuseScheme::ClusDefault => "ClusDefault",
            ReuseScheme::ClusDensity => "ClusDensity",
            ReuseScheme::ClusPtsSquared => "ClusPtsSquared",
        }
    }

    /// All schemes that actually reuse, in the paper's presentation order.
    pub const REUSING: [ReuseScheme; 3] = [
        ReuseScheme::ClusDefault,
        ReuseScheme::ClusDensity,
        ReuseScheme::ClusPtsSquared,
    ];
}

impl std::fmt::Display for ReuseScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Algorithm 3's `getSeedList`: the cluster ids of `previous`, ordered by
/// the chosen scheme. `points` is the database in the same order the
/// clustering was produced over.
///
/// Returns an empty list for [`ReuseScheme::Disabled`], which makes the
/// caller fall through to clustering everything from scratch.
pub fn seed_list(
    scheme: ReuseScheme,
    previous: &ClusterResult,
    points: &[Point2],
) -> Vec<ClusterId> {
    let k = previous.num_clusters() as u32;
    match scheme {
        ReuseScheme::Disabled => Vec::new(),
        ReuseScheme::ClusDefault => (0..k).collect(),
        ReuseScheme::ClusDensity => sorted_by_score(k, |c| previous.cluster_density(c, points)),
        ReuseScheme::ClusPtsSquared => {
            sorted_by_score(k, |c| previous.cluster_pts_squared(c, points))
        }
    }
}

/// Sorts cluster ids descending by `score`, ties broken by id for
/// determinism.
fn sorted_by_score(k: u32, score: impl Fn(ClusterId) -> f64) -> Vec<ClusterId> {
    let mut scored: Vec<(f64, ClusterId)> = (0..k).map(|c| (score(c), c)).collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbp_dbscan::{Labels, NOISE};

    /// Three clusters:
    ///   0: 4 points in a 1×1 box   (density 4,  |C|²/a = 16)
    ///   1: 9 points in a 9×1 box   (density 1,  |C|²/a = 9)
    ///   2: 2 points in a 0.1×0.1 box (density 200, |C|²/a = 400)
    fn fixture() -> (ClusterResult, Vec<Point2>) {
        let mut points = Vec::new();
        let mut raw = Vec::new();
        for (x, y) in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)] {
            points.push(Point2::new(x, y));
            raw.push(0);
        }
        for i in 0..9 {
            points.push(Point2::new(
                10.0 + i as f64 * 9.0 / 8.0,
                10.0 + (i % 2) as f64,
            ));
            raw.push(1);
        }
        points.push(Point2::new(50.0, 50.0));
        raw.push(2);
        points.push(Point2::new(50.1, 50.1));
        raw.push(2);
        points.push(Point2::new(-100.0, -100.0));
        raw.push(NOISE);
        (ClusterResult::from_labels(Labels::from_raw(raw)), points)
    }

    #[test]
    fn default_scheme_is_generation_order() {
        let (res, pts) = fixture();
        assert_eq!(
            seed_list(ReuseScheme::ClusDefault, &res, &pts),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn density_scheme_prefers_dense_clusters() {
        let (res, pts) = fixture();
        assert_eq!(
            seed_list(ReuseScheme::ClusDensity, &res, &pts),
            vec![2, 0, 1]
        );
    }

    #[test]
    fn pts_squared_scheme_weights_size() {
        let (res, pts) = fixture();
        // |C|²/a: cluster 2 → 400, cluster 0 → 16, cluster 1 → 9.
        assert_eq!(
            seed_list(ReuseScheme::ClusPtsSquared, &res, &pts),
            vec![2, 0, 1]
        );
    }

    #[test]
    fn pts_squared_can_differ_from_density() {
        // A big sparse cluster vs a small dense one: density prefers the
        // small one, |C|²/a prefers the big one.
        let mut points = Vec::new();
        let mut raw = Vec::new();
        // Cluster 0: 100 points over a 10×10 box (density 1, |C|²/a 100).
        for i in 0..100 {
            points.push(Point2::new(
                (i % 10) as f64 * 10.0 / 9.0,
                (i / 10) as f64 * 10.0 / 9.0,
            ));
            raw.push(0);
        }
        // Cluster 1: 3 points in a 0.5×0.5 box (density 12, |C|²/a 36).
        for (x, y) in [(100.0, 100.0), (100.5, 100.0), (100.0, 100.5)] {
            points.push(Point2::new(x, y));
            raw.push(1);
        }
        let res = ClusterResult::from_labels(Labels::from_raw(raw));
        assert_eq!(
            seed_list(ReuseScheme::ClusDensity, &res, &points),
            vec![1, 0]
        );
        assert_eq!(
            seed_list(ReuseScheme::ClusPtsSquared, &res, &points),
            vec![0, 1]
        );
    }

    #[test]
    fn disabled_returns_nothing() {
        let (res, pts) = fixture();
        assert!(seed_list(ReuseScheme::Disabled, &res, &pts).is_empty());
        assert!(!ReuseScheme::Disabled.reuses());
        assert!(ReuseScheme::ClusDensity.reuses());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ReuseScheme::ClusDensity.to_string(), "ClusDensity");
        assert_eq!(ReuseScheme::REUSING.len(), 3);
    }
}
