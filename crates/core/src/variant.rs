//! DBSCAN parameter variants and variant sets (§II-A, §IV-D).

use std::fmt;

use vbp_dbscan::DbscanParams;

/// One parameterized DBSCAN variant `v_i = (v_i^ε, v_i^minpts)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Variant {
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Core-point threshold.
    pub minpts: usize,
}

impl Variant {
    /// Creates a variant.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative/non-finite or `minpts == 0`.
    pub fn new(eps: f64, minpts: usize) -> Self {
        assert!(eps >= 0.0 && eps.is_finite(), "ε must be finite and ≥ 0");
        assert!(minpts >= 1, "minpts must be ≥ 1");
        Self { eps, minpts }
    }

    /// The equivalent [`DbscanParams`].
    pub fn params(&self) -> DbscanParams {
        DbscanParams::new(self.eps, self.minpts)
    }

    /// The §IV-B inclusion criteria: can `self` reuse clusters produced by
    /// `source`? True iff `self.ε ≥ source.ε` and
    /// `self.minpts ≤ source.minpts` — moves under which every existing
    /// cluster can only grow, so copied memberships stay valid.
    ///
    /// A variant can formally reuse an identical variant; callers decide
    /// whether that degenerate case is useful (the engine allows it — the
    /// "reuse" then copies every cluster verbatim, which is exactly right).
    #[inline]
    pub fn can_reuse(&self, source: &Variant) -> bool {
        self.eps >= source.eps && self.minpts <= source.minpts
    }

    /// Parameter distance used by the schedulers to pick the *best* reuse
    /// source among the eligible ones (§IV-D: "smallest difference in
    /// parameters", Figure 3 minimizes the component-wise difference).
    /// Components are normalized by the provided ranges so ε (often ≪ 1)
    /// and minpts (often ≫ 1) weigh equally.
    pub fn param_distance(&self, other: &Variant, eps_range: f64, minpts_range: f64) -> f64 {
        let de = (self.eps - other.eps).abs() / eps_range.max(f64::MIN_POSITIVE);
        let dm =
            (self.minpts as f64 - other.minpts as f64).abs() / minpts_range.max(f64::MIN_POSITIVE);
        de + dm
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Four decimals is plenty for reports; trim trailing zeros so
        // round values print as the paper writes them: `(0.2, 32)`.
        let eps = format!("{:.4}", self.eps);
        let eps = eps.trim_end_matches('0').trim_end_matches('.');
        write!(f, "({eps}, {})", self.minpts)
    }
}

/// An ordered set of variants `V`.
///
/// §IV-D: *"Variants in V are sorted first by non-decreasing ε and then by
/// non-increasing minpts."* Construction enforces that order; element `0`
/// is therefore always the variant with smallest ε and, among those, the
/// largest minpts — the one SchedGreedy clusters from scratch first.
#[derive(Clone, Debug, PartialEq)]
pub struct VariantSet {
    variants: Vec<Variant>,
}

impl VariantSet {
    /// Builds a set from arbitrary variants, sorting them canonically.
    /// Duplicates are kept (the paper's S1 experiment deliberately runs 16
    /// identical variants).
    pub fn new(mut variants: Vec<Variant>) -> Self {
        variants.sort_by(|a, b| {
            a.eps
                .partial_cmp(&b.eps)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.minpts.cmp(&a.minpts))
        });
        Self { variants }
    }

    /// The paper's `V = A × B` notation: the Cartesian product of an ε set
    /// and a minpts set (§V-B).
    ///
    /// ```
    /// use variantdbscan::{Variant, VariantSet};
    ///
    /// let v = VariantSet::cartesian(&[0.1, 0.2], &[1, 2]);
    /// assert_eq!(v.len(), 4);
    /// // Canonical order: ascending ε, then descending minpts.
    /// assert_eq!(v.get(0), Variant::new(0.1, 2));
    /// assert_eq!(v.get(3), Variant::new(0.2, 1));
    /// ```
    pub fn cartesian(eps_values: &[f64], minpts_values: &[usize]) -> Self {
        let mut v = Vec::with_capacity(eps_values.len() * minpts_values.len());
        for &e in eps_values {
            for &m in minpts_values {
                v.push(Variant::new(e, m));
            }
        }
        Self::new(v)
    }

    /// `n` copies of a single variant — the S1 indexing experiment's
    /// workload shape.
    pub fn replicated(variant: Variant, n: usize) -> Self {
        Self::new(vec![variant; n])
    }

    /// Number of variants `|V|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Returns `true` for the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Variant at sorted position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Variant {
        self.variants[i]
    }

    /// The sorted variants.
    #[inline]
    pub fn as_slice(&self) -> &[Variant] {
        &self.variants
    }

    /// Iterates variants in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Variant> + '_ {
        self.variants.iter().copied()
    }

    /// Spread of ε values (for distance normalization); at least
    /// `f64::MIN_POSITIVE`.
    pub fn eps_range(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in &self.variants {
            lo = lo.min(v.eps);
            hi = hi.max(v.eps);
        }
        (hi - lo).max(f64::MIN_POSITIVE)
    }

    /// Spread of minpts values; at least 1.
    pub fn minpts_range(&self) -> f64 {
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for v in &self.variants {
            lo = lo.min(v.minpts);
            hi = hi.max(v.minpts);
        }
        ((hi.saturating_sub(lo)) as f64).max(1.0)
    }

    /// The §IV-D SchedMinpts priority list: for every distinct ε, the
    /// index of the variant with the maximum minpts, ordered by ε. These
    /// are clustered from scratch first to maximize the diversity of reuse
    /// sources.
    pub fn minpts_priority_indices(&self) -> Vec<usize> {
        let mut result: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < self.variants.len() {
            // Canonical order sorts each ε group by descending minpts, so
            // the group's first element is its max-minpts variant.
            result.push(i);
            let eps = self.variants[i].eps;
            while i < self.variants.len() && self.variants[i].eps == eps {
                i += 1;
            }
        }
        result
    }

    /// The maximum fraction of variants that can reuse data given `t`
    /// threads: `f = (|V| − T) / |V|` (§IV-D). At least `1 − f` variants
    /// are clustered from scratch because the first `T` assignments find
    /// nothing completed.
    pub fn max_reuse_fraction(&self, t: usize) -> f64 {
        if self.variants.is_empty() {
            return 0.0;
        }
        (self.variants.len().saturating_sub(t)) as f64 / self.variants.len() as f64
    }
}

impl std::ops::Index<usize> for VariantSet {
    type Output = Variant;
    fn index(&self, i: usize) -> &Variant {
        &self.variants[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ordering() {
        let set = VariantSet::cartesian(&[0.6, 0.2, 0.4], &[20, 32, 24]);
        let v: Vec<(f64, usize)> = set.iter().map(|v| (v.eps, v.minpts)).collect();
        assert_eq!(
            v,
            vec![
                (0.2, 32),
                (0.2, 24),
                (0.2, 20),
                (0.4, 32),
                (0.4, 24),
                (0.4, 20),
                (0.6, 32),
                (0.6, 24),
                (0.6, 20),
            ]
        );
    }

    #[test]
    fn reuse_criteria_match_paper_example() {
        // §IV-D: (0.6, 20) can reuse (0.2, 32) — ε grew, minpts shrank.
        let v = Variant::new(0.6, 20);
        assert!(v.can_reuse(&Variant::new(0.2, 32)));
        assert!(v.can_reuse(&Variant::new(0.6, 24)));
        assert!(v.can_reuse(&Variant::new(0.6, 20))); // identical
        assert!(!v.can_reuse(&Variant::new(0.7, 20))); // ε shrank
        assert!(!v.can_reuse(&Variant::new(0.6, 16))); // minpts grew
    }

    #[test]
    fn param_distance_prefers_componentwise_neighbor() {
        // Figure 3: (0.6, 20) should prefer (0.6, 24) over (0.2, 32).
        let v = Variant::new(0.6, 20);
        let near = Variant::new(0.6, 24);
        let far = Variant::new(0.2, 32);
        let (er, mr) = (0.4, 12.0);
        assert!(v.param_distance(&near, er, mr) < v.param_distance(&far, er, mr));
    }

    #[test]
    fn minpts_priority_list() {
        let set = VariantSet::cartesian(&[0.2, 0.4, 0.6], &[20, 24, 28, 32]);
        let prio = set.minpts_priority_indices();
        let picks: Vec<(f64, usize)> = prio.iter().map(|&i| (set[i].eps, set[i].minpts)).collect();
        assert_eq!(picks, vec![(0.2, 32), (0.4, 32), (0.6, 32)]);
    }

    #[test]
    fn replicated_and_ranges() {
        let set = VariantSet::replicated(Variant::new(0.5, 4), 16);
        assert_eq!(set.len(), 16);
        assert_eq!(set.eps_range(), f64::MIN_POSITIVE);
        assert_eq!(set.minpts_range(), 1.0);
    }

    #[test]
    fn max_reuse_fraction_matches_paper_s3() {
        // |V| = 57, T = 16 ⇒ f = 41/57 ≈ 0.719.
        let set =
            VariantSet::cartesian(&[0.2, 0.3, 0.4], &(10..=100).step_by(5).collect::<Vec<_>>());
        assert_eq!(set.len(), 57);
        assert!((set.max_reuse_fraction(16) - 41.0 / 57.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let set = VariantSet::new(vec![]);
        assert!(set.is_empty());
        assert_eq!(set.max_reuse_fraction(4), 0.0);
        assert!(set.minpts_priority_indices().is_empty());
    }

    #[test]
    #[should_panic(expected = "minpts")]
    fn invalid_variant_rejected() {
        Variant::new(0.5, 0);
    }
}
