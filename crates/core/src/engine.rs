//! The multithreaded VariantDBSCAN execution engine — Algorithm 3's
//! `parallel for` over variants, realized as a completion-driven thread
//! pool over the online schedule of §IV-D.
//!
//! One engine run:
//!
//! 1. bin-sorts the database and builds the two shared R-trees
//!    (`T_low` with the tuned `r`, `T_high` with `r = 1`);
//! 2. spawns `T` workers that repeatedly pull an [`Assignment`] from the
//!    shared [`ScheduleState`] — either "cluster variant `v` from scratch"
//!    or "cluster `v` reusing completed variant `u`";
//! 3. records a [`VariantOutcome`] per variant (timings, reuse fraction,
//!    search counters) and returns everything as a [`RunReport`].
//!
//! The paper's *reference implementation* — sequential DBSCAN, `r = 1`,
//! no reuse — is the same engine under [`EngineConfig::reference`], so
//! every speedup comparison runs identical code paths except for the three
//! optimizations being measured.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use vbp_dbscan::{dbscan_with_scratch, ClusterResult, DbscanScratch};
use vbp_geom::{BinOrder, Point2};
use vbp_rtree::PackedRTree;

use crate::expand::cluster_with_reuse;
use crate::metrics::{ExecutionPath, RunReport, VariantOutcome};
use crate::scheduler::{Assignment, ScheduleState, Scheduler};
use crate::seeds::ReuseScheme;
use crate::variant::VariantSet;

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Worker threads `T`.
    pub threads: usize,
    /// Points per leaf MBB of `T_low` (the paper's `r`; 70–110 works well,
    /// see Figure 4).
    pub r: usize,
    /// Traversal order of the pre-index bin sort.
    pub bin_order: BinOrder,
    /// Thread scheduling heuristic.
    pub scheduler: Scheduler,
    /// Cluster reuse prioritization (or [`ReuseScheme::Disabled`]).
    pub reuse: ReuseScheme,
    /// Keep per-variant [`ClusterResult`]s in the report. Disable for
    /// throughput measurements on huge variant sets.
    pub keep_results: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            r: 80,
            bin_order: BinOrder::Serpentine,
            scheduler: Scheduler::SchedGreedy,
            reuse: ReuseScheme::ClusDensity,
            keep_results: true,
        }
    }
}

impl EngineConfig {
    /// The paper's reference implementation: one thread, `r = 1`, no
    /// reuse (§V-B).
    pub fn reference() -> Self {
        Self {
            threads: 1,
            r: 1,
            bin_order: BinOrder::Serpentine,
            scheduler: Scheduler::SchedGreedy,
            reuse: ReuseScheme::Disabled,
            keep_results: true,
        }
    }

    /// Builder-style setter for `threads`.
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Builder-style setter for `r`.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Builder-style setter for the scheduler.
    pub fn with_scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = s;
        self
    }

    /// Builder-style setter for the reuse scheme.
    pub fn with_reuse(mut self, scheme: ReuseScheme) -> Self {
        self.reuse = scheme;
        self
    }

    /// Builder-style setter for `keep_results`.
    pub fn with_keep_results(mut self, keep: bool) -> Self {
        self.keep_results = keep;
        self
    }
}

/// The VariantDBSCAN engine.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

/// State shared between workers, behind one mutex: the online schedule
/// plus the completed results it hands out as reuse sources.
struct Shared {
    schedule: ScheduleState,
    results: Vec<Option<Arc<ClusterResult>>>,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `r == 0`.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.threads >= 1, "need at least one worker thread");
        assert!(config.r >= 1, "r must be ≥ 1");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Clusters every variant of `variants` over `points`, returning the
    /// full run record. Results are reported in *tree order*; use
    /// [`RunReport::result_in_caller_order`] or the report's
    /// `permutation` to translate back.
    pub fn run(&self, points: &[Point2], variants: &VariantSet) -> RunReport {
        self.run_internal(points, variants, None)
    }

    /// Shared implementation of [`Engine::run`] and
    /// [`Engine::run_with_progress`](crate::progress).
    pub(crate) fn run_internal(
        &self,
        points: &[Point2],
        variants: &VariantSet,
        progress: Option<crossbeam::channel::Sender<crate::progress::ProgressEvent>>,
    ) -> RunReport {
        use crate::progress::ProgressEvent;
        // Reject non-finite coordinates up front: they would otherwise
        // poison MBB arithmetic deep inside the index with a far less
        // actionable failure.
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            panic!("point {bad} has non-finite coordinates: {:?}", points[bad]);
        }
        let build_start = Instant::now();
        let (t_low, permutation) =
            PackedRTree::build_with_order(points, self.config.r, self.config.bin_order);
        let t_high = PackedRTree::from_sorted(t_low.shared_points(), 1);
        let index_build_time = build_start.elapsed();
        if let Some(tx) = &progress {
            let _ = tx.send(ProgressEvent::IndexBuilt {
                seconds: index_build_time.as_secs_f64(),
            });
        }

        let shared = Mutex::new(Shared {
            schedule: ScheduleState::new(
                variants.clone(),
                self.config.scheduler,
                self.config.reuse.reuses(),
            ),
            results: vec![None; variants.len()],
        });
        let outcomes: Mutex<Vec<VariantOutcome>> = Mutex::new(Vec::with_capacity(variants.len()));

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for thread_id in 0..self.config.threads {
                let shared = &shared;
                let outcomes = &outcomes;
                let t_low = &t_low;
                let t_high = &t_high;
                let progress = progress.clone();
                scope.spawn(move || {
                    worker_loop(
                        thread_id,
                        self.config.reuse,
                        variants,
                        t_low,
                        t_high,
                        shared,
                        outcomes,
                        t0,
                        progress,
                    );
                });
            }
        });
        let total_time = t0.elapsed();
        if let Some(tx) = &progress {
            let _ = tx.send(ProgressEvent::Finished {
                variants: variants.len(),
            });
        }

        let mut outcomes = outcomes.into_inner();
        outcomes.sort_by_key(|o| o.index);
        let results = if self.config.keep_results {
            shared
                .into_inner()
                .results
                .into_iter()
                .map(|r| r.expect("every variant must have completed"))
                .collect()
        } else {
            Vec::new()
        };

        RunReport {
            outcomes,
            total_time,
            index_build_time,
            threads: self.config.threads,
            results,
            permutation,
        }
    }
}

/// One worker: pull → cluster → publish, until the schedule drains.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    thread_id: usize,
    reuse: ReuseScheme,
    variants: &VariantSet,
    t_low: &PackedRTree,
    t_high: &PackedRTree,
    shared: &Mutex<Shared>,
    outcomes: &Mutex<Vec<VariantOutcome>>,
    t0: Instant,
    progress: Option<crossbeam::channel::Sender<crate::progress::ProgressEvent>>,
) {
    let mut scratch = DbscanScratch::new();
    loop {
        // Pull an assignment and, if it reuses, the source's result.
        let (assignment, source_result): (Assignment, Option<Arc<ClusterResult>>) = {
            let mut guard = shared.lock();
            let Some(a) = guard.schedule.next_assignment() else {
                return;
            };
            let src = a.reuse_from.map(|u| {
                Arc::clone(
                    guard.results[u]
                        .as_ref()
                        .expect("scheduler handed out an incomplete reuse source"),
                )
            });
            (a, src)
        };

        let variant = variants[assignment.variant];
        let started = t0.elapsed();
        let (result, path) = match (source_result, assignment.reuse_from) {
            (Some(prev), Some(u)) => {
                let source_variant = variants[u];
                let (result, stats) =
                    cluster_with_reuse(t_low, t_high, variant, &prev, source_variant, reuse);
                (
                    result,
                    ExecutionPath::Reused {
                        source: source_variant,
                        stats,
                    },
                )
            }
            _ => {
                let (result, stats) =
                    dbscan_with_scratch(t_low, variant.params(), &mut scratch);
                (result, ExecutionPath::FromScratch(stats))
            }
        };
        let finished = t0.elapsed();

        let outcome = VariantOutcome {
            index: assignment.variant,
            variant,
            thread: thread_id,
            started,
            finished,
            path,
            clusters: result.num_clusters(),
            noise: result.noise_count(),
        };

        {
            let mut guard = shared.lock();
            guard.results[assignment.variant] = Some(Arc::new(result));
            guard.schedule.complete(assignment.variant);
        }
        if let Some(tx) = &progress {
            let _ = tx.send(crate::progress::ProgressEvent::VariantDone(outcome.clone()));
        }
        outcomes.lock().push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;
    use vbp_dbscan::{dbscan, quality_score};

    /// Deterministic blob generator: `k` Gaussian-ish blobs on a grid plus
    /// uniform noise.
    fn blobs(n: usize, k: usize, seed: u64) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let centers: Vec<Point2> = (0..k)
            .map(|_| Point2::new(rnd() * 100.0, rnd() * 100.0))
            .collect();
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    Point2::new(rnd() * 100.0, rnd() * 100.0) // noise
                } else {
                    let c = centers[i % k];
                    Point2::new(c.x + (rnd() - 0.5) * 2.0, c.y + (rnd() - 0.5) * 2.0)
                }
            })
            .collect()
    }

    fn small_grid() -> VariantSet {
        VariantSet::cartesian(&[0.8, 1.2, 1.6], &[4, 8])
    }

    #[test]
    fn engine_clusters_every_variant() {
        let points = blobs(800, 5, 42);
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_r(16));
        let report = engine.run(&points, &small_grid());
        assert_eq!(report.outcomes.len(), 6);
        assert_eq!(report.results.len(), 6);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(report.results[i].num_clusters(), o.clusters);
        }
    }

    #[test]
    fn engine_results_match_direct_dbscan() {
        let points = blobs(600, 4, 7);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(20));
        let report = engine.run(&points, &variants);

        // Compare each variant against a direct DBSCAN over the same tree
        // order using the paper's quality metric.
        let (t_low, _) = PackedRTree::build(&points, 20);
        for (i, v) in variants.iter().enumerate() {
            let direct = dbscan(&t_low, v.params());
            let got = &report.results[i];
            assert_eq!(direct.num_clusters(), got.num_clusters(), "variant {v}");
            assert_eq!(direct.noise_count(), got.noise_count(), "variant {v}");
            let q = quality_score(&direct, got);
            assert!(q.mean_score > 0.99, "variant {v}: quality {}", q.mean_score);
        }
    }

    #[test]
    fn reference_config_never_reuses() {
        let points = blobs(300, 3, 11);
        let engine = Engine::new(EngineConfig::reference());
        let report = engine.run(&points, &small_grid());
        assert_eq!(report.from_scratch_count(), 6);
        assert_eq!(report.mean_fraction_reused(), 0.0);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn first_t_variants_cannot_reuse() {
        // With |V| = 6 and T = 6, every variant starts before anything
        // completes... except workers that start late; at minimum the
        // first assignment per worker before any completion is scratch.
        // The robust invariant: from_scratch ≥ 1 and every reused variant
        // has a source satisfying the inclusion criteria.
        let points = blobs(400, 3, 13);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        let report = engine.run(&points, &variants);
        assert!(report.from_scratch_count() >= 1);
        for o in &report.outcomes {
            if let Some(src) = o.reused_from() {
                assert!(o.variant.can_reuse(&src), "{} reused {}", o.variant, src);
            }
        }
    }

    #[test]
    fn reuse_actually_happens_at_t1() {
        let points = blobs(500, 4, 17);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_r(16)
                .with_reuse(ReuseScheme::ClusDensity),
        );
        let report = engine.run(&points, &small_grid());
        // T = 1 ⇒ only the first variant is from scratch under SchedGreedy.
        assert_eq!(report.from_scratch_count(), 1);
        assert!(report.mean_fraction_reused() > 0.0);
    }

    #[test]
    fn identical_variants_replicate_results() {
        let points = blobs(400, 3, 23);
        let variants = VariantSet::replicated(Variant::new(1.0, 4), 8);
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_r(16));
        let report = engine.run(&points, &variants);
        let first = &report.results[0];
        for r in &report.results[1..] {
            assert_eq!(first.num_clusters(), r.num_clusters());
            assert_eq!(first.noise_count(), r.noise_count());
        }
    }

    #[test]
    fn caller_order_mapping_roundtrips() {
        let points = blobs(200, 2, 31);
        let variants = VariantSet::replicated(Variant::new(1.0, 4), 1);
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        let report = engine.run(&points, &variants);
        let remapped = report.result_in_caller_order(0);
        assert_eq!(remapped.len(), points.len());
        // Label of original point i must equal the tree-order label of its
        // tree position.
        for (tree_idx, &orig) in report.permutation.iter().enumerate() {
            assert_eq!(
                remapped[orig as usize],
                report.results[0].labels().raw(tree_idx as u32)
            );
        }
    }

    #[test]
    fn empty_variant_set() {
        let points = blobs(100, 2, 37);
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let report = engine.run(&points, &VariantSet::new(vec![]));
        assert!(report.outcomes.is_empty());
        assert!(report.results.is_empty());
    }

    #[test]
    fn empty_database() {
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(4));
        let report = engine.run(&[], &small_grid());
        assert_eq!(report.outcomes.len(), 6);
        for r in &report.results {
            assert_eq!(r.len(), 0);
        }
    }

    #[test]
    fn keep_results_false_drops_results() {
        let points = blobs(200, 2, 41);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_r(8)
                .with_keep_results(false),
        );
        let report = engine.run(&points, &small_grid());
        assert!(report.results.is_empty());
        assert_eq!(report.outcomes.len(), 6);
    }

    #[test]
    fn timings_are_monotone_and_cover_threads() {
        let points = blobs(600, 4, 43);
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(16));
        let report = engine.run(&points, &small_grid());
        for o in &report.outcomes {
            assert!(o.finished >= o.started);
            assert!(o.thread < 3);
        }
        assert!(report.total_time >= Duration::from_nanos(0));
        assert!(report.lower_bound() <= report.total_time + Duration::from_millis(50));
    }

    use std::time::Duration;

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_rejected() {
        Engine::new(EngineConfig::default().with_threads(0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_points_rejected() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(4));
        let points = vec![Point2::new(0.0, 0.0), Point2::new(f64::NAN, 1.0)];
        engine.run(&points, &small_grid());
    }

    #[test]
    fn t1_runs_are_fully_deterministic() {
        // At T = 1 the online schedule has no timing dependence, so two
        // runs must produce identical labelings, identical reuse sources,
        // and identical execution paths.
        let points = blobs(700, 4, 77);
        let variants = VariantSet::cartesian(&[0.7, 1.0, 1.3], &[4, 8]);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_r(32)
                .with_reuse(ReuseScheme::ClusDensity),
        );
        let a = engine.run(&points, &variants);
        let b = engine.run(&points, &variants);
        assert_eq!(a.permutation, b.permutation);
        for i in 0..variants.len() {
            assert_eq!(a.results[i], b.results[i], "variant {i}");
            assert_eq!(a.outcomes[i].reused_from(), b.outcomes[i].reused_from());
            assert_eq!(
                matches!(a.outcomes[i].path, ExecutionPath::FromScratch(_)),
                matches!(b.outcomes[i].path, ExecutionPath::FromScratch(_))
            );
        }
    }

    use crate::metrics::ExecutionPath;

    #[test]
    fn stress_many_threads_many_variants() {
        // Far more threads than cores and more variants than threads:
        // exercises the scheduler's contention paths. Every variant must
        // complete exactly once with a valid reuse source.
        let points = blobs(300, 3, 99);
        let eps: Vec<f64> = (1..=10).map(|i| 0.5 + i as f64 * 0.1).collect();
        let variants = VariantSet::cartesian(&eps, &[3, 4, 5, 6, 7]);
        assert_eq!(variants.len(), 50);
        let engine = Engine::new(EngineConfig::default().with_threads(16).with_r(16));
        let report = engine.run(&points, &variants);
        assert_eq!(report.outcomes.len(), 50);
        let mut seen = [false; 50];
        for o in &report.outcomes {
            assert!(!seen[o.index]);
            seen[o.index] = true;
            if let Some(src) = o.reused_from() {
                assert!(o.variant.can_reuse(&src));
            }
        }
    }
}
