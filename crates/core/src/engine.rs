//! The multithreaded VariantDBSCAN execution engine — Algorithm 3's
//! `parallel for` over variants, realized as a completion-driven thread
//! pool over the online schedule of §IV-D.
//!
//! One engine run:
//!
//! 1. bin-sorts the database and builds the two shared R-trees
//!    (`T_low` with the tuned `r`, `T_high` with `r = 1`);
//! 2. spawns `T` workers that repeatedly pull an [`Assignment`] from the
//!    shared [`ScheduleState`] — either "cluster variant `v` from scratch"
//!    or "cluster `v` reusing completed variant `u`";
//! 3. records a [`VariantOutcome`] per variant (timings, reuse fraction,
//!    search counters) and returns everything as a [`RunReport`].
//!
//! # Entry point
//!
//! Every run goes through [`Engine::execute`] with a [`RunRequest`]
//! describing the database (raw points or a [`PreparedIndex`]), the
//! variant set, optional warm reuse sources, the [`TraceLevel`], and an
//! optional progress channel:
//!
//! ```
//! use variantdbscan::{Engine, EngineConfig, RunRequest, VariantSet};
//! use vbp_geom::Point2;
//!
//! let points: Vec<Point2> = (0..100)
//!     .map(|i| Point2::new((i % 10) as f64, (i / 10) as f64))
//!     .collect();
//! let variants = VariantSet::cartesian(&[1.1, 1.5], &[3]);
//! let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(8));
//! let report = engine.execute(&RunRequest::new(&points, &variants)).unwrap();
//! assert_eq!(report.outcomes.len(), 2);
//! ```
//!
//! The pre-consolidation method matrix (`run`/`try_run` ×
//! `prepared` × `warm`) survives as thin deprecated wrappers.
//!
//! # Concurrency structure
//!
//! The paper's premise is that variant-level parallelism keeps `T` threads
//! busy, so the shared state is deliberately split three ways to keep
//! workers off each other's backs:
//!
//! - a **small mutex** guards only the [`ScheduleState`], whose methods
//!   are O(log n) amortized (see the scheduler's incremental best-pair
//!   heap) — the critical section no longer scales with |V|²;
//! - per-variant results are published through `Vec<OnceLock<…>>` slots,
//!   so reuse sources are **read lock-free**: publication happens *before*
//!   the completion is announced under the schedule mutex, which is the
//!   happens-before edge that makes the unsynchronized read safe;
//! - per-variant outcomes stream over an **mpsc channel** instead of a
//!   shared `Mutex<Vec<_>>`, so bookkeeping never contends with pulls.
//!
//! Each worker additionally samples its own lock-wait, schedule-decision,
//! busy, and idle time into [`WorkerStats`] and the per-phase latency
//! [`PhaseHistograms`], and — when the request enables tracing — records
//! typed [`TraceEvent`](crate::trace::TraceEvent)s into a private ring
//! buffer (see [`crate::trace`]), surfaced via [`RunReport::worker_stats`],
//! [`RunReport::phases`], and [`RunReport::trace`].
//!
//! The paper's *reference implementation* — sequential DBSCAN, `r = 1`,
//! no reuse — is the same engine under [`EngineConfig::reference`], so
//! every speedup comparison runs identical code paths except for the three
//! optimizations being measured.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use vbp_dbscan::{dbscan_with_scratch, sharded_dbscan, ClusterResult, DbscanScratch};
use vbp_geom::{BinOrder, Point2, PointId};
use vbp_rtree::traits::shared_points;
use vbp_rtree::{tune_r_sampled, DynamicRTree, PackedRTree, SpatialIndex, TuneReport};
use vbp_store::{Container, IndexSnapshot, StoreError};

use crate::expand::cluster_with_reuse_traced;
use crate::metrics::{ExecutionPath, RunReport, ShardTotals, VariantOutcome, WorkerStats};
use crate::scheduler::{ScheduleState, Scheduler};
use crate::seeds::ReuseScheme;
use crate::trace::{
    PhaseHistograms, TraceEvent, TraceLevel, TraceSnapshot, TraceSource, WorkerTracer,
};
use crate::variant::{Variant, VariantSet};

/// How the engine picks `r` (points per leaf MBB of `T_low`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RChoice {
    /// Use this `r` as given.
    Fixed(usize),
    /// Run a sampled [`tune_r`](vbp_rtree::tune_r) sweep at index-build
    /// time and use the winner. The sweep is capped (sample ≤
    /// [`AUTO_TUNE_MAX_SAMPLE`] points, [`AUTO_TUNE_CANDIDATES`]
    /// candidates, [`AUTO_TUNE_QUERIES`] queries each) so tuning stays well
    /// under one variant's clustering cost; the chosen `r` and the full
    /// [`TuneReport`](vbp_rtree::TuneReport) land in the [`RunReport`].
    Auto,
}

impl std::fmt::Display for RChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RChoice::Fixed(r) => write!(f, "{r}"),
            RChoice::Auto => write!(f, "auto"),
        }
    }
}

/// Largest point sample [`RChoice::Auto`] builds candidate trees over.
pub const AUTO_TUNE_MAX_SAMPLE: usize = 4_096;

/// Candidate `r` values [`RChoice::Auto`] sweeps — a pruned version of
/// [`vbp_rtree::DEFAULT_R_CANDIDATES`] (neighboring values time within
/// noise of each other; fewer builds keeps tuning cheap).
pub const AUTO_TUNE_CANDIDATES: [usize; 5] = [1, 10, 30, 70, 110];

/// ε-queries timed per candidate tree by [`RChoice::Auto`].
pub const AUTO_TUNE_QUERIES: usize = 256;

/// The `r` [`RChoice::Auto`] falls back to when there is nothing to tune
/// against (an empty variant set). Middle of the paper's good band.
pub const AUTO_TUNE_FALLBACK_R: usize = 80;

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Worker threads `T`.
    pub threads: usize,
    /// Points per leaf MBB of `T_low` (the paper's `r`; 70–110 works well,
    /// see Figure 4), or [`RChoice::Auto`] to tune it at index-build time.
    pub r: RChoice,
    /// Traversal order of the pre-index bin sort.
    pub bin_order: BinOrder,
    /// Thread scheduling heuristic.
    pub scheduler: Scheduler,
    /// Cluster reuse prioritization (or [`ReuseScheme::Disabled`]).
    pub reuse: ReuseScheme,
    /// Keep per-variant [`ClusterResult`]s in the report. Disable for
    /// throughput measurements on huge variant sets.
    pub keep_results: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            r: RChoice::Fixed(80),
            bin_order: BinOrder::Serpentine,
            scheduler: Scheduler::SchedGreedy,
            reuse: ReuseScheme::ClusDensity,
            keep_results: true,
        }
    }
}

impl EngineConfig {
    /// The paper's reference implementation: one thread, `r = 1`, no
    /// reuse (§V-B).
    pub fn reference() -> Self {
        Self {
            threads: 1,
            r: RChoice::Fixed(1),
            bin_order: BinOrder::Serpentine,
            scheduler: Scheduler::SchedGreedy,
            reuse: ReuseScheme::Disabled,
            keep_results: true,
        }
    }

    /// Builder-style setter for `threads`.
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Builder-style setter for a fixed `r`.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = RChoice::Fixed(r);
        self
    }

    /// Builder-style switch to [`RChoice::Auto`]: tune `r` empirically at
    /// index-build time.
    pub fn with_auto_r(mut self) -> Self {
        self.r = RChoice::Auto;
        self
    }

    /// Builder-style setter for the scheduler.
    pub fn with_scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = s;
        self
    }

    /// Builder-style setter for the reuse scheme.
    pub fn with_reuse(mut self, scheme: ReuseScheme) -> Self {
        self.reuse = scheme;
        self
    }

    /// Builder-style setter for `keep_results`.
    pub fn with_keep_results(mut self, keep: bool) -> Self {
        self.keep_results = keep;
        self
    }
}

/// A failed [`Engine::execute`] run, as one typed error.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A database point has a NaN or infinite coordinate. Rejected up
    /// front because it would otherwise poison MBB arithmetic deep inside
    /// the index with a far less actionable failure.
    NonFinitePoint {
        /// Index of the offending point in the caller's order.
        index: usize,
        /// The offending point.
        point: Point2,
    },
    /// A clustering job panicked inside a worker; the panic was contained
    /// and the run failed as a unit (see [`JobPanic`]). The engine and any
    /// prepared index stay fully usable.
    JobPanic(JobPanic),
    /// A warm source's result covers a different database size than the
    /// run's index, so its labels cannot be meaningful here.
    WarmSourceMismatch {
        /// The offending warm source's variant.
        variant: Variant,
        /// Points in the run's index.
        expected: usize,
        /// Points the warm result actually covers.
        got: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NonFinitePoint { index, point } => {
                write!(f, "point {index} has non-finite coordinates: {point:?}")
            }
            EngineError::JobPanic(p) => write!(f, "{p}"),
            EngineError::WarmSourceMismatch {
                variant,
                expected,
                got,
            } => write!(
                f,
                "warm source {variant} covers a different database: \
                 {got} points vs the index's {expected}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<JobPanic> for EngineError {
    fn from(p: JobPanic) -> Self {
        EngineError::JobPanic(p)
    }
}

/// A clustering job panicked inside a worker thread.
///
/// Workers contain per-assignment panics with `catch_unwind`: the first
/// panic poisons the schedule (no further assignments are handed out),
/// every worker drains, and the run fails as a unit with this typed
/// error instead of unwinding through the caller. The service layer maps
/// it to `ERR internal` for the affected request(s) while its dispatcher,
/// queue, and cache stay live.
#[derive(Clone, Debug, PartialEq)]
pub struct JobPanic {
    /// The variant whose job panicked.
    pub variant: Variant,
    /// The panic payload, rendered as a string.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "clustering job for variant {} panicked: {}",
            self.variant, self.message
        )
    }
}

impl std::error::Error for JobPanic {}

/// Renders a caught panic payload for [`JobPanic::message`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".into(),
        },
    }
}

/// A prebuilt, reusable index pair over one point database.
///
/// Rebuilding `T_low`/`T_high` on every run is fine for one-shot sweeps
/// but wasteful for a long-running service answering many variant
/// requests against the same datasets. `PreparedIndex` hoists the bin
/// sort, the (optional) `r` auto-tune, and both tree builds out of the
/// run loop: build once with [`Engine::prepare`], then execute any number
/// of [`RunRequest::prepared`] runs. Runs over a prepared index report
/// `index_build_time == 0` — the build cost lives in
/// [`PreparedIndex::build_time`], amortized across every run that shares
/// the handle.
#[derive(Clone, Debug)]
pub struct PreparedIndex {
    t_low: PackedRTree,
    t_high: PackedRTree,
    permutation: Vec<PointId>,
    chosen_r: usize,
    tune: Option<TuneReport>,
    build_time: Duration,
    /// Caller-order insertion-capable mirror, materialized on the first
    /// [`Engine::append_to_prepared`] and maintained incrementally after.
    dynamic: Option<DynamicRTree>,
    /// Points appended (at the tree tail, outside bin order) since the
    /// last full bin sort — the maintain-vs-resort policy input.
    appended_since_sort: usize,
}

impl PreparedIndex {
    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// Returns `true` for an index over the empty database.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.permutation.is_empty()
    }

    /// The tuned-`r` tree used for ε-neighborhood searches.
    #[inline]
    pub fn t_low(&self) -> &PackedRTree {
        &self.t_low
    }

    /// The `r = 1` tree used for cluster-MBB harvests.
    #[inline]
    pub fn t_high(&self) -> &PackedRTree {
        &self.t_high
    }

    /// Permutation mapping tree order → caller point order.
    #[inline]
    pub fn permutation(&self) -> &[PointId] {
        &self.permutation
    }

    /// The `r` the index was actually built with.
    #[inline]
    pub fn chosen_r(&self) -> usize {
        self.chosen_r
    }

    /// The auto-tuning sweep record, when [`RChoice::Auto`] ran.
    pub fn tune(&self) -> Option<&TuneReport> {
        self.tune.as_ref()
    }

    /// Wall time spent bin-sorting, tuning, and building both trees,
    /// plus any streaming maintenance applied since.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The caller-order [`DynamicRTree`] mirror, present once the handle
    /// has been through at least one [`Engine::append_to_prepared`].
    /// Point ids in this tree ARE caller ids, so `id < old_len` tells an
    /// original point from an appended one — the affected-ε-region test
    /// the service's cache repair runs.
    pub fn dynamic(&self) -> Option<&DynamicRTree> {
        self.dynamic.as_ref()
    }

    /// Points appended at the tree tail since the last full bin sort.
    /// Zero for a freshly prepared (or freshly re-sorted) handle.
    pub fn appended_since_sort(&self) -> usize {
        self.appended_since_sort
    }

    /// The accumulated database in the caller's original point order
    /// (inverts [`PreparedIndex::permutation`]).
    pub fn caller_points(&self) -> Vec<Point2> {
        let tree_points = self.t_low.shared_points();
        let mut caller = vec![Point2::new(0.0, 0.0); self.permutation.len()];
        for (tree_idx, &orig) in self.permutation.iter().enumerate() {
            caller[orig as usize] = tree_points[tree_idx];
        }
        caller
    }

    /// Writes this handle's complete warm state into `w` as one
    /// checksummed [`vbp_store`] container: the tree-order points, the
    /// permutation, the tuned-`r` report, and the append generation
    /// counter. [`PreparedIndex::restore`] on those bytes skips the bin
    /// sort and the auto-tune sweep entirely and re-derives both packed
    /// trees from the stored order in O(n).
    ///
    /// The caller-order [`DynamicRTree`] mirror is *not* serialized —
    /// a restored handle has [`PreparedIndex::dynamic`] `== None` and
    /// the first append rematerializes it, exactly like a freshly
    /// prepared handle. Callers that want a clean generation on disk
    /// should flush a dirty tail through [`Engine::resort_prepared`]
    /// first; snapshotting a dirty handle is still correct (the counter
    /// round-trips), it just persists tail-degraded query locality.
    pub fn snapshot<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.snapshot_bytes())
    }

    /// [`PreparedIndex::snapshot`] into an owned buffer.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.to_snapshot().encode()
    }

    /// This handle's warm state as plain store data, ready to embed in
    /// a dataset file.
    pub fn to_snapshot(&self) -> IndexSnapshot {
        IndexSnapshot {
            points: self.t_low.shared_points(),
            permutation: self.permutation.clone(),
            chosen_r: self.chosen_r,
            fanout: self.t_low.fanout(),
            tune: self.tune.clone(),
            build_time_ns: self.build_time.as_nanos().min(u128::from(u64::MAX)) as u64,
            appended_since_sort: self.appended_since_sort as u64,
        }
    }

    /// Rebuilds a handle from [`PreparedIndex::snapshot`] bytes without
    /// bin-sorting or tuning — the store's near-instant warm restart.
    /// Total on arbitrary input: every checksum, length, and
    /// permutation invariant is validated and any violation comes back
    /// as a typed [`StoreError`], never a panic and never an index that
    /// could drop neighbors.
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, StoreError> {
        let container = Container::read_from(r)?;
        Self::restore_container(&container)
    }

    /// [`PreparedIndex::restore`] over an already-parsed container.
    pub fn restore_container(container: &Container) -> Result<Self, StoreError> {
        // Decode has already proven every invariant `from_snapshot`
        // re-checks, so the trusted constructor applies directly.
        Ok(Self::from_snapshot_trusted(
            IndexSnapshot::decode_container(container)?,
        ))
    }

    /// Rebuilds a handle from decoded snapshot data.
    ///
    /// Both packed trees are *derived* from the stored tree-order
    /// points — `PackedRTree::from_sorted_with_fanout` is the single
    /// construction path fresh prepares, maintained appends, and
    /// re-sorts all go through, so the derived trees are bit-identical
    /// to the ones that were snapshotted, in every append-generation
    /// state. Deriving (instead of trusting level MBBs from disk) also
    /// closes the one hole checksums cannot: a CRC-valid but *crafted*
    /// file whose boxes fail to cover their points would silently drop
    /// neighbors; boxes computed from the validated points cannot.
    ///
    /// The snapshot's fields are re-validated here (decode already
    /// guarantees them, but the struct is plain public data), so this
    /// is total even on a hand-built snapshot.
    pub fn from_snapshot(snap: IndexSnapshot) -> Result<Self, StoreError> {
        let malformed = |section: u32, reason: String| StoreError::Malformed { section, reason };
        let n = snap.points.len();
        if snap.chosen_r < 1 {
            return Err(malformed(
                vbp_store::section_id::INDEX_META,
                format!("bad r {}", snap.chosen_r),
            ));
        }
        if snap.fanout < 2 {
            return Err(malformed(
                vbp_store::section_id::INDEX_META,
                format!("bad fanout {}", snap.fanout),
            ));
        }
        if snap.appended_since_sort > n as u64 {
            return Err(malformed(
                vbp_store::section_id::INDEX_META,
                format!(
                    "append generation {} exceeds {n} points",
                    snap.appended_since_sort
                ),
            ));
        }
        if snap.permutation.len() != n {
            return Err(malformed(
                vbp_store::section_id::PERMUTATION,
                format!("{} entries for {n} points", snap.permutation.len()),
            ));
        }
        let mut seen = vec![false; n];
        for &i in &snap.permutation {
            match seen.get_mut(i as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => {
                    return Err(malformed(
                        vbp_store::section_id::PERMUTATION,
                        format!("permutation is not a bijection (entry {i})"),
                    ))
                }
            }
        }
        if let Some(bad) = snap.points.iter().position(|p| !p.is_finite()) {
            return Err(malformed(
                vbp_store::section_id::POINTS,
                format!("point {bad} has non-finite coordinates"),
            ));
        }
        Ok(Self::from_snapshot_trusted(snap))
    }

    /// Dataset size from which the two tree derivations run on separate
    /// threads — below this the spawn overhead eats the win.
    const PARALLEL_RESTORE_MIN: usize = 8 * 1024;

    /// [`PreparedIndex::from_snapshot`] minus the validation pass, for
    /// callers (decode, `from_snapshot` itself) that have already proven
    /// `chosen_r ≥ 1`, `fanout ≥ 2`, a bijective permutation covering
    /// the points, finite coordinates, and a bounded append counter.
    fn from_snapshot_trusted(snap: IndexSnapshot) -> Self {
        let IndexSnapshot {
            points,
            permutation,
            chosen_r,
            fanout,
            tune,
            build_time_ns,
            appended_since_sort,
        } = snap;
        let shared = points;
        let xs: Arc<[f64]> = shared.iter().map(|p| p.x).collect();
        let ys: Arc<[f64]> = shared.iter().map(|p| p.y).collect();
        let (t_low, t_high) = if shared.len() >= Self::PARALLEL_RESTORE_MIN {
            std::thread::scope(|s| {
                let (hp, hx, hy) = (Arc::clone(&shared), Arc::clone(&xs), Arc::clone(&ys));
                let high =
                    s.spawn(move || PackedRTree::from_sorted_with_coords(hp, 1, fanout, hx, hy));
                let t_low = PackedRTree::from_sorted_with_coords(shared, chosen_r, fanout, xs, ys);
                (t_low, high.join().expect("tree derivation does not panic"))
            })
        } else {
            let t_low = PackedRTree::from_sorted_with_coords(shared, chosen_r, fanout, xs, ys);
            let t_high = high_tree_for(&t_low);
            (t_low, t_high)
        };
        Self {
            t_low,
            t_high,
            permutation,
            chosen_r,
            tune,
            build_time: Duration::from_nanos(build_time_ns),
            dynamic: None,
            appended_since_sort: appended_since_sort as usize,
        }
    }

    /// Maps a tree-order clustering of this index back to the caller's
    /// original point order (raw label values, noise included).
    pub fn labels_in_caller_order(&self, result: &ClusterResult) -> Vec<u32> {
        assert_eq!(
            result.len(),
            self.permutation.len(),
            "result covers a different database"
        );
        let mut remapped = vec![0u32; result.len()];
        for (tree_idx, &orig) in self.permutation.iter().enumerate() {
            remapped[orig as usize] = result.labels().raw(tree_idx as PointId);
        }
        remapped
    }
}

/// The `r = 1` companion tree (`T_high`) over an existing tree's point
/// order, reusing its SoA coordinate mirror instead of re-collecting
/// two `f64` arrays — the pair always shares one point order, so the
/// mirror is materialized exactly once per index.
fn high_tree_for(t_low: &PackedRTree) -> PackedRTree {
    let (xs, ys) = t_low.shared_coords();
    PackedRTree::from_sorted_with_coords(t_low.shared_points(), 1, t_low.fanout(), xs, ys)
}

/// Unsorted-tail fraction above which [`Engine::append_to_prepared`]
/// re-sorts the whole handle instead of maintaining the packed arrays in
/// place. Appends land at the tail of tree order (outside bin order), so
/// query locality degrades with the tail; a quarter of the dataset is
/// where the one-off O(n log n) re-sort starts paying for itself.
pub const APPEND_RESORT_FRACTION: f64 = 0.25;

/// Record of one [`Engine::append_to_prepared`] batch.
#[derive(Clone, Copy, Debug)]
pub struct AppendReport {
    /// Points inserted by this batch.
    pub appended: usize,
    /// Dataset size after the batch.
    pub total: usize,
    /// Whether the handle crossed [`APPEND_RESORT_FRACTION`] and was
    /// rebuilt with a full bin sort (tail reset to zero).
    pub resorted: bool,
    /// Wall time spent maintaining or re-sorting the handle.
    pub time: Duration,
}

/// An externally completed clustering offered to a run as a reuse source
/// — the unit the service's cross-run dominance cache feeds back into
/// warm [`RunRequest`]s. The result must be in the *tree order* of the
/// prepared index the warm run executes against (which it is, when it
/// came out of a previous run over the same handle).
#[derive(Clone, Debug)]
pub struct WarmSource {
    /// The variant the cached result was clustered with.
    pub variant: Variant,
    /// Its clustering, in the prepared index's tree order.
    pub result: Arc<ClusterResult>,
}

/// The database a [`RunRequest`] executes over.
#[derive(Clone, Copy, Debug)]
pub enum RunSource<'a> {
    /// Raw points: the run builds its own index pair and reports the
    /// build cost in [`RunReport::index_build_time`].
    Points(&'a [Point2]),
    /// A prebuilt index: the run reports `index_build_time == 0` (the
    /// cost is amortized in [`PreparedIndex::build_time`]).
    Prepared(&'a PreparedIndex),
}

/// Intra-variant sharding policy for a [`RunRequest`] — the engine's
/// second placement level.
///
/// Variant-level parallelism (the paper's axis) caps a run's makespan at
/// its *largest variant*: one huge variant keeps one worker busy while
/// the rest idle. When a request opts in via [`RunRequest::sharding`],
/// the engine places work on two levels instead:
///
/// - **wide runs** (dataset at least [`Sharding::min_points`] points)
///   trade variant-parallel workers for shard teams — each from-scratch
///   clustering executes as [`vbp_dbscan::sharded_dbscan`] over `shards`
///   ε-halo'd spatial shards, with a team of `min(shards, threads)`
///   threads, and the engine spawns `threads / team` outer workers so
///   the two levels multiply back to the configured thread budget;
/// - **narrow runs** pack variant-parallel exactly as before — sharding
///   tiny variants would pay partition/merge overhead for no win.
///
/// Sharding never changes results: shard-merged labels are bit-identical
/// to the unsharded kernel at every shard count and thread interleaving
/// (see `vbp_dbscan::sharded`), and reuse-path assignments are untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sharding {
    shards: usize,
    min_points: usize,
}

impl Sharding {
    /// Default width gate: datasets below this many points stay on the
    /// packed variant-parallel path.
    pub const DEFAULT_MIN_POINTS: usize = 4_096;

    /// Policy with `shards` spatial shards per wide variant and the
    /// default width gate.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Sharding {
        assert!(shards >= 1, "need at least one shard");
        Sharding {
            shards,
            min_points: Self::DEFAULT_MIN_POINTS,
        }
    }

    /// Overrides the width gate: datasets with fewer points than this
    /// run unsharded.
    pub fn with_min_points(mut self, min_points: usize) -> Sharding {
        self.min_points = min_points;
        self
    }

    /// Shards per wide variant.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The width gate (minimum dataset size to shard).
    pub fn min_points(&self) -> usize {
        self.min_points
    }
}

/// Resolved per-run placement: how many shards each from-scratch
/// clustering splits into and how many threads its team gets.
#[derive(Clone, Copy, Debug)]
struct ShardPlan {
    shards: usize,
    team: usize,
}

/// One engine run, described declaratively: the database, the variant
/// set, and the run's options — warm reuse sources, [`TraceLevel`], and
/// an optional progress channel. The builder replaces the former
/// `run`/`try_run` × `prepared` × `warm` method matrix:
///
/// ```no_run
/// # use variantdbscan::{Engine, RunRequest, TraceLevel, VariantSet};
/// # fn demo(engine: &Engine, points: &[vbp_geom::Point2], variants: &VariantSet) {
/// let report = engine
///     .execute(&RunRequest::new(points, variants).trace(TraceLevel::Spans))
///     .unwrap();
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RunRequest<'a> {
    source: RunSource<'a>,
    variants: &'a VariantSet,
    warm: &'a [WarmSource],
    trace: TraceLevel,
    progress: Option<mpsc::Sender<crate::progress::ProgressEvent>>,
    sharding: Option<Sharding>,
}

impl<'a> RunRequest<'a> {
    /// A run over raw `points` (index built per run).
    pub fn new(points: &'a [Point2], variants: &'a VariantSet) -> RunRequest<'a> {
        Self::from_source(RunSource::Points(points), variants)
    }

    /// A run over a prebuilt [`PreparedIndex`].
    pub fn prepared(index: &'a PreparedIndex, variants: &'a VariantSet) -> RunRequest<'a> {
        Self::from_source(RunSource::Prepared(index), variants)
    }

    /// A run over an explicit [`RunSource`].
    pub fn from_source(source: RunSource<'a>, variants: &'a VariantSet) -> RunRequest<'a> {
        RunRequest {
            source,
            variants,
            warm: &[],
            trace: TraceLevel::Off,
            progress: None,
            sharding: None,
        }
    }

    /// Seeds the schedule with warm reuse sources: clusterings completed
    /// by earlier runs over the same index (the service's cross-run
    /// cache). Warm sources compete with in-run completions under the
    /// normal greedy rule; assignments that reuse one are flagged
    /// [`VariantOutcome::warm`] and counted by [`RunReport::warm_hits`].
    pub fn warm(mut self, sources: &'a [WarmSource]) -> RunRequest<'a> {
        self.warm = sources;
        self
    }

    /// Sets the run's [`TraceLevel`] (default [`TraceLevel::Off`]). Any
    /// enabled level makes the report carry a [`RunReport::trace`]
    /// snapshot.
    pub fn trace(mut self, level: TraceLevel) -> RunRequest<'a> {
        self.trace = level;
        self
    }

    /// Streams [`ProgressEvent`](crate::progress::ProgressEvent)s into
    /// `tx` while the run executes.
    pub fn progress(mut self, tx: mpsc::Sender<crate::progress::ProgressEvent>) -> RunRequest<'a> {
        self.progress = Some(tx);
        self
    }

    /// The request's database source.
    pub fn source(&self) -> &RunSource<'a> {
        &self.source
    }

    /// The request's variant set.
    pub fn variants(&self) -> &'a VariantSet {
        self.variants
    }

    /// The request's warm reuse sources.
    pub fn warm_sources(&self) -> &'a [WarmSource] {
        self.warm
    }

    /// Opts the run into intra-variant sharding (default off): wide
    /// variants execute as shard teams under the given [`Sharding`]
    /// policy, narrow ones pack variant-parallel as before. Labels are
    /// unaffected — only placement changes.
    pub fn sharding(mut self, policy: Sharding) -> RunRequest<'a> {
        self.sharding = Some(policy);
        self
    }

    /// The request's trace level.
    pub fn trace_level(&self) -> TraceLevel {
        self.trace
    }

    /// The request's sharding policy, if opted in.
    pub fn sharding_policy(&self) -> Option<Sharding> {
        self.sharding
    }
}

/// The VariantDBSCAN engine.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `r == 0`.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.threads >= 1, "need at least one worker thread");
        if let RChoice::Fixed(r) = config.r {
            assert!(r >= 1, "r must be ≥ 1");
        }
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Executes one [`RunRequest`]: clusters every variant over the
    /// request's database, returning the full run record. Results are
    /// reported in *tree order*; use [`RunReport::result_in_caller_order`]
    /// or the report's `permutation` to translate back.
    ///
    /// All failures are typed: invalid points
    /// ([`EngineError::NonFinitePoint`]), mismatched warm sources
    /// ([`EngineError::WarmSourceMismatch`]), and contained job panics
    /// ([`EngineError::JobPanic`] — the schedule is aborted on the first
    /// panic, every worker drains, and the engine plus any prepared index
    /// stay fully usable). This method never unwinds on engine-side
    /// failures.
    pub fn execute(&self, request: &RunRequest<'_>) -> Result<RunReport, EngineError> {
        let variants = request.variants;
        let prepared_local;
        let (index, build_time) = match request.source {
            RunSource::Points(points) => {
                if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
                    return Err(EngineError::NonFinitePoint {
                        index: bad,
                        point: points[bad],
                    });
                }
                prepared_local = self.prepare_unchecked(points, representative_eps(variants));
                if let Some(tx) = &request.progress {
                    let _ = tx.send(crate::progress::ProgressEvent::IndexBuilt {
                        seconds: prepared_local.build_time.as_secs_f64(),
                    });
                }
                (&prepared_local, prepared_local.build_time)
            }
            RunSource::Prepared(index) => (index, Duration::ZERO),
        };
        for w in request.warm {
            if w.result.len() != index.len() {
                return Err(EngineError::WarmSourceMismatch {
                    variant: w.variant,
                    expected: index.len(),
                    got: w.result.len(),
                });
            }
        }
        // One-shot runs own their index, so they pay (and report) its
        // construction; prepared runs amortize it and report zero.
        let mut report = self.run_scheduled(
            index,
            variants,
            request.warm,
            request.progress.clone(),
            request.trace,
            request.sharding,
        )?;
        report.index_build_time = build_time;
        Ok(report)
    }

    /// Clusters every variant of `variants` over `points`.
    ///
    /// # Panics
    ///
    /// Panics on any [`EngineError`], including contained job panics —
    /// the legacy contract. Use [`Engine::execute`] for typed errors.
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::execute(&RunRequest::new(points, variants))`"
    )]
    pub fn run(&self, points: &[Point2], variants: &VariantSet) -> RunReport {
        match self.execute(&RunRequest::new(points, variants)) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like the legacy `run`, but returns invalid input as an
    /// [`EngineError`] instead of panicking. A contained job panic still
    /// propagates as a panic (the legacy contract).
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::execute(&RunRequest::new(points, variants))`"
    )]
    pub fn try_run(
        &self,
        points: &[Point2],
        variants: &VariantSet,
    ) -> Result<RunReport, EngineError> {
        match self.execute(&RunRequest::new(points, variants)) {
            Ok(report) => Ok(report),
            Err(EngineError::JobPanic(p)) => panic!("{p}"),
            Err(e) => Err(e),
        }
    }

    /// Builds the two shared R-trees (and runs the [`RChoice::Auto`]
    /// sweep, when configured) over `points` without clustering anything,
    /// returning a handle that any number of [`RunRequest::prepared`]
    /// runs can share. `representative_eps` feeds the auto-tuner; pass
    /// `None` to fall back to [`AUTO_TUNE_FALLBACK_R`] (a fixed `r`
    /// ignores it entirely).
    pub fn prepare(
        &self,
        points: &[Point2],
        representative_eps: Option<f64>,
    ) -> Result<PreparedIndex, EngineError> {
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(EngineError::NonFinitePoint {
                index: bad,
                point: points[bad],
            });
        }
        Ok(self.prepare_unchecked(points, representative_eps))
    }

    /// [`Engine::prepare`] minus the finiteness check (already done by
    /// [`Engine::execute`] on the raw-points path).
    fn prepare_unchecked(&self, points: &[Point2], eps_hint: Option<f64>) -> PreparedIndex {
        // Tuning (when enabled) is part of index construction: it runs
        // once per prepare, before any variant, and its cost is reported
        // in `build_time`.
        let build_start = Instant::now();
        let (chosen_r, tune) = match self.config.r {
            RChoice::Fixed(r) => (r, None),
            RChoice::Auto => match eps_hint {
                Some(eps) => {
                    let report = tune_r_sampled(
                        points,
                        eps,
                        AUTO_TUNE_MAX_SAMPLE,
                        &AUTO_TUNE_CANDIDATES,
                        AUTO_TUNE_QUERIES,
                    );
                    (report.best_r, Some(report))
                }
                None => (AUTO_TUNE_FALLBACK_R, None),
            },
        };
        let (t_low, permutation) =
            PackedRTree::build_with_order(points, chosen_r, self.config.bin_order);
        let t_high = high_tree_for(&t_low);
        PreparedIndex {
            t_low,
            t_high,
            permutation,
            chosen_r,
            tune,
            build_time: build_start.elapsed(),
            dynamic: None,
            appended_since_sort: 0,
        }
    }

    /// Applies one streaming APPEND batch to a prepared handle, returning
    /// the successor handle (functional update — in-flight runs over the
    /// old handle stay valid) plus an [`AppendReport`].
    ///
    /// The maintain path appends the new points at the *tail of tree
    /// order* and rebuilds the packed `T_low`/`T_high` arrays with
    /// [`PackedRTree::from_sorted`] — no bin sort and no `r` re-tune, the
    /// O(n) cost that makes appends cheap relative to a full
    /// [`Engine::prepare`]. Appended caller ids continue the old
    /// numbering (`old_len..old_len+k`). Once the unsorted tail exceeds
    /// [`APPEND_RESORT_FRACTION`] of the dataset, the handle is re-sorted
    /// from scratch (same `chosen_r`; the tail fraction resets to zero)
    /// so query locality cannot degrade without bound.
    ///
    /// Either way the caller-order [`DynamicRTree`] mirror is maintained
    /// incrementally (materialized from the accumulated points on the
    /// first append).
    pub fn append_to_prepared(
        &self,
        index: &PreparedIndex,
        new_points: &[Point2],
    ) -> Result<(PreparedIndex, AppendReport), EngineError> {
        if let Some(bad) = new_points.iter().position(|p| !p.is_finite()) {
            return Err(EngineError::NonFinitePoint {
                index: bad,
                point: new_points[bad],
            });
        }
        let start = Instant::now();
        let old_n = index.len();
        let total = old_n + new_points.len();

        let mut dynamic = match &index.dynamic {
            Some(tree) => tree.clone(),
            None => DynamicRTree::from_points(&index.caller_points()),
        };
        for &p in new_points {
            dynamic.insert(p);
        }

        let unsorted_tail = index.appended_since_sort + new_points.len();
        let resorted = unsorted_tail as f64 > total as f64 * APPEND_RESORT_FRACTION;
        let mut next = if resorted {
            // Full re-sort: bin-sort the accumulated caller-order points
            // with the already-chosen r (no re-tune).
            let (t_low, permutation) = PackedRTree::build_with_order(
                dynamic.points(),
                index.chosen_r,
                self.config.bin_order,
            );
            let t_high = high_tree_for(&t_low);
            PreparedIndex {
                t_low,
                t_high,
                permutation,
                chosen_r: index.chosen_r,
                tune: index.tune.clone(),
                build_time: index.build_time,
                dynamic: Some(dynamic),
                appended_since_sort: 0,
            }
        } else {
            // Maintain: new tree order = old tree order ++ new points.
            let mut tree_points: Vec<Point2> = index.t_low.shared_points().to_vec();
            tree_points.extend_from_slice(new_points);
            let shared = shared_points(tree_points);
            let t_low = PackedRTree::from_sorted(shared, index.chosen_r);
            let t_high = high_tree_for(&t_low);
            let mut permutation = index.permutation.clone();
            permutation.extend((old_n..total).map(|i| i as PointId));
            PreparedIndex {
                t_low,
                t_high,
                permutation,
                chosen_r: index.chosen_r,
                tune: index.tune.clone(),
                build_time: index.build_time,
                dynamic: Some(dynamic),
                appended_since_sort: unsorted_tail,
            }
        };
        let time = start.elapsed();
        next.build_time += time;
        Ok((
            next,
            AppendReport {
                appended: new_points.len(),
                total,
                resorted,
                time,
            },
        ))
    }

    /// Flushes a handle's unsorted append tail through the same full
    /// re-sort [`Engine::append_to_prepared`] applies when the tail
    /// crosses [`APPEND_RESORT_FRACTION`]: bin-sort the accumulated
    /// caller-order points with the already-chosen `r` (no re-tune) and
    /// rebuild both packed trees. The returned handle answers the same
    /// queries with `appended_since_sort == 0` — the clean generation
    /// the warm-state store persists before shutdown. A handle that is
    /// already clean is returned as a cheap clone.
    pub fn resort_prepared(&self, index: &PreparedIndex) -> PreparedIndex {
        if index.appended_since_sort == 0 {
            return index.clone();
        }
        let start = Instant::now();
        let caller = index.caller_points();
        let (t_low, permutation) =
            PackedRTree::build_with_order(&caller, index.chosen_r, self.config.bin_order);
        let t_high = high_tree_for(&t_low);
        let mut next = PreparedIndex {
            t_low,
            t_high,
            permutation,
            chosen_r: index.chosen_r,
            tune: index.tune.clone(),
            build_time: index.build_time,
            dynamic: index.dynamic.clone(),
            appended_since_sort: 0,
        };
        next.build_time += start.elapsed();
        next
    }

    /// Clusters `variants` over a prebuilt index.
    ///
    /// # Panics
    ///
    /// Panics on any [`EngineError`] — the legacy contract.
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::execute(&RunRequest::prepared(index, variants))`"
    )]
    pub fn run_prepared(&self, index: &PreparedIndex, variants: &VariantSet) -> RunReport {
        match self.execute(&RunRequest::prepared(index, variants)) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like the legacy `run_prepared`, but a panicking clustering job is
    /// contained inside its worker and surfaced as a typed [`JobPanic`]
    /// instead of unwinding through the caller.
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::execute(&RunRequest::prepared(index, variants))`"
    )]
    pub fn try_run_prepared(
        &self,
        index: &PreparedIndex,
        variants: &VariantSet,
    ) -> Result<RunReport, JobPanic> {
        match self.execute(&RunRequest::prepared(index, variants)) {
            Ok(report) => Ok(report),
            Err(EngineError::JobPanic(p)) => Err(p),
            Err(e) => panic!("{e}"),
        }
    }

    /// Clusters `variants` over a prebuilt index with warm reuse sources.
    ///
    /// # Panics
    ///
    /// Panics if a warm result covers a different database size than the
    /// index, and on contained job panics — the legacy contract.
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::execute(&RunRequest::prepared(index, variants).warm(sources))`"
    )]
    pub fn run_prepared_warm(
        &self,
        index: &PreparedIndex,
        variants: &VariantSet,
        warm: &[WarmSource],
    ) -> RunReport {
        match self.execute(&RunRequest::prepared(index, variants).warm(warm)) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like the legacy `run_prepared_warm`, but with contained panics
    /// surfaced as a typed [`JobPanic`]. A mismatched warm source still
    /// panics (the legacy contract; [`Engine::execute`] types it).
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::execute(&RunRequest::prepared(index, variants).warm(sources))`"
    )]
    pub fn try_run_prepared_warm(
        &self,
        index: &PreparedIndex,
        variants: &VariantSet,
        warm: &[WarmSource],
    ) -> Result<RunReport, JobPanic> {
        match self.execute(&RunRequest::prepared(index, variants).warm(warm)) {
            Ok(report) => Ok(report),
            Err(EngineError::JobPanic(p)) => Err(p),
            Err(e) => panic!("{e}"),
        }
    }

    /// The engine core: clusters `variants` over a prepared index with
    /// optional warm sources. A panic inside any clustering job is caught
    /// in its worker, recorded first-wins in a shared slot, and turned
    /// into `Err(JobPanic)` after every worker has drained.
    fn run_scheduled(
        &self,
        index: &PreparedIndex,
        variants: &VariantSet,
        warm: &[WarmSource],
        progress: Option<mpsc::Sender<crate::progress::ProgressEvent>>,
        trace: TraceLevel,
        sharding: Option<Sharding>,
    ) -> Result<RunReport, JobPanic> {
        use crate::progress::ProgressEvent;
        let n_var = variants.len();

        // Two-level placement: a wide sharded run trades outer
        // variant-parallel workers for intra-variant shard teams so the
        // levels multiply back to (at most) the configured thread budget.
        // Narrow runs, single-shard policies, and non-opted runs keep
        // today's one-level packing.
        let shard_plan: Option<ShardPlan> = sharding.and_then(|policy| {
            (policy.shards() > 1 && index.len() >= policy.min_points()).then(|| ShardPlan {
                shards: policy.shards(),
                team: policy.shards().min(self.config.threads),
            })
        });
        let outer_threads = match shard_plan {
            Some(plan) => (self.config.threads / plan.team).max(1),
            None => self.config.threads,
        };

        // The three-way shared state split (see module docs): a small
        // mutex for the schedule, lock-free once-cells for results, and a
        // channel for outcome bookkeeping. Warm sources occupy the result
        // slots past `n_var`, pre-filled before any worker starts, so the
        // lock-free read path is identical for both source kinds.
        let warm_variants: Vec<Variant> = warm.iter().map(|w| w.variant).collect();
        let schedule = Mutex::new(ScheduleState::with_warm_sources(
            variants.clone(),
            self.config.scheduler,
            self.config.reuse.reuses(),
            &warm_variants,
        ));
        let results: Vec<OnceLock<Arc<ClusterResult>>> =
            (0..n_var + warm.len()).map(|_| OnceLock::new()).collect();
        for (i, w) in warm.iter().enumerate() {
            results[n_var + i]
                .set(Arc::clone(&w.result))
                .expect("fresh slot");
        }
        let (outcome_tx, outcome_rx) = mpsc::channel::<VariantOutcome>();
        let panic_slot: OnceLock<JobPanic> = OnceLock::new();

        let t0 = Instant::now();
        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..outer_threads)
                .map(|thread_id| {
                    let schedule = &schedule;
                    let results = &results[..];
                    let panic_slot = &panic_slot;
                    let progress = progress.clone();
                    let outcome_tx = outcome_tx.clone();
                    scope.spawn(move || {
                        worker_loop(
                            thread_id,
                            self.config.reuse,
                            variants,
                            warm,
                            index.t_low(),
                            index.t_high(),
                            schedule,
                            results,
                            panic_slot,
                            outcome_tx,
                            t0,
                            progress,
                            trace,
                            shard_plan,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let total_time = t0.elapsed();

        // Fold per-worker observability before the panic check: a failed
        // run surfaces no report, but the fold is cheap either way.
        let mut worker_stats = Vec::with_capacity(outputs.len());
        let mut phases = PhaseHistograms::new();
        let mut tracers = Vec::with_capacity(outputs.len());
        let mut shard_totals = ShardTotals::default();
        for out in outputs {
            phases.merge(&out.phases);
            shard_totals.merge(&out.sharding);
            worker_stats.push(out.stats);
            tracers.push(out.tracer);
        }
        if let Some(panic) = panic_slot.into_inner() {
            // The schedule was aborted on the first caught panic, so some
            // result slots are legitimately empty — skip report assembly
            // entirely and fail the run as a unit.
            return Err(panic);
        }
        let trace_snapshot = trace
            .enabled()
            .then(|| TraceSnapshot::from_workers(tracers));
        if let Some(tx) = &progress {
            let _ = tx.send(ProgressEvent::Finished { variants: n_var });
        }

        // All worker-held senders are gone; drop ours and drain.
        drop(outcome_tx);
        let mut outcomes: Vec<VariantOutcome> = outcome_rx.try_iter().collect();
        outcomes.sort_by_key(|o| o.index);
        let results = if self.config.keep_results {
            results
                .into_iter()
                .take(n_var)
                .map(|slot| {
                    slot.into_inner()
                        .expect("every variant must have completed")
                })
                .collect()
        } else {
            Vec::new()
        };

        Ok(RunReport {
            outcomes,
            total_time,
            index_build_time: Duration::ZERO,
            threads: self.config.threads,
            chosen_r: index.chosen_r,
            tune: index.tune.clone(),
            results,
            permutation: index.permutation.clone(),
            worker_stats,
            warm_seeds: warm.len(),
            phases,
            sharding: shard_totals,
            trace: trace_snapshot,
        })
    }
}

/// The ε the auto-tuner sweeps with: the median of the variant set's ε
/// values — robust to a few outlier variants and exact for the common
/// replicated-variant scenarios. `None` for an empty set.
fn representative_eps(variants: &VariantSet) -> Option<f64> {
    if variants.is_empty() {
        return None;
    }
    let mut eps: Vec<f64> = variants.iter().map(|v| v.eps).collect();
    eps.sort_by(|a, b| a.partial_cmp(b).expect("variant ε is always finite"));
    Some(eps[eps.len() / 2])
}

/// Everything one worker hands back when its loop drains: contention
/// accounting, its trace ring, and its share of the per-phase latency
/// histograms.
struct WorkerOutput {
    stats: WorkerStats,
    tracer: WorkerTracer,
    phases: PhaseHistograms,
    sharding: ShardTotals,
}

/// One worker: pull → cluster → publish, until the schedule drains.
/// Returns its contention/idle accounting, trace ring, and phase
/// histograms.
///
/// Each assignment's clustering work runs under `catch_unwind`: on a
/// panic the worker records the first [`JobPanic`] in `panic_slot`,
/// aborts the schedule (so peers stop pulling and drain), and exits its
/// loop — the panic never crosses the thread boundary.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    thread_id: usize,
    reuse: ReuseScheme,
    variants: &VariantSet,
    warm: &[WarmSource],
    t_low: &PackedRTree,
    t_high: &PackedRTree,
    schedule: &Mutex<ScheduleState>,
    results: &[OnceLock<Arc<ClusterResult>>],
    panic_slot: &OnceLock<JobPanic>,
    outcome_tx: mpsc::Sender<VariantOutcome>,
    t0: Instant,
    progress: Option<mpsc::Sender<crate::progress::ProgressEvent>>,
    trace: TraceLevel,
    shard_plan: Option<ShardPlan>,
) -> WorkerOutput {
    let mut scratch = DbscanScratch::new();
    let mut stats = WorkerStats::new(thread_id);
    let mut phases = PhaseHistograms::new();
    let mut shard_totals = ShardTotals::default();
    let mut tracer = WorkerTracer::new(u16::try_from(thread_id).unwrap_or(u16::MAX - 1), trace, t0);
    let worker_start = Instant::now();
    loop {
        // Pull an assignment under the schedule mutex, timing how long the
        // lock took to acquire vs how long the decision itself ran.
        let wait_start = Instant::now();
        let (assignment, pending) = {
            let mut guard = schedule.lock().expect("schedule mutex poisoned");
            let acquired = Instant::now();
            let lock_wait = acquired.duration_since(wait_start);
            stats.lock_wait += lock_wait;
            phases.lock_wait.record(lock_wait);
            let a = guard.next_assignment();
            let pending = guard.pending_count();
            let sched = acquired.elapsed();
            stats.sched_time += sched;
            phases.sched.record(sched);
            (a, pending)
        };
        let Some(assignment) = assignment else {
            break;
        };
        stats.assignments += 1;
        let variant_idx = assignment.variant as u32;
        let source_tag = match assignment.reuse_from {
            None => TraceSource::Scratch,
            Some(u) if u >= variants.len() => TraceSource::Warm((u - variants.len()) as u32),
            Some(u) => TraceSource::InRun(u as u32),
        };
        tracer.record(TraceEvent::Pull {
            variant: variant_idx,
            source: source_tag,
            pending: pending.min(u32::MAX as usize) as u32,
        });

        // Reuse sources are read lock-free: warm slots were filled before
        // the workers started; in-run slots were filled before the
        // source's completion was announced under the schedule mutex.
        let source_result: Option<Arc<ClusterResult>> = assignment.reuse_from.map(|u| {
            Arc::clone(
                results[u]
                    .get()
                    .expect("scheduler handed out an incomplete reuse source"),
            )
        });

        let variant = variants[assignment.variant];
        tracer.record(TraceEvent::Started {
            variant: variant_idx,
            source: source_tag,
        });
        let started = t0.elapsed();
        let clustered = {
            let tracer = &mut tracer;
            let scratch = &mut scratch;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                crate::fault::check(variant);
                match (source_result, assignment.reuse_from) {
                    (Some(prev), Some(u)) => {
                        // Ids past the variant range address warm sources.
                        let from_warm = u >= variants.len();
                        let source_variant = if from_warm {
                            warm[u - variants.len()].variant
                        } else {
                            variants[u]
                        };
                        let (result, stats) = cluster_with_reuse_traced(
                            t_low,
                            t_high,
                            variant,
                            &prev,
                            source_variant,
                            reuse,
                            tracer,
                            variant_idx,
                        );
                        (
                            result,
                            ExecutionPath::Reused {
                                source: source_variant,
                                stats,
                            },
                            from_warm,
                            None,
                        )
                    }
                    _ => {
                        if let Some(plan) = shard_plan {
                            // Second placement level: split this wide
                            // variant into ε-halo'd shards and cluster
                            // them with the worker's team. A capacity
                            // overflow (> u32::MAX − 1 points) panics
                            // here and is contained as a JobPanic like
                            // any other job failure.
                            let (result, shard_stats) =
                                sharded_dbscan(t_low, variant.params(), plan.shards, plan.team)
                                    .unwrap_or_else(|e| panic!("sharded clustering: {e}"));
                            let stats = shard_stats.dbscan;
                            (
                                result,
                                ExecutionPath::FromScratch(stats),
                                false,
                                Some(shard_stats),
                            )
                        } else {
                            let (result, stats) =
                                dbscan_with_scratch(t_low, variant.params(), scratch);
                            (result, ExecutionPath::FromScratch(stats), false, None)
                        }
                    }
                }
            }))
        };
        let (result, path, from_warm, shard_stats) = match clustered {
            Ok(done) => done,
            Err(payload) => {
                // Containment: record the first panic, poison the schedule
                // so every peer drains at its next pull, and exit without
                // publishing — the scratch space may be mid-mutation, but
                // this worker never touches it again.
                tracer.record(TraceEvent::PanicContained {
                    variant: variant_idx,
                });
                let _ = panic_slot.set(JobPanic {
                    variant,
                    message: panic_message(payload),
                });
                schedule.lock().expect("schedule mutex poisoned").abort();
                break;
            }
        };
        let finished = t0.elapsed();
        let busy = finished.saturating_sub(started);
        stats.busy += busy;
        match &path {
            ExecutionPath::FromScratch(_) => phases.scratch.record(busy),
            ExecutionPath::Reused { .. } => phases.reuse.record(busy),
        }
        if let Some(ss) = &shard_stats {
            // Shard-phase observability: per-shard local latencies and
            // the merge latency feed their own histograms, the census
            // feeds the run's ShardTotals, and (at TraceLevel::Full) a
            // ShardMerge detail event lands in the trace ring.
            for &ns in &ss.local_ns {
                phases.shard_local.record_ns(ns);
            }
            phases.shard_merge.record_ns(ss.merge_ns);
            shard_totals.variants += 1;
            shard_totals.shards += ss.shards as u64;
            shard_totals.border_points += ss.border_points as u64;
            shard_totals.cross_unions += ss.cross_unions;
            tracer.record_full(TraceEvent::ShardMerge {
                variant: variant_idx,
                shards: ss.shards.min(u32::MAX as usize) as u32,
                border_points: ss.border_points.min(u32::MAX as usize) as u32,
                cross_unions: ss.cross_unions.min(u64::from(u32::MAX)) as u32,
            });
        }
        tracer.record(TraceEvent::Finished {
            variant: variant_idx,
            clusters: result.num_clusters().min(u32::MAX as usize) as u32,
            noise: result.noise_count().min(u32::MAX as usize) as u32,
        });

        let outcome = VariantOutcome {
            index: assignment.variant,
            variant,
            thread: thread_id,
            started,
            finished,
            path,
            warm: from_warm,
            clusters: result.num_clusters(),
            noise: result.noise_count(),
        };

        // Publish the result BEFORE announcing completion: any worker that
        // is handed this variant as a reuse source observed the completion
        // under the schedule mutex, which orders this `set` before its
        // lock-free `get`.
        results[assignment.variant]
            .set(Arc::new(result))
            .expect("variant completed twice");
        {
            let wait_start = Instant::now();
            let mut guard = schedule.lock().expect("schedule mutex poisoned");
            let acquired = Instant::now();
            let lock_wait = acquired.duration_since(wait_start);
            stats.lock_wait += lock_wait;
            phases.lock_wait.record(lock_wait);
            guard.complete(assignment.variant);
            let sched = acquired.elapsed();
            stats.sched_time += sched;
            phases.sched.record(sched);
        }
        if let Some(tx) = &progress {
            let _ = tx.send(crate::progress::ProgressEvent::VariantDone(outcome.clone()));
        }
        let _ = outcome_tx.send(outcome);
    }
    // Whatever wall time wasn't clustering, waiting for the lock, or
    // deciding the schedule was spent idle (thread startup/teardown and
    // channel sends included — both negligible and honest to count here).
    stats.idle = worker_start
        .elapsed()
        .saturating_sub(stats.busy + stats.lock_wait + stats.sched_time);
    WorkerOutput {
        stats,
        tracer,
        phases,
        sharding: shard_totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;
    use std::time::Duration;
    use vbp_dbscan::{dbscan, quality_score};

    /// Deterministic blob generator: `k` Gaussian-ish blobs on a grid plus
    /// uniform noise.
    fn blobs(n: usize, k: usize, seed: u64) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let centers: Vec<Point2> = (0..k)
            .map(|_| Point2::new(rnd() * 100.0, rnd() * 100.0))
            .collect();
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    Point2::new(rnd() * 100.0, rnd() * 100.0) // noise
                } else {
                    let c = centers[i % k];
                    Point2::new(c.x + (rnd() - 0.5) * 2.0, c.y + (rnd() - 0.5) * 2.0)
                }
            })
            .collect()
    }

    fn small_grid() -> VariantSet {
        VariantSet::cartesian(&[0.8, 1.2, 1.6], &[4, 8])
    }

    /// [`Engine::execute`] over raw points, unwrapped — the shape most
    /// tests want.
    fn run(engine: &Engine, points: &[Point2], variants: &VariantSet) -> RunReport {
        engine
            .execute(&RunRequest::new(points, variants))
            .expect("test input is valid")
    }

    /// [`Engine::execute`] over a prepared index, unwrapped.
    fn run_prepared(engine: &Engine, index: &PreparedIndex, variants: &VariantSet) -> RunReport {
        engine
            .execute(&RunRequest::prepared(index, variants))
            .expect("test input is valid")
    }

    /// [`Engine::execute`] over a prepared index with warm sources,
    /// unwrapped.
    fn run_warm(
        engine: &Engine,
        index: &PreparedIndex,
        variants: &VariantSet,
        warm: &[WarmSource],
    ) -> RunReport {
        engine
            .execute(&RunRequest::prepared(index, variants).warm(warm))
            .expect("test input is valid")
    }

    #[test]
    fn engine_clusters_every_variant() {
        let points = blobs(800, 5, 42);
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_r(16));
        let report = run(&engine, &points, &small_grid());
        assert_eq!(report.outcomes.len(), 6);
        assert_eq!(report.results.len(), 6);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(report.results[i].num_clusters(), o.clusters);
        }
    }

    /// Canonicalizes raw caller-order labels by first appearance so two
    /// labelings compare equal iff they induce the same partition (noise
    /// preserved as noise).
    fn canonical(labels: &[u32]) -> Vec<u32> {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                if l == u32::MAX {
                    u32::MAX
                } else {
                    let next = map.len() as u32;
                    *map.entry(l).or_insert(next)
                }
            })
            .collect()
    }

    #[test]
    fn append_to_prepared_is_equivalent_to_fresh_prepare() {
        let all = blobs(700, 4, 7);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        let mut index = engine.prepare(&all[..400], Some(1.2)).expect("finite");
        assert!(index.dynamic().is_none());

        // First batch (100 on 400: tail 20% — maintain), second batch
        // (+100: tail 200/600 = 33% — resort).
        let mut saw_resort = false;
        for (start, end) in [(400, 500), (500, 700)] {
            let (next, report) = engine
                .append_to_prepared(&index, &all[start..end])
                .expect("finite batch");
            assert_eq!(report.appended, end - start);
            assert_eq!(report.total, end);
            saw_resort |= report.resorted;
            index = next;

            assert_eq!(index.len(), end);
            assert_eq!(index.caller_points(), all[..end].to_vec());
            let dynamic = index.dynamic().expect("mirror materialized");
            assert_eq!(dynamic.len(), end);
            assert_eq!(dynamic.points(), &all[..end]);

            let streamed = run_prepared(&engine, &index, &variants);
            let fresh = run(&engine, &all[..end], &variants);
            for v in 0..variants.len() {
                assert_eq!(
                    canonical(&streamed.result_in_caller_order(v)),
                    canonical(&fresh.result_in_caller_order(v)),
                    "variant {v} diverged after appending to {end} points"
                );
            }
        }
        assert!(saw_resort, "second batch must cross APPEND_RESORT_FRACTION");
        assert_eq!(index.appended_since_sort(), 0, "resort resets the tail");

        let err = engine
            .append_to_prepared(&index, &[Point2::new(f64::NAN, 0.0)])
            .expect_err("non-finite appends are rejected");
        assert!(matches!(err, EngineError::NonFinitePoint { index: 0, .. }));
    }

    #[test]
    fn sharded_run_matches_unsharded_and_reports_totals() {
        let points = blobs(1500, 4, 99);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_r(16));
        let plain = run(&engine, &points, &variants);
        let sharded = engine
            .execute(
                &RunRequest::new(&points, &variants)
                    .sharding(Sharding::new(4).with_min_points(0))
                    .trace(TraceLevel::Full),
            )
            .expect("test input is valid");

        // Sharding changes placement, never structure: cluster and noise
        // counts are invariants of the geometry (only deterministic
        // border membership may move between the sequential scratch
        // kernel and the shard-merged one).
        for (a, b) in plain.outcomes.iter().zip(&sharded.outcomes) {
            assert_eq!(a.clusters, b.clusters, "{}", a.variant);
            assert_eq!(a.noise, b.noise, "{}", a.variant);
        }
        for (a, b) in plain.results.iter().zip(&sharded.results) {
            assert!(quality_score(a, b).mean_score > 0.99);
        }

        // Every from-scratch assignment went through the shard path and
        // left its footprint in the totals, histograms, and trace.
        let scratch = sharded.from_scratch_count() as u64;
        assert!(scratch >= 1);
        assert_eq!(sharded.sharding.variants, scratch);
        assert!(sharded.sharding.shards >= scratch, "{:?}", sharded.sharding);
        assert_eq!(sharded.phases.shard_merge.count(), scratch);
        assert!(sharded.phases.shard_local.count() >= scratch);
        let trace = sharded.trace.as_ref().expect("trace requested");
        let merges = trace
            .records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ShardMerge { .. }))
            .count() as u64;
        assert_eq!(merges, scratch);

        // Unsharded runs carry zero shard accounting.
        assert_eq!(plain.sharding, crate::metrics::ShardTotals::default());
        assert_eq!(plain.phases.shard_local.count(), 0);
        assert_eq!(plain.phases.shard_merge.count(), 0);
    }

    #[test]
    fn narrow_runs_ignore_the_sharding_policy() {
        let points = blobs(400, 3, 17);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        // 400 points sits far below the default width gate.
        let report = engine
            .execute(&RunRequest::new(&points, &variants).sharding(Sharding::new(4)))
            .expect("test input is valid");
        assert_eq!(report.sharding, crate::metrics::ShardTotals::default());
        assert_eq!(report.phases.shard_local.count(), 0);
        // The packed path keeps the full worker complement.
        assert_eq!(report.worker_stats.len(), 2);
    }

    #[test]
    fn engine_results_match_direct_dbscan() {
        let points = blobs(600, 4, 7);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(20));
        let report = run(&engine, &points, &variants);

        // Compare each variant against a direct DBSCAN over the same tree
        // order using the paper's quality metric.
        let (t_low, _) = PackedRTree::build(&points, 20);
        for (i, v) in variants.iter().enumerate() {
            let direct = dbscan(&t_low, v.params());
            let got = &report.results[i];
            assert_eq!(direct.num_clusters(), got.num_clusters(), "variant {v}");
            assert_eq!(direct.noise_count(), got.noise_count(), "variant {v}");
            let q = quality_score(&direct, got);
            assert!(q.mean_score > 0.99, "variant {v}: quality {}", q.mean_score);
        }
    }

    #[test]
    fn reference_config_never_reuses() {
        let points = blobs(300, 3, 11);
        let engine = Engine::new(EngineConfig::reference());
        let report = run(&engine, &points, &small_grid());
        assert_eq!(report.from_scratch_count(), 6);
        assert_eq!(report.mean_fraction_reused(), 0.0);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn first_t_variants_cannot_reuse() {
        // With |V| = 6 and T = 6, every variant starts before anything
        // completes... except workers that start late; at minimum the
        // first assignment per worker before any completion is scratch.
        // The robust invariant: from_scratch ≥ 1 and every reused variant
        // has a source satisfying the inclusion criteria.
        let points = blobs(400, 3, 13);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        let report = run(&engine, &points, &variants);
        assert!(report.from_scratch_count() >= 1);
        for o in &report.outcomes {
            if let Some(src) = o.reused_from() {
                assert!(o.variant.can_reuse(&src), "{} reused {}", o.variant, src);
            }
        }
    }

    #[test]
    fn reuse_actually_happens_at_t1() {
        let points = blobs(500, 4, 17);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_r(16)
                .with_reuse(ReuseScheme::ClusDensity),
        );
        let report = run(&engine, &points, &small_grid());
        // T = 1 ⇒ only the first variant is from scratch under SchedGreedy.
        assert_eq!(report.from_scratch_count(), 1);
        assert!(report.mean_fraction_reused() > 0.0);
    }

    #[test]
    fn identical_variants_replicate_results() {
        let points = blobs(400, 3, 23);
        let variants = VariantSet::replicated(Variant::new(1.0, 4), 8);
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_r(16));
        let report = run(&engine, &points, &variants);
        let first = &report.results[0];
        for r in &report.results[1..] {
            assert_eq!(first.num_clusters(), r.num_clusters());
            assert_eq!(first.noise_count(), r.noise_count());
        }
    }

    #[test]
    fn caller_order_mapping_roundtrips() {
        let points = blobs(200, 2, 31);
        let variants = VariantSet::replicated(Variant::new(1.0, 4), 1);
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        let report = run(&engine, &points, &variants);
        let remapped = report.result_in_caller_order(0);
        assert_eq!(remapped.len(), points.len());
        // Label of original point i must equal the tree-order label of its
        // tree position.
        for (tree_idx, &orig) in report.permutation.iter().enumerate() {
            assert_eq!(
                remapped[orig as usize],
                report.results[0].labels().raw(tree_idx as u32)
            );
        }
    }

    #[test]
    fn empty_variant_set() {
        let points = blobs(100, 2, 37);
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let report = run(&engine, &points, &VariantSet::new(vec![]));
        assert!(report.outcomes.is_empty());
        assert!(report.results.is_empty());
    }

    #[test]
    fn empty_database() {
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(4));
        let report = run(&engine, &[], &small_grid());
        assert_eq!(report.outcomes.len(), 6);
        for r in &report.results {
            assert_eq!(r.len(), 0);
        }
    }

    #[test]
    fn keep_results_false_drops_results() {
        let points = blobs(200, 2, 41);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_r(8)
                .with_keep_results(false),
        );
        let report = run(&engine, &points, &small_grid());
        assert!(report.results.is_empty());
        assert_eq!(report.outcomes.len(), 6);
    }

    #[test]
    fn timings_are_monotone_and_cover_threads() {
        let points = blobs(600, 4, 43);
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(16));
        let report = run(&engine, &points, &small_grid());
        for o in &report.outcomes {
            assert!(o.finished >= o.started);
            assert!(o.thread < 3);
        }
        assert!(report.total_time >= Duration::from_nanos(0));
        assert!(report.lower_bound() <= report.total_time + Duration::from_millis(50));
    }

    #[test]
    fn worker_stats_cover_every_thread_and_assignment() {
        let points = blobs(600, 4, 47);
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(16));
        let report = run(&engine, &points, &small_grid());
        assert_eq!(report.worker_stats.len(), 3);
        let mut threads_seen: Vec<usize> = report.worker_stats.iter().map(|w| w.thread).collect();
        threads_seen.sort_unstable();
        assert_eq!(threads_seen, vec![0, 1, 2]);
        let total_assignments: usize = report.worker_stats.iter().map(|w| w.assignments).sum();
        assert_eq!(total_assignments, report.outcomes.len());
        // Busy time accounted per worker matches the outcomes' view.
        let busy_from_stats: Duration = report.worker_stats.iter().map(|w| w.busy).sum();
        assert_eq!(busy_from_stats, report.total_busy());
    }

    #[test]
    fn phase_histograms_account_every_assignment() {
        let points = blobs(600, 4, 49);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(16));
        let report = run(&engine, &points, &variants);
        // One busy sample per assignment, split across scratch/reuse.
        assert_eq!(
            report.phases.scratch.count() + report.phases.reuse.count(),
            variants.len() as u64
        );
        assert_eq!(
            report.phases.scratch.count(),
            report.from_scratch_count() as u64
        );
        // Two lock acquisitions per assignment (pull + completion), plus
        // one final empty pull per worker.
        assert_eq!(
            report.phases.lock_wait.count(),
            (2 * variants.len() + report.threads) as u64
        );
        assert_eq!(report.phases.lock_wait.count(), report.phases.sched.count());
        // Histograms land in the JSON report.
        assert!(report.to_json().contains("\"phases\":{"));
    }

    #[test]
    fn trace_off_by_default_spans_when_asked() {
        let points = blobs(500, 4, 51);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));

        let untraced = run(&engine, &points, &variants);
        assert!(untraced.trace.is_none(), "tracing must be opt-in");
        assert!(!untraced.to_json().contains("\"trace\":"));

        let traced = engine
            .execute(&RunRequest::new(&points, &variants).trace(TraceLevel::Spans))
            .unwrap();
        let snap = traced.trace.as_ref().expect("requested level records");
        // Pull + Started + Finished per variant, nothing dropped.
        assert_eq!(snap.records.len(), 3 * variants.len());
        assert_eq!(snap.dropped, 0);
        let kinds = snap.kind_counts();
        assert_eq!(
            kinds,
            vec![
                ("finished", variants.len() as u64),
                ("pull", variants.len() as u64),
                ("started", variants.len() as u64),
            ]
        );
        assert!(traced.to_json().contains("\"trace\":{"));
    }

    #[test]
    fn trace_full_records_reuse_detail() {
        let points = blobs(500, 4, 53);
        let variants = small_grid();
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_r(16)
                .with_reuse(ReuseScheme::ClusDensity),
        );
        let report = engine
            .execute(&RunRequest::new(&points, &variants).trace(TraceLevel::Full))
            .unwrap();
        let snap = report.trace.as_ref().unwrap();
        // T = 1 under SchedGreedy reuses 5 of 6 variants; each reuse pass
        // emits at least one frontier batch (there is at least one old
        // cluster with a candidate frontier on this dataset).
        let batches: u64 = snap
            .kind_counts()
            .iter()
            .filter(|(k, _)| *k == "frontier-batch")
            .map(|(_, c)| *c)
            .sum();
        assert!(batches > 0, "full level must record reuse detail");
        // The flame dump renders something for every variant.
        let text = snap.render_text(&variants);
        for i in 0..variants.len() {
            assert!(text.contains(&format!("v{i} ")), "missing v{i} in:\n{text}");
        }
    }

    #[test]
    fn auto_r_tunes_and_reports() {
        let points = blobs(1_500, 4, 53);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_auto_r());
        let report = run(&engine, &points, &variants);
        assert!(AUTO_TUNE_CANDIDATES.contains(&report.chosen_r));
        let tune = report.tune.as_ref().expect("auto mode must record a sweep");
        assert_eq!(tune.best_r, report.chosen_r);
        assert_eq!(tune.timings.len(), AUTO_TUNE_CANDIDATES.len());
        assert!(tune.sample_size <= AUTO_TUNE_MAX_SAMPLE);
        // Results must match a fixed-r run (r only affects speed).
        let fixed_engine = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_r(report.chosen_r),
        );
        let fixed = run(&fixed_engine, &points, &variants);
        assert_eq!(fixed.chosen_r, report.chosen_r);
        assert!(fixed.tune.is_none());
        for (a, b) in report.results.iter().zip(&fixed.results) {
            assert_eq!(a.num_clusters(), b.num_clusters());
            assert_eq!(a.noise_count(), b.noise_count());
        }
    }

    #[test]
    fn auto_r_on_empty_variant_set_falls_back() {
        let points = blobs(200, 2, 59);
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_auto_r());
        let report = run(&engine, &points, &VariantSet::new(vec![]));
        assert_eq!(report.chosen_r, AUTO_TUNE_FALLBACK_R);
        assert!(report.tune.is_none());
    }

    #[test]
    fn fixed_r_is_recorded() {
        let points = blobs(100, 2, 61);
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(17));
        let report = run(&engine, &points, &small_grid());
        assert_eq!(report.chosen_r, 17);
        assert!(report.tune.is_none());
    }

    #[test]
    fn rchoice_displays() {
        assert_eq!(RChoice::Fixed(70).to_string(), "70");
        assert_eq!(RChoice::Auto.to_string(), "auto");
    }

    #[test]
    fn execute_reports_non_finite_points() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(4));
        let points = vec![Point2::new(0.0, 0.0), Point2::new(f64::NAN, 1.0)];
        let err = engine
            .execute(&RunRequest::new(&points, &small_grid()))
            .unwrap_err();
        match err {
            EngineError::NonFinitePoint { index, ref point } => {
                assert_eq!(index, 1);
                assert!(point.x.is_nan());
            }
            ref other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn execute_reports_warm_mismatch_typed() {
        let points = blobs(200, 2, 79);
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        let prepared = engine.prepare(&points, None).unwrap();
        let small = engine.prepare(&points[..50], None).unwrap();
        let donor_variants = VariantSet::replicated(Variant::new(1.0, 4), 1);
        let donor = run_prepared(&engine, &small, &donor_variants);
        let warm = vec![WarmSource {
            variant: Variant::new(1.0, 4),
            result: Arc::clone(&donor.results[0]),
        }];
        let err = engine
            .execute(&RunRequest::prepared(&prepared, &small_grid()).warm(&warm))
            .unwrap_err();
        match err {
            EngineError::WarmSourceMismatch {
                variant,
                expected,
                got,
            } => {
                assert_eq!(variant, Variant::new(1.0, 4));
                assert_eq!(expected, 200);
                assert_eq!(got, 50);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_rejected() {
        Engine::new(EngineConfig::default().with_threads(0));
    }

    #[test]
    fn t1_runs_are_fully_deterministic() {
        // At T = 1 the online schedule has no timing dependence, so two
        // runs must produce identical labelings, identical reuse sources,
        // and identical execution paths.
        let points = blobs(700, 4, 77);
        let variants = VariantSet::cartesian(&[0.7, 1.0, 1.3], &[4, 8]);
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_r(32)
                .with_reuse(ReuseScheme::ClusDensity),
        );
        let a = run(&engine, &points, &variants);
        let b = run(&engine, &points, &variants);
        assert_eq!(a.permutation, b.permutation);
        for i in 0..variants.len() {
            assert_eq!(a.results[i], b.results[i], "variant {i}");
            assert_eq!(a.outcomes[i].reused_from(), b.outcomes[i].reused_from());
            assert_eq!(
                matches!(a.outcomes[i].path, ExecutionPath::FromScratch(_)),
                matches!(b.outcomes[i].path, ExecutionPath::FromScratch(_))
            );
        }
    }

    #[test]
    fn stress_many_threads_many_variants() {
        // Far more threads than cores and more variants than threads:
        // exercises the scheduler's contention paths. Every variant must
        // complete exactly once with a valid reuse source.
        let points = blobs(300, 3, 99);
        let eps: Vec<f64> = (1..=10).map(|i| 0.5 + i as f64 * 0.1).collect();
        let variants = VariantSet::cartesian(&eps, &[3, 4, 5, 6, 7]);
        assert_eq!(variants.len(), 50);
        let engine = Engine::new(EngineConfig::default().with_threads(16).with_r(16));
        let report = run(&engine, &points, &variants);
        assert_eq!(report.outcomes.len(), 50);
        let mut seen = [false; 50];
        for o in &report.outcomes {
            assert!(!seen[o.index]);
            seen[o.index] = true;
            if let Some(src) = o.reused_from() {
                assert!(o.variant.can_reuse(&src));
            }
        }
    }

    // ----- prepared indexes: build once, run many

    #[test]
    fn prepared_index_builds_once_across_runs() {
        // Regression: one-shot runs used to rebuild T_low/T_high per call
        // even on an unchanged point set. Two runs over one prepared
        // handle must not pay (or report) any index construction — the
        // build cost lives in the handle, once.
        let points = blobs(800, 4, 63);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        let prepared = engine.prepare(&points, None).unwrap();
        assert!(prepared.build_time() > Duration::ZERO);
        assert_eq!(prepared.len(), points.len());
        assert_eq!(prepared.chosen_r(), 16);

        let a = run_prepared(&engine, &prepared, &variants);
        let b = run_prepared(&engine, &prepared, &variants);
        assert_eq!(a.index_build_time, Duration::ZERO);
        assert_eq!(b.index_build_time, Duration::ZERO);
        assert_eq!(a.permutation, prepared.permutation());
        assert_eq!(b.permutation, prepared.permutation());

        // Same handle ⇒ same tree order ⇒ same cluster structure as the
        // classic one-shot path.
        let direct = run(&engine, &points, &variants);
        assert!(direct.index_build_time > Duration::ZERO);
        for i in 0..variants.len() {
            assert_eq!(
                a.results[i].num_clusters(),
                direct.results[i].num_clusters()
            );
            assert_eq!(a.results[i].noise_count(), direct.results[i].noise_count());
        }
    }

    #[test]
    fn prepared_auto_r_uses_eps_hint() {
        let points = blobs(1_200, 4, 67);
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_auto_r());
        let with_hint = engine.prepare(&points, Some(1.0)).unwrap();
        assert!(AUTO_TUNE_CANDIDATES.contains(&with_hint.chosen_r()));
        assert!(with_hint.tune().is_some());
        let without = engine.prepare(&points, None).unwrap();
        assert_eq!(without.chosen_r(), AUTO_TUNE_FALLBACK_R);
        assert!(without.tune().is_none());
    }

    #[test]
    fn prepare_rejects_non_finite_points() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(4));
        let points = vec![Point2::new(0.0, 0.0), Point2::new(1.0, f64::INFINITY)];
        assert!(matches!(
            engine.prepare(&points, None),
            Err(EngineError::NonFinitePoint { index: 1, .. })
        ));
    }

    #[test]
    fn labels_in_caller_order_roundtrips() {
        let points = blobs(300, 3, 69);
        let variants = VariantSet::replicated(Variant::new(1.0, 4), 1);
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        let prepared = engine.prepare(&points, None).unwrap();
        let report = run_prepared(&engine, &prepared, &variants);
        let remapped = prepared.labels_in_caller_order(&report.results[0]);
        assert_eq!(remapped, report.result_in_caller_order(0));
    }

    // ----- warm starts: cross-run reuse sources

    #[test]
    fn warm_start_reuses_cached_results() {
        let points = blobs(700, 4, 71);
        let variants = small_grid();
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_r(16)
                .with_reuse(ReuseScheme::ClusDensity),
        );
        let prepared = engine.prepare(&points, None).unwrap();
        let cold = run_prepared(&engine, &prepared, &variants);
        assert_eq!(cold.warm_seeds, 0);
        assert_eq!(cold.warm_hits(), 0);
        assert_eq!(cold.from_scratch_count(), 1); // T = 1 + SchedGreedy

        // Seed the next run with the cold run's most dominant result
        // (smallest ε, largest minpts — canonical position 0): every
        // variant can reuse it, so nothing runs from scratch.
        let warm = vec![WarmSource {
            variant: variants.get(0),
            result: Arc::clone(&cold.results[0]),
        }];
        let warm_run = run_warm(&engine, &prepared, &variants, &warm);
        assert_eq!(warm_run.warm_seeds, 1);
        assert!(warm_run.warm_hits() >= 1, "cache seed was never reused");
        assert_eq!(warm_run.from_scratch_count(), 0);
        // Cluster structure must match the cold run variant-for-variant.
        for i in 0..variants.len() {
            assert_eq!(
                warm_run.results[i].num_clusters(),
                cold.results[i].num_clusters(),
                "variant {i}"
            );
            assert_eq!(
                warm_run.results[i].noise_count(),
                cold.results[i].noise_count(),
                "variant {i}"
            );
        }
        // The identity seed is at parameter distance 0 from variant 0, so
        // that variant reuses it (the frontier re-check still touches the
        // non-dense remainder, so the fraction is high but below 1).
        assert!(warm_run.outcomes[0].warm);
        assert!(warm_run.outcomes[0].fraction_reused() > 0.5);
    }

    #[test]
    fn warm_sources_ignored_when_nothing_dominates() {
        // A warm source with *larger* ε and *smaller* minpts than every
        // variant dominates nothing; the run must behave exactly cold.
        let points = blobs(400, 3, 73);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
        let prepared = engine.prepare(&points, None).unwrap();
        let donor_variants = VariantSet::replicated(Variant::new(5.0, 1), 1);
        let donor = run_prepared(&engine, &prepared, &donor_variants);
        let warm = vec![WarmSource {
            variant: Variant::new(5.0, 1),
            result: Arc::clone(&donor.results[0]),
        }];
        let report = run_warm(&engine, &prepared, &variants, &warm);
        assert_eq!(report.warm_seeds, 1);
        assert_eq!(report.warm_hits(), 0);
        assert_eq!(report.from_scratch_count(), 1);
    }

    #[test]
    fn warm_start_with_many_threads_terminates_cleanly() {
        let points = blobs(500, 4, 83);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(8).with_r(16));
        let prepared = engine.prepare(&points, None).unwrap();
        let cold = run_prepared(&engine, &prepared, &variants);
        let warm: Vec<WarmSource> = variants
            .iter()
            .enumerate()
            .map(|(i, v)| WarmSource {
                variant: v,
                result: Arc::clone(&cold.results[i]),
            })
            .collect();
        let report = run_warm(&engine, &prepared, &variants, &warm);
        assert_all_complete_once(&report, variants.len());
        // Every variant has an identity seed at distance 0: all warm.
        assert_eq!(report.warm_hits(), variants.len());
    }

    // ----- termination edge cases: every variant completes exactly once
    // and the "every variant must have completed" invariant never trips.

    fn assert_all_complete_once(report: &RunReport, expect: usize) {
        assert_eq!(report.outcomes.len(), expect);
        assert_eq!(report.results.len(), expect);
        let mut seen = vec![false; expect];
        for o in &report.outcomes {
            assert!(!seen[o.index], "variant {} completed twice", o.index);
            seen[o.index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn more_threads_than_variants_terminates() {
        // T = 8 over |V| = 2: six workers never get an assignment and must
        // exit cleanly without tripping the completion invariant.
        let points = blobs(300, 3, 101);
        let variants = VariantSet::cartesian(&[1.0], &[4, 8]);
        for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
            let engine = Engine::new(
                EngineConfig::default()
                    .with_threads(8)
                    .with_r(16)
                    .with_scheduler(sched),
            );
            let report = run(&engine, &points, &variants);
            assert_all_complete_once(&report, 2);
            assert_eq!(report.worker_stats.len(), 8);
        }
    }

    #[test]
    fn single_variant_terminates() {
        let points = blobs(200, 2, 103);
        let variants = VariantSet::replicated(Variant::new(1.0, 4), 1);
        for threads in [1usize, 2, 7] {
            let engine = Engine::new(EngineConfig::default().with_threads(threads).with_r(8));
            let report = run(&engine, &points, &variants);
            assert_all_complete_once(&report, 1);
            assert_eq!(report.from_scratch_count(), 1);
        }
    }

    #[test]
    fn degenerate_point_sets_terminate() {
        // Empty, singleton, and all-identical databases, with T > |V| too.
        let variants = small_grid();
        for points in [
            Vec::new(),
            vec![Point2::new(1.0, 1.0)],
            vec![Point2::new(2.0, 3.0); 64],
        ] {
            let engine = Engine::new(EngineConfig::default().with_threads(8).with_r(4));
            let report = run(&engine, &points, &variants);
            assert_all_complete_once(&report, variants.len());
            for r in &report.results {
                assert_eq!(r.len(), points.len());
            }
        }
    }

    /// The deprecated method matrix must keep its exact legacy contracts
    /// (panic text included) while forwarding to [`Engine::execute`].
    #[test]
    #[allow(deprecated, clippy::disallowed_methods)]
    fn legacy_wrappers_preserve_contracts() {
        let points = blobs(300, 3, 105);
        let variants = small_grid();
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));

        // run / try_run match execute over raw points.
        let legacy = engine.run(&points, &variants);
        let new = run(&engine, &points, &variants);
        assert_eq!(legacy.outcomes.len(), new.outcomes.len());
        for i in 0..variants.len() {
            assert_eq!(
                legacy.results[i].num_clusters(),
                new.results[i].num_clusters()
            );
        }
        let bad = vec![Point2::new(0.0, 0.0), Point2::new(f64::NAN, 1.0)];
        match engine.try_run(&bad, &variants).unwrap_err() {
            EngineError::NonFinitePoint { index, .. } => assert_eq!(index, 1),
            other => panic!("wrong error: {other:?}"),
        }
        let unwound =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(&bad, &variants)));
        let msg = *unwound.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("non-finite"), "{msg}");

        // run_prepared / run_prepared_warm forward too; a mismatched warm
        // source keeps the legacy panic text.
        let prepared = engine.prepare(&points, None).unwrap();
        let via_wrapper = engine.run_prepared(&prepared, &variants);
        assert_eq!(via_wrapper.outcomes.len(), variants.len());
        assert!(engine.try_run_prepared(&prepared, &variants).is_ok());
        let small = engine.prepare(&points[..50], None).unwrap();
        let donor_variants = VariantSet::replicated(Variant::new(1.0, 4), 1);
        let donor = engine.run_prepared(&small, &donor_variants);
        let warm = vec![WarmSource {
            variant: Variant::new(1.0, 4),
            result: Arc::clone(&donor.results[0]),
        }];
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_prepared_warm(&prepared, &variants, &warm)
        }));
        let msg = *unwound.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("different database"), "{msg}");
    }

    // The fault seam is a process-global atomic shared by every test in
    // this binary, so all containment scenarios run inside one #[test]
    // (parallel harness ordering must not matter). The poisoned ε values
    // (11.x) are chosen outside every other test's variant pool, so an
    // armed seam here cannot fire for concurrent traffic.
    #[test]
    fn job_panic_is_contained_and_engine_stays_usable() {
        let points = blobs(400, 3, 57);
        let engine = Engine::new(EngineConfig::default().with_threads(4).with_r(16));
        let index = engine.prepare(&points, Some(1.0)).unwrap();

        // A poisoned variant in the middle of an otherwise healthy set
        // fails the whole run with a typed error naming the variant —
        // without unwinding through execute.
        let poisoned = Variant::new(11.25, 4);
        let mixed = VariantSet::new(vec![
            Variant::new(0.8, 4),
            poisoned,
            Variant::new(1.2, 8),
            Variant::new(1.6, 4),
        ]);
        {
            let _armed = crate::fault::ArmedFault::new(11.25);
            let err = engine
                .execute(&RunRequest::prepared(&index, &mixed))
                .expect_err("poisoned variant must fail the run");
            let EngineError::JobPanic(ref p) = err else {
                panic!("wrong error: {err:?}");
            };
            assert_eq!(p.variant, poisoned);
            assert!(
                p.message.contains(crate::fault::INJECTED_PANIC_PREFIX),
                "unexpected panic message: {}",
                p.message
            );
            assert!(err.to_string().contains("11.25"), "{err}");

            // Same containment on the warm path.
            let poison_set = VariantSet::new(vec![poisoned]);
            let warm_err = engine
                .execute(&RunRequest::prepared(&index, &poison_set).warm(&[]))
                .expect_err("warm path must contain the panic too");
            assert!(matches!(
                warm_err,
                EngineError::JobPanic(JobPanic { variant, .. }) if variant == poisoned
            ));
        }

        // Seam disarmed: the exact same engine, index, and variant set now
        // complete — the failed run leaked nothing that poisons later runs.
        let report = run_prepared(&engine, &index, &mixed);
        assert_all_complete_once(&report, 4);

        // The panicking wrappers preserve the legacy contract.
        let _armed = crate::fault::ArmedFault::new(11.5);
        let poison_set = VariantSet::new(vec![Variant::new(11.5, 4)]);
        #[allow(deprecated, clippy::disallowed_methods)]
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_prepared(&index, &poison_set)
        }));
        let msg = *unwound.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(crate::fault::INJECTED_PANIC_PREFIX), "{msg}");
    }
}
