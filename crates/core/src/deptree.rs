//! The static variant dependency tree of Figure 3(a).
//!
//! With global knowledge (disregarding execution order), each variant's
//! ideal reuse source is the variant minimizing the component-wise
//! parameter difference among those satisfying the inclusion criteria.
//! The resulting forest explains the schedules of Figure 3(b)–(c), is used
//! by tests to validate SchedGreedy's choices, and can be exported to
//! Graphviz for inspection.

use crate::variant::VariantSet;

/// A parent-pointer forest over a [`VariantSet`].
#[derive(Clone, Debug, PartialEq)]
pub struct DependencyTree {
    variants: VariantSet,
    /// `parent[i]` = preferred reuse source of variant `i` (canonical
    /// indices), `None` for roots.
    parent: Vec<Option<usize>>,
}

impl DependencyTree {
    /// Builds the forest: variant `i`'s parent is the earlier variant `j`
    /// (canonical order, `j < i`) that `i` can reuse, minimizing the
    /// normalized parameter distance. Restricting to earlier variants
    /// breaks the tie cycles identical variants would otherwise create
    /// and matches the canonical execution order.
    pub fn build(variants: VariantSet) -> Self {
        let er = variants.eps_range();
        let mr = variants.minpts_range();
        let parent = (0..variants.len())
            .map(|i| {
                let vi = variants[i];
                let mut best: Option<(f64, usize)> = None;
                for j in 0..i {
                    if !vi.can_reuse(&variants[j]) {
                        continue;
                    }
                    let d = vi.param_distance(&variants[j], er, mr);
                    let cand = (d, j);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
                best.map(|(_, j)| j)
            })
            .collect();
        Self { variants, parent }
    }

    /// The variant set this tree is over.
    pub fn variants(&self) -> &VariantSet {
        &self.variants
    }

    /// Preferred reuse source of variant `i`.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Indices of the roots (variants that must cluster from scratch under
    /// ideal global knowledge).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.parent.len())
            .filter(|&i| self.parent[i].is_none())
            .collect()
    }

    /// Children of variant `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.parent.len())
            .filter(|&c| self.parent[c] == Some(i))
            .collect()
    }

    /// Depth of variant `i` (roots have depth 0).
    pub fn depth(&self, i: usize) -> usize {
        let mut d = 0;
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// A depth-first schedule over the forest — the ordering Figure 3(b)
    /// illustrates for T = 1.
    pub fn depth_first_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.parent.len());
        let mut stack: Vec<usize> = self.roots().into_iter().rev().collect();
        while let Some(i) = stack.pop() {
            order.push(i);
            let mut kids = self.children(i);
            kids.reverse();
            stack.extend(kids);
        }
        order
    }

    /// Graphviz DOT rendering, for documentation and debugging.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph variants {\n  rankdir=BT;\n");
        for i in 0..self.parent.len() {
            let v = self.variants[i];
            let _ = writeln!(s, "  v{i} [label=\"({}, {})\"];", v.eps, v.minpts);
        }
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                let _ = writeln!(s, "  v{i} -> v{p};");
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;

    fn figure3() -> DependencyTree {
        DependencyTree::build(VariantSet::cartesian(&[0.2, 0.4, 0.6], &[20, 24, 28, 32]))
    }

    #[test]
    fn single_root_is_smallest_eps_largest_minpts() {
        let t = figure3();
        let roots = t.roots();
        assert_eq!(roots, vec![0]);
        assert_eq!(t.variants()[0], Variant::new(0.2, 32));
    }

    #[test]
    fn parents_satisfy_inclusion_criteria() {
        let t = figure3();
        for i in 0..t.variants().len() {
            if let Some(p) = t.parent(i) {
                assert!(t.variants()[i].can_reuse(&t.variants()[p]));
                assert!(p < i);
            }
        }
    }

    #[test]
    fn figure3_example_edge() {
        // (0.6, 20) minimizes component-wise difference with (0.6, 24),
        // not (0.2, 32).
        let t = figure3();
        let set = t.variants().clone();
        let i = (0..set.len())
            .find(|&i| set[i] == Variant::new(0.6, 20))
            .unwrap();
        let p = t.parent(i).unwrap();
        assert_eq!(set[p], Variant::new(0.6, 24));
    }

    #[test]
    fn depth_first_order_is_a_permutation_and_parent_first() {
        let t = figure3();
        let order = t.depth_first_order();
        assert_eq!(order.len(), t.variants().len());
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(p, &v)| (v, p)).collect();
        for i in 0..t.variants().len() {
            if let Some(p) = t.parent(i) {
                assert!(pos[&p] < pos[&i], "parent {p} after child {i}");
            }
        }
    }

    #[test]
    fn identical_variants_chain_without_cycles() {
        let t = DependencyTree::build(VariantSet::replicated(Variant::new(0.5, 4), 4));
        assert_eq!(t.roots(), vec![0]);
        for i in 1..4 {
            assert!(t.parent(i).is_some());
            assert!(t.depth(i) >= 1);
        }
    }

    #[test]
    fn dot_output_contains_every_variant() {
        let t = figure3();
        let dot = t.to_dot();
        assert!(dot.contains("digraph"));
        for i in 0..t.variants().len() {
            assert!(dot.contains(&format!("v{i} ")));
        }
    }

    #[test]
    fn disjoint_parameter_islands_give_multiple_roots() {
        // Two ε values where the larger-ε group has strictly larger
        // minpts: no reuse possible between groups.
        let set = VariantSet::new(vec![
            Variant::new(0.1, 4),
            Variant::new(0.2, 50),
            Variant::new(0.2, 40),
        ]);
        let t = DependencyTree::build(set);
        // (0.1,4) is root; (0.2,50) cannot reuse (0.1,4) since 50 > 4.
        assert_eq!(t.roots().len(), 2);
    }
}
