//! Cluster reuse — Algorithm 3 (VariantDBSCAN) lines 4–18 and Algorithm 4
//! (ExpandCluster).
//!
//! Given a completed variant's clusters and a new variant satisfying the
//! inclusion criteria (`ε` grew, `minpts` shrank — [`Variant::can_reuse`]),
//! every old cluster's membership is still valid, so its points are copied
//! wholesale — **no ε-neighborhood searches on interior points**. Only the
//! frontier needs work:
//!
//! 1. build an MBB around the cluster, inflated by the new ε (line 10);
//! 2. query the high-resolution tree `T_high` for all points inside it
//!    (line 11) — `T_high` has one point per MBB so this harvest does not
//!    over-approximate;
//! 3. the points *outside* the cluster (line 12) get ε-searches against
//!    the tuned tree `T_low` (lines 13–14); any of their neighbors lying
//!    *inside* the cluster form the `expandSet` (line 15) — the boundary
//!    points through which the cluster can grow;
//! 4. ExpandCluster (Algorithm 4) runs the normal DBSCAN expansion seeded
//!    with `expandSet`, absorbing new points; absorbing a point that
//!    belonged to a different old cluster *destroys* that cluster
//!    (it can no longer be copied wholesale);
//! 5. whatever remains unvisited is clustered from scratch (line 18).

use vbp_dbscan::{ClusterId, ClusterResult, Labels, MAX_CLUSTER_ID};
use vbp_geom::{Mbb, PointId};
use vbp_rtree::{PackedRTree, SpatialIndex};

use crate::seeds::{seed_list, ReuseScheme};
use crate::trace::{TraceEvent, WorkerTracer};
use crate::variant::Variant;

/// Instrumentation of one reuse run — the quantities Figures 5–7 of the
/// paper plot (fraction of points reused) plus search counters that the
/// ablation benches use to explain *why* reuse wins.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReuseStats {
    /// Points copied wholesale from reused clusters.
    pub points_reused: usize,
    /// Old clusters successfully reused (expanded).
    pub clusters_reused: usize,
    /// Old clusters destroyed by absorption into another cluster.
    pub clusters_destroyed: usize,
    /// ε-searches on frontier candidates (Algorithm 3 lines 13–14).
    pub frontier_searches: usize,
    /// ε-searches inside ExpandCluster (Algorithm 4).
    pub expand_searches: usize,
    /// ε-searches in the from-scratch remainder pass (line 18).
    pub remainder_searches: usize,
    /// Database size, for computing the reused fraction.
    pub total_points: usize,
}

impl ReuseStats {
    /// Fraction of the database whose cluster assignment was copied
    /// rather than recomputed — the paper's per-variant reuse metric.
    pub fn fraction_reused(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.points_reused as f64 / self.total_points as f64
        }
    }

    /// Total ε-neighborhood searches performed.
    pub fn total_searches(&self) -> usize {
        self.frontier_searches + self.expand_searches + self.remainder_searches
    }
}

/// Runs VariantDBSCAN's reuse path for one variant.
///
/// `t_low` is the tuned-`r` tree used for ε-neighborhood searches;
/// `t_high` is the `r = 1` tree used for the cluster-MBB harvest. Both
/// must index the same point database in the same order, which must also
/// be the order `previous` was computed over.
///
/// # Panics
///
/// Panics if the trees disagree on size, if `previous` covers a different
/// database size, or (debug) if the inclusion criteria are violated for a
/// reusing scheme.
pub fn cluster_with_reuse(
    t_low: &PackedRTree,
    t_high: &PackedRTree,
    variant: Variant,
    previous: &ClusterResult,
    source_variant: Variant,
    scheme: ReuseScheme,
) -> (ClusterResult, ReuseStats) {
    let mut tracer = WorkerTracer::disabled();
    cluster_with_reuse_traced(
        t_low,
        t_high,
        variant,
        previous,
        source_variant,
        scheme,
        &mut tracer,
        0,
    )
}

/// [`cluster_with_reuse`] with the engine's per-worker tracer threaded
/// through: at [`TraceLevel::Full`](crate::trace::TraceLevel) every
/// frontier ε-query batch and every ExpandCluster wave lands in the ring
/// as a typed event tagged with `variant_idx`. With a disabled tracer the
/// extra cost is one inlined level compare per batch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cluster_with_reuse_traced(
    t_low: &PackedRTree,
    t_high: &PackedRTree,
    variant: Variant,
    previous: &ClusterResult,
    source_variant: Variant,
    scheme: ReuseScheme,
    tracer: &mut WorkerTracer,
    variant_idx: u32,
) -> (ClusterResult, ReuseStats) {
    let n = t_low.len();
    assert_eq!(
        n,
        t_high.len(),
        "T_low and T_high must index the same database"
    );
    assert_eq!(
        n,
        previous.len(),
        "previous result covers a different database"
    );
    debug_assert!(
        !scheme.reuses() || variant.can_reuse(&source_variant),
        "inclusion criteria violated: {variant} cannot reuse {source_variant}"
    );

    let points = t_low.points();
    let eps = variant.eps;
    let minpts = variant.minpts;

    let mut labels = Labels::unclassified(n);
    let mut visited = vec![false; n];
    let mut destroyed = vec![false; previous.num_clusters()];
    let mut stats = ReuseStats {
        total_points: n,
        ..ReuseStats::default()
    };
    let mut next_cluster: ClusterId = 0;

    // Scratch buffers shared across the whole run.
    let mut candidates: Vec<PointId> = Vec::new();
    let mut neighbors: Vec<PointId> = Vec::new();
    let mut queue: Vec<PointId> = Vec::new();
    let mut wave: Vec<PointId> = Vec::new();
    let mut frontier: Vec<PointId> = Vec::new();
    let mut expand_set: Vec<PointId> = Vec::new();
    let mut in_expand = vec![false; n];

    let order = seed_list(scheme, previous, points);
    for &old_c in &order {
        if destroyed[old_c as usize] {
            continue; // Algorithm 3, line 8
        }
        let members = previous.cluster(old_c);
        debug_assert!(!members.is_empty());

        // Line 9: copy the old cluster wholesale and mark it visited.
        assert!(next_cluster <= MAX_CLUSTER_ID, "cluster id space exhausted");
        let c = next_cluster;
        next_cluster += 1;
        let mut cluster_mbb = Mbb::empty();
        for &p in members {
            debug_assert!(
                labels.is_unclassified(p),
                "undestroyed old cluster contains an already-claimed point"
            );
            labels.assign(p, c);
            visited[p as usize] = true;
            cluster_mbb.expand_to(&points[p as usize]);
        }
        stats.points_reused += members.len();
        stats.clusters_reused += 1;

        // Lines 10–12: harvest the inflated cluster MBB with T_high and
        // split candidates into inside (already labeled c) and outside.
        candidates.clear();
        t_high.range_query(&cluster_mbb.inflate(eps), &mut candidates);

        // Lines 13–15: ε-search each outside point; its neighbors inside
        // the cluster are the boundary through which growth can happen.
        // The searches go through the batched entry point, which reorders
        // the frontier into tree order so consecutive probes hit warm
        // leaves. No label changes happen in this loop, so the reordering
        // cannot change the resulting expand set (only its order, which
        // the closure below is insensitive to).
        expand_set.clear();
        frontier.clear();
        frontier.extend(
            candidates
                .iter()
                .copied()
                .filter(|&p| labels.cluster(p) != Some(c)),
        );
        stats.frontier_searches += frontier.len();
        tracer.record_full(TraceEvent::FrontierBatch {
            variant: variant_idx,
            queries: frontier.len().min(u32::MAX as usize) as u32,
        });
        {
            let expand_set = &mut expand_set;
            let in_expand = &mut in_expand;
            let labels = &labels;
            t_low.epsilon_neighbors_batch(&mut frontier, eps, &mut neighbors, &mut |_, ns| {
                for &q in ns {
                    if labels.cluster(q) == Some(c) && !in_expand[q as usize] {
                        in_expand[q as usize] = true;
                        expand_set.push(q);
                    }
                }
            });
        }

        // Line 16: unmark the boundary so ExpandCluster searches it.
        for &q in &expand_set {
            visited[q as usize] = false;
            in_expand[q as usize] = false; // reset for the next seed
        }

        // Line 17 / Algorithm 4: grow the cluster from the boundary.
        queue.clear();
        queue.extend_from_slice(&expand_set);
        expand_wave(
            t_low,
            eps,
            minpts,
            c,
            &mut labels,
            &mut visited,
            previous,
            &mut destroyed,
            &mut queue,
            &mut wave,
            &mut neighbors,
            &mut stats.expand_searches,
            &mut stats.clusters_destroyed,
            tracer,
            variant_idx,
        );
    }

    // Line 18: cluster the remainder with plain DBSCAN, continuing the
    // cluster id sequence and respecting the labels assigned above.
    for p in 0..n as PointId {
        if visited[p as usize] {
            continue;
        }
        visited[p as usize] = true;
        neighbors.clear();
        t_low.epsilon_neighbors(points[p as usize], eps, &mut neighbors);
        stats.remainder_searches += 1;
        if neighbors.len() < minpts {
            if labels.cluster(p).is_none() {
                labels.mark_noise(p);
            }
            continue;
        }
        // p is core. It may already carry a label (border of a reused
        // cluster, later found core in the remainder — then its cluster
        // simply keeps it; we expand under p's existing cluster to stay
        // consistent with density reachability).
        let c = match labels.cluster(p) {
            Some(existing) => existing,
            None => {
                assert!(next_cluster <= MAX_CLUSTER_ID, "cluster id space exhausted");
                let c = next_cluster;
                next_cluster += 1;
                labels.assign(p, c);
                c
            }
        };
        queue.clear();
        queue.extend(neighbors.iter().copied().filter(|&q| q != p));
        expand_wave(
            t_low,
            eps,
            minpts,
            c,
            &mut labels,
            &mut visited,
            previous,
            &mut destroyed,
            &mut queue,
            &mut wave,
            &mut neighbors,
            &mut stats.remainder_searches,
            &mut stats.clusters_destroyed,
            tracer,
            variant_idx,
        );
    }

    // Compact cluster ids: destruction-free runs already have dense ids,
    // but a run that created ids and then absorbed nothing extra still may
    // leave gaps if a reused cluster was fully absorbed later (it cannot —
    // copied points are labeled immediately — so ids stay dense; the
    // compaction below is a cheap safety net for the invariant
    // ClusterResult enforces).
    let result = ClusterResult::from_labels(compact_labels(labels));
    (result, stats)
}

/// Algorithm 4's queue expansion, wave-batched: each round drains the
/// queue — assigning labels (and destroy bookkeeping) exactly as the
/// depth-first formulation's pop did — collects the not-yet-visited points
/// into a wave, and hands the whole wave to
/// [`SpatialIndex::epsilon_neighbors_batch`] so consecutive ε-searches
/// probe warm leaves.
///
/// Order-equivalence: the set of searched points is the
/// density-reachability closure of the seeds over points not visited at
/// loop entry — independent of visit order — and every label written is
/// the same `c`, so final labels, `searches`, and the destroyed-cluster
/// set are identical to the depth-first version (the exact-count unit
/// tests below pin this).
#[allow(clippy::too_many_arguments)]
fn expand_wave(
    t_low: &PackedRTree,
    eps: f64,
    minpts: usize,
    c: ClusterId,
    labels: &mut Labels,
    visited: &mut [bool],
    previous: &ClusterResult,
    destroyed: &mut [bool],
    queue: &mut Vec<PointId>,
    wave: &mut Vec<PointId>,
    neighbors: &mut Vec<PointId>,
    searches: &mut usize,
    clusters_destroyed: &mut usize,
    tracer: &mut WorkerTracer,
    variant_idx: u32,
) {
    while !queue.is_empty() {
        wave.clear();
        for i in queue.drain(..) {
            if labels.cluster(i).is_none() {
                labels.assign(i, c);
                if let Some(old) = previous.labels().cluster(i) {
                    if !destroyed[old as usize] {
                        destroyed[old as usize] = true;
                        *clusters_destroyed += 1;
                    }
                }
            }
            if visited[i as usize] {
                continue;
            }
            visited[i as usize] = true;
            wave.push(i);
        }
        *searches += wave.len();
        tracer.record_full(TraceEvent::ExpandWave {
            variant: variant_idx,
            points: wave.len().min(u32::MAX as usize) as u32,
        });
        let labels = &*labels;
        let visited = &*visited;
        t_low.epsilon_neighbors_batch(wave, eps, neighbors, &mut |_, ns| {
            if ns.len() >= minpts {
                for &nb in ns {
                    if !visited[nb as usize] || labels.cluster(nb).is_none() {
                        queue.push(nb);
                    }
                }
            }
        });
    }
}

/// Renumbers cluster ids to be dense `0..k` while preserving noise, in
/// first-appearance order.
fn compact_labels(labels: Labels) -> Labels {
    let raw = labels.into_raw();
    let mut map: Vec<Option<u32>> = Vec::new();
    let mut next = 0u32;
    let compacted: Vec<u32> = raw
        .iter()
        .map(|&l| {
            if l == vbp_dbscan::NOISE {
                return l;
            }
            debug_assert!(l != vbp_dbscan::UNCLASSIFIED, "unfinished labeling");
            let idx = l as usize;
            if idx >= map.len() {
                map.resize(idx + 1, None);
            }
            *map[idx].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect();
    Labels::from_raw(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbp_dbscan::{dbscan, quality_score};
    use vbp_geom::Point2;

    /// Builds T_low/T_high over the given points (bin-sorted internally),
    /// returning the trees plus the points in tree order.
    fn trees(points: &[Point2], r: usize) -> (PackedRTree, PackedRTree) {
        let (t_low, _) = PackedRTree::build(points, r);
        let t_high = PackedRTree::from_sorted(t_low.shared_points(), 1);
        (t_low, t_high)
    }

    /// Two 5×5 grids (spacing 0.4) 10 apart, plus a bridge point between
    /// them at distance 0.7 from each grid's edge, plus isolated noise.
    fn playground() -> Vec<Point2> {
        let mut pts = Vec::new();
        for gx in [0.0, 12.0] {
            for i in 0..5 {
                for j in 0..5 {
                    pts.push(Point2::new(gx + i as f64 * 0.4, j as f64 * 0.4));
                }
            }
        }
        pts.push(Point2::new(60.0, 60.0)); // noise at any reasonable ε
        pts
    }

    #[test]
    fn identical_variant_reuse_copies_everything() {
        let pts = playground();
        let (t_low, t_high) = trees(&pts, 8);
        let v = Variant::new(0.5, 4);
        let base = dbscan(&t_low, v.params());
        assert_eq!(base.num_clusters(), 2);

        let (reused, stats) =
            cluster_with_reuse(&t_low, &t_high, v, &base, v, ReuseScheme::ClusDensity);
        assert_eq!(reused.num_clusters(), 2);
        assert_eq!(stats.points_reused, 50);
        assert_eq!(stats.clusters_destroyed, 0);
        assert!(stats.fraction_reused() > 0.95);
        let q = quality_score(&base, &reused);
        assert_eq!(q.mean_score, 1.0);
    }

    #[test]
    fn growing_eps_merges_clusters_and_destroys_one() {
        let pts = playground();
        let (t_low, t_high) = trees(&pts, 8);
        let small = Variant::new(0.5, 4);
        let base = dbscan(&t_low, small.params());
        assert_eq!(base.num_clusters(), 2);

        // ε large enough to bridge the 10.4 gap between the grids.
        let big = Variant::new(11.0, 4);
        let (reused, stats) =
            cluster_with_reuse(&t_low, &t_high, big, &base, small, ReuseScheme::ClusDefault);
        let direct = dbscan(&t_low, big.params());
        assert_eq!(direct.num_clusters(), 1);
        assert_eq!(reused.num_clusters(), 1);
        assert_eq!(stats.clusters_destroyed, 1);
        assert_eq!(stats.clusters_reused, 1);
        let q = quality_score(&direct, &reused);
        assert!(q.mean_score > 0.999, "score {}", q.mean_score);
    }

    #[test]
    fn lowering_minpts_grows_clusters() {
        // Chain with a sparse tail: at minpts 4 only the dense head
        // clusters; at minpts 2 the tail joins.
        let mut pts: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64 * 0.2, 0.0)).collect();
        pts.extend((0..5).map(|i| Point2::new(4.0 + 0.9 * (i + 1) as f64, 0.0)));
        let (t_low, t_high) = trees(&pts, 4);

        let strict = Variant::new(0.95, 4);
        let loose = Variant::new(0.95, 2);
        let base = dbscan(&t_low, strict.params());
        let (reused, stats) = cluster_with_reuse(
            &t_low,
            &t_high,
            loose,
            &base,
            strict,
            ReuseScheme::ClusDensity,
        );
        let direct = dbscan(&t_low, loose.params());
        assert_eq!(reused.num_clusters(), direct.num_clusters());
        assert_eq!(reused.noise_count(), direct.noise_count());
        assert!(stats.points_reused > 0);
        let q = quality_score(&direct, &reused);
        assert!(q.mean_score > 0.999, "score {}", q.mean_score);
    }

    #[test]
    fn reuse_equals_direct_dbscan_on_random_data() {
        // Deterministic random cloud; multiple (source, target) variant
        // pairs satisfying the inclusion criteria.
        let mut state = 0xDEAD_BEEF_0BAD_F00Du64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..600)
            .map(|_| Point2::new(rnd() * 20.0, rnd() * 20.0))
            .collect();
        let (t_low, t_high) = trees(&pts, 16);

        for (src, dst) in [
            ((0.5, 8), (0.5, 4)),
            ((0.5, 8), (0.8, 8)),
            ((0.5, 8), (1.0, 3)),
            ((0.3, 6), (0.31, 6)),
        ] {
            let source = Variant::new(src.0, src.1);
            let target = Variant::new(dst.0, dst.1);
            let base = dbscan(&t_low, source.params());
            for scheme in ReuseScheme::REUSING {
                let (reused, stats) =
                    cluster_with_reuse(&t_low, &t_high, target, &base, source, scheme);
                let direct = dbscan(&t_low, target.params());
                assert_eq!(
                    reused.num_clusters(),
                    direct.num_clusters(),
                    "{source}->{target} {scheme}"
                );
                assert_eq!(
                    reused.noise_count(),
                    direct.noise_count(),
                    "{source}->{target} {scheme}"
                );
                let q = quality_score(&direct, &reused);
                assert!(
                    q.mean_score > 0.99,
                    "{source}->{target} {scheme}: score {}",
                    q.mean_score
                );
                assert!(stats.total_searches() > 0);
                reused.check_consistency().unwrap();
            }
        }
    }

    #[test]
    fn disabled_scheme_reuses_nothing() {
        let pts = playground();
        let (t_low, t_high) = trees(&pts, 8);
        let v = Variant::new(0.5, 4);
        let base = dbscan(&t_low, v.params());
        let (result, stats) =
            cluster_with_reuse(&t_low, &t_high, v, &base, v, ReuseScheme::Disabled);
        assert_eq!(stats.points_reused, 0);
        assert_eq!(stats.fraction_reused(), 0.0);
        assert_eq!(result.num_clusters(), base.num_clusters());
        let q = quality_score(&base, &result);
        assert_eq!(q.mean_score, 1.0);
    }

    #[test]
    fn reuse_from_all_noise_source() {
        let pts = playground();
        let (t_low, t_high) = trees(&pts, 8);
        // Source so strict everything is noise.
        let strict = Variant::new(0.01, 10);
        let base = dbscan(&t_low, strict.params());
        assert_eq!(base.num_clusters(), 0);
        // Target clusters normally; nothing to reuse but must be correct.
        let target = Variant::new(0.5, 4);
        let (result, stats) = cluster_with_reuse(
            &t_low,
            &t_high,
            target,
            &base,
            strict,
            ReuseScheme::ClusDensity,
        );
        let direct = dbscan(&t_low, target.params());
        assert_eq!(result.num_clusters(), direct.num_clusters());
        assert_eq!(stats.points_reused, 0);
    }

    #[test]
    fn empty_database() {
        let (t_low, t_high) = trees(&[], 8);
        let v = Variant::new(0.5, 4);
        let base = ClusterResult::empty();
        let (result, stats) =
            cluster_with_reuse(&t_low, &t_high, v, &base, v, ReuseScheme::ClusDensity);
        assert_eq!(result.len(), 0);
        assert_eq!(stats.total_points, 0);
        assert_eq!(stats.fraction_reused(), 0.0);
    }

    #[test]
    fn reuse_saves_searches() {
        // The point of the whole §IV-B machinery: reusing an identical
        // variant must issue far fewer ε-searches than clustering from
        // scratch.
        let pts = playground();
        let (t_low, t_high) = trees(&pts, 8);
        let v = Variant::new(0.5, 4);
        let base = dbscan(&t_low, v.params());
        let (_, with_reuse) =
            cluster_with_reuse(&t_low, &t_high, v, &base, v, ReuseScheme::ClusDensity);
        let (_, without) = cluster_with_reuse(&t_low, &t_high, v, &base, v, ReuseScheme::Disabled);
        assert!(
            with_reuse.total_searches() < without.total_searches(),
            "reuse {} vs scratch {}",
            with_reuse.total_searches(),
            without.total_searches()
        );
    }
}
