//! Structured tracing and per-phase latency histograms — the engine's
//! observability substrate.
//!
//! The paper's argument is entirely about *where time goes* (index memory
//! traffic vs distance filtering, reuse vs re-clustering, scheduling vs
//! idle workers), so the engine records *where time went* as first-class
//! data rather than post-hoc aggregates:
//!
//! - **Per-worker ring buffers** of typed [`TraceEvent`]s with monotonic
//!   nanosecond timestamps. Each worker owns its ring outright — no locks,
//!   no sharing, no allocation after the ring is created — and the rings
//!   are merged into a [`TraceSnapshot`] only after the run completes.
//!   With [`TraceLevel::Off`] (the default) every record call is a single
//!   inlined enum compare followed by an early return, and no ring is ever
//!   allocated, so the disabled-mode cost is a branch per event site (the
//!   `trace_overhead` bench pins this under 1% of the `engine_contention`
//!   workload).
//! - **Log-bucketed latency histograms** ([`Histogram`]): power-of-two
//!   nanosecond buckets, mergeable (merge is associative and commutative,
//!   pinned by tests), recorded per worker and folded into the
//!   [`RunReport`](crate::RunReport) per phase (scratch clustering, reuse
//!   clustering, lock wait, schedule decisions).
//! - A process-shareable [`Metrics`] registry that accumulates run
//!   reports and cold-path service events (cache hits/evictions, protocol
//!   errors, contained panics) across runs — the data the service's
//!   `METRICS` protocol verb exposes in Prometheus-style text form.
//!
//! Ring sizing: [`TRACE_RING_CAPACITY`] records per worker. A record is a
//! few dozen bytes, so a full ring is well under 1 MiB per worker; when a
//! run emits more events than fit, the ring wraps and keeps the *newest*
//! records, counting the overwritten ones in [`TraceSnapshot::dropped`].

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::{JsonArray, JsonObject, RunReport};
use crate::variant::VariantSet;

/// How much a run records into its trace rings.
///
/// Levels are ordered: each level records everything the previous one
/// does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing. Every event site reduces to one branch; no ring is
    /// allocated. This is the default, and the mode tier-1 runs in.
    #[default]
    Off,
    /// Variant-level spans: scheduler pulls, start/finish, the reuse vs
    /// scratch decision, panic containment.
    Spans,
    /// Spans plus intra-variant detail on the reuse path: frontier
    /// ε-query batches and seed-expansion waves.
    Full,
}

impl TraceLevel {
    /// Parses `"off"`, `"spans"`, or `"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(TraceLevel::Off),
            "spans" => Some(TraceLevel::Spans),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        }
    }

    /// `true` unless the level is [`TraceLevel::Off`].
    #[inline]
    pub fn enabled(&self) -> bool {
        *self != TraceLevel::Off
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where an assignment's clustering came from, as recorded in trace
/// events. Mirrors the scheduler's reuse decision, including warm
/// (cross-run) sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceSource {
    /// Clustered from scratch.
    Scratch,
    /// Reused the in-run completion of this variant index.
    InRun(u32),
    /// Reused warm (cross-run cache) seed number `i`.
    Warm(u32),
}

impl TraceSource {
    fn push_json(&self, obj: JsonObject) -> JsonObject {
        match self {
            TraceSource::Scratch => obj.str("source", "scratch"),
            TraceSource::InRun(u) => obj
                .str("source", "in-run")
                .uint("source_variant", *u as u64),
            TraceSource::Warm(w) => obj.str("source", "warm").uint("warm_seed", *w as u64),
        }
    }
}

impl std::fmt::Display for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSource::Scratch => write!(f, "scratch"),
            TraceSource::InRun(u) => write!(f, "reuse<-v{u}"),
            TraceSource::Warm(w) => write!(f, "reuse<-warm#{w}"),
        }
    }
}

/// One typed trace event. `Copy` and fixed-size by construction: pushing
/// one into a ring never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worker pulled an assignment from the schedule (the heap pull
    /// under the schedule mutex). `pending` is the number of variants
    /// still unassigned after this pull.
    Pull {
        /// Variant index assigned.
        variant: u32,
        /// The reuse-vs-scratch decision attached to the assignment.
        source: TraceSource,
        /// Variants still waiting after this pull.
        pending: u32,
    },
    /// Clustering work for a variant began on a worker.
    Started {
        /// Variant index.
        variant: u32,
        /// The execution path the job is about to take.
        source: TraceSource,
    },
    /// One batched ε-query pass over a reuse frontier (Algorithm 3 lines
    /// 13–15). [`TraceLevel::Full`] only.
    FrontierBatch {
        /// Variant index.
        variant: u32,
        /// Frontier points ε-queried in this batch.
        queries: u32,
    },
    /// One seed-expansion wave inside ExpandCluster (Algorithm 4).
    /// [`TraceLevel::Full`] only.
    ExpandWave {
        /// Variant index.
        variant: u32,
        /// Points ε-queried in this wave.
        points: u32,
    },
    /// Clustering work for a variant completed.
    Finished {
        /// Variant index.
        variant: u32,
        /// Clusters found.
        clusters: u32,
        /// Noise points.
        noise: u32,
    },
    /// A from-scratch job ran the intra-variant sharded path: its points
    /// were partitioned into ε-halo'd shards, clustered concurrently, and
    /// merged through the cross-shard union phase.
    ShardMerge {
        /// Variant index.
        variant: u32,
        /// Shards the variant's points were partitioned into.
        shards: u32,
        /// Points with at least one ε-neighbor in another shard.
        border_points: u32,
        /// Cross-shard core-core unions applied in the merge phase.
        cross_unions: u32,
    },
    /// A clustering job panicked and was contained in its worker.
    PanicContained {
        /// Variant index of the offending job.
        variant: u32,
    },
    /// The service's cross-run dominance cache served a warm seed.
    CacheHit,
    /// The service's cache evicted entries to make room.
    CacheEvicted {
        /// Entries evicted in this insertion.
        entries: u32,
    },
    /// A connection produced a protocol-level error (oversized line,
    /// invalid UTF-8, unparseable request).
    ProtocolError,
    /// A streaming APPEND batch was applied to a registered dataset.
    AppendApplied {
        /// Points inserted by this batch.
        points: u32,
        /// Dataset size after the batch.
        total: u32,
    },
    /// The dominance cache was maintained after an APPEND: entries whose
    /// cached clustering was provably untouched were extended to the new
    /// dataset length, entries intersecting the insertion's affected
    /// ε-region were dropped.
    CacheRepaired {
        /// Entries kept verbatim (zero-length appends only).
        kept: u32,
        /// Entries dropped because the insertion touched their ε-region.
        dropped: u32,
        /// Entries repaired (extended) to cover the appended points.
        repaired: u32,
    },
}

impl TraceEvent {
    /// The event's kind as a stable lowercase tag (used in JSON and the
    /// Prometheus exposition).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Pull { .. } => "pull",
            TraceEvent::Started { .. } => "started",
            TraceEvent::FrontierBatch { .. } => "frontier-batch",
            TraceEvent::ExpandWave { .. } => "expand-wave",
            TraceEvent::Finished { .. } => "finished",
            TraceEvent::ShardMerge { .. } => "shard-merge",
            TraceEvent::PanicContained { .. } => "panic-contained",
            TraceEvent::CacheHit => "cache-hit",
            TraceEvent::CacheEvicted { .. } => "cache-evicted",
            TraceEvent::ProtocolError => "protocol-error",
            TraceEvent::AppendApplied { .. } => "append-applied",
            TraceEvent::CacheRepaired { .. } => "cache-repaired",
        }
    }
}

/// One timestamped, thread-attributed trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic nanoseconds since the trace epoch (the run's `t0`, or
    /// the registry's construction for shared service events).
    pub at_ns: u64,
    /// Worker thread id, or [`SHARED_THREAD`] for non-worker events.
    pub thread: u16,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// JSON object form (stable keys: `at_ns`, `thread`, `kind`, plus the
    /// event's payload fields).
    pub fn to_json(&self) -> String {
        let obj = JsonObject::new()
            .uint("at_ns", self.at_ns)
            .uint("thread", self.thread as u64)
            .str("kind", self.event.kind());
        let obj = match self.event {
            TraceEvent::Pull {
                variant,
                source,
                pending,
            } => source
                .push_json(obj.uint("variant", variant as u64))
                .uint("pending", pending as u64),
            TraceEvent::Started { variant, source } => {
                source.push_json(obj.uint("variant", variant as u64))
            }
            TraceEvent::FrontierBatch { variant, queries } => obj
                .uint("variant", variant as u64)
                .uint("queries", queries as u64),
            TraceEvent::ExpandWave { variant, points } => obj
                .uint("variant", variant as u64)
                .uint("points", points as u64),
            TraceEvent::Finished {
                variant,
                clusters,
                noise,
            } => obj
                .uint("variant", variant as u64)
                .uint("clusters", clusters as u64)
                .uint("noise", noise as u64),
            TraceEvent::ShardMerge {
                variant,
                shards,
                border_points,
                cross_unions,
            } => obj
                .uint("variant", variant as u64)
                .uint("shards", shards as u64)
                .uint("border_points", border_points as u64)
                .uint("cross_unions", cross_unions as u64),
            TraceEvent::PanicContained { variant } => obj.uint("variant", variant as u64),
            TraceEvent::CacheEvicted { entries } => obj.uint("entries", entries as u64),
            TraceEvent::AppendApplied { points, total } => obj
                .uint("points", points as u64)
                .uint("total", total as u64),
            TraceEvent::CacheRepaired {
                kept,
                dropped,
                repaired,
            } => obj
                .uint("kept", kept as u64)
                .uint("dropped", dropped as u64)
                .uint("repaired", repaired as u64),
            TraceEvent::CacheHit | TraceEvent::ProtocolError => obj,
        };
        obj.finish()
    }
}

/// Thread id recorded for events that did not originate on an engine
/// worker (service cache/protocol events in the shared registry ring).
pub const SHARED_THREAD: u16 = u16::MAX;

/// Records each per-worker ring holds. Chosen so [`TraceLevel::Spans`]
/// never wraps for realistic variant sets (3 records per assignment) and
/// [`TraceLevel::Full`] keeps several thousand waves of history per
/// worker, while a fully-populated ring stays well under 1 MiB.
pub const TRACE_RING_CAPACITY: usize = 16_384;

/// Records the shared cold-path ring in [`Metrics`] holds.
pub const SHARED_RING_CAPACITY: usize = 1_024;

/// A single-owner event ring: one per worker thread, plus the shared
/// cold-path ring inside [`Metrics`]. Never locked, never reallocated
/// after construction; wraps keeping the newest records.
#[derive(Debug)]
pub struct TraceRing {
    thread: u16,
    capacity: usize,
    ring: Vec<TraceRecord>,
    written: u64,
}

impl TraceRing {
    /// An enabled ring for `thread`, preallocated to `capacity`.
    pub fn new(thread: u16, capacity: usize) -> TraceRing {
        TraceRing {
            thread,
            capacity,
            ring: Vec::with_capacity(capacity),
            written: 0,
        }
    }

    /// A ring that stores nothing (capacity zero, no allocation).
    pub fn disabled(thread: u16) -> TraceRing {
        TraceRing {
            thread,
            capacity: 0,
            ring: Vec::new(),
            written: 0,
        }
    }

    #[inline]
    fn push(&mut self, at_ns: u64, event: TraceEvent) {
        let rec = TraceRecord {
            at_ns,
            thread: self.thread,
            event,
        };
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else if self.capacity > 0 {
            let slot = (self.written % self.capacity as u64) as usize;
            self.ring[slot] = rec;
        } else {
            return;
        }
        self.written += 1;
    }

    /// Records stored (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records overwritten by ring wrap.
    pub fn dropped(&self) -> u64 {
        self.written.saturating_sub(self.capacity as u64)
    }

    /// Consumes the ring, returning its records in chronological order
    /// plus the dropped count.
    pub fn into_records(self) -> (Vec<TraceRecord>, u64) {
        let dropped = self.dropped();
        if dropped == 0 {
            return (self.ring, dropped);
        }
        // The ring wrapped: the oldest surviving record sits at the next
        // write slot. Rotate so the output is chronological.
        let split = (self.written % self.capacity as u64) as usize;
        let mut records = Vec::with_capacity(self.ring.len());
        records.extend_from_slice(&self.ring[split..]);
        records.extend_from_slice(&self.ring[..split]);
        (records, dropped)
    }

    /// Chronological copy of the stored records (non-consuming).
    pub fn records(&self) -> Vec<TraceRecord> {
        let dropped = self.dropped();
        if dropped == 0 {
            return self.ring.clone();
        }
        let split = (self.written % self.capacity as u64) as usize;
        let mut records = Vec::with_capacity(self.ring.len());
        records.extend_from_slice(&self.ring[split..]);
        records.extend_from_slice(&self.ring[..split]);
        records
    }
}

/// A worker-owned tracer: a [`TraceRing`] gated by a [`TraceLevel`] and
/// stamped from a shared epoch.
///
/// The hot path is `record`/`record_full`: one inlined level compare,
/// then (only when enabled) a monotonic clock read and a ring write —
/// no locks, no allocation.
#[derive(Debug)]
pub struct WorkerTracer {
    level: TraceLevel,
    epoch: Instant,
    ring: TraceRing,
}

impl WorkerTracer {
    /// A tracer for worker `thread` stamping timestamps relative to
    /// `epoch` (the run's `t0`). Allocates its ring only when `level`
    /// is enabled.
    pub fn new(thread: u16, level: TraceLevel, epoch: Instant) -> WorkerTracer {
        let ring = if level.enabled() {
            TraceRing::new(thread, TRACE_RING_CAPACITY)
        } else {
            TraceRing::disabled(thread)
        };
        WorkerTracer { level, epoch, ring }
    }

    /// A no-op tracer (level [`TraceLevel::Off`], no allocation) for call
    /// paths that need a tracer argument but record nothing.
    pub fn disabled() -> WorkerTracer {
        WorkerTracer::new(0, TraceLevel::Off, Instant::now())
    }

    /// The tracer's level.
    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Records a span-level event ([`TraceLevel::Spans`] and up).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.level < TraceLevel::Spans {
            return;
        }
        let at_ns = saturating_ns(self.epoch.elapsed());
        self.ring.push(at_ns, event);
    }

    /// Records a detail event ([`TraceLevel::Full`] only).
    #[inline]
    pub fn record_full(&mut self, event: TraceEvent) {
        if self.level < TraceLevel::Full {
            return;
        }
        let at_ns = saturating_ns(self.epoch.elapsed());
        self.ring.push(at_ns, event);
    }

    /// Consumes the tracer, yielding its chronological records and
    /// dropped count.
    pub fn into_records(self) -> (Vec<TraceRecord>, u64) {
        self.ring.into_records()
    }
}

#[inline]
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The merged, chronologically sorted trace of one run — what
/// [`RunReport::trace`](crate::RunReport) carries when the request asked
/// for tracing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// All workers' records, merged and sorted by `at_ns` (stable, so
    /// records within one worker keep their emission order).
    pub records: Vec<TraceRecord>,
    /// Records lost to ring wrap, summed over workers.
    pub dropped: u64,
    /// The per-worker ring capacity the run used.
    pub per_worker_capacity: usize,
}

impl TraceSnapshot {
    /// Merges worker tracers into one chronological snapshot.
    pub fn from_workers(tracers: Vec<WorkerTracer>) -> TraceSnapshot {
        let mut records = Vec::new();
        let mut dropped = 0;
        for tracer in tracers {
            let (recs, d) = tracer.into_records();
            records.extend(recs);
            dropped += d;
        }
        records.sort_by_key(|r| r.at_ns);
        TraceSnapshot {
            records,
            dropped,
            per_worker_capacity: TRACE_RING_CAPACITY,
        }
    }

    /// The event sequence with timestamps stripped — the deterministic
    /// part of a `T = 1` trace (two same-seed single-thread runs must
    /// produce identical sequences; see the `trace_determinism` test).
    pub fn event_sequence(&self) -> Vec<(u16, TraceEvent)> {
        self.records.iter().map(|r| (r.thread, r.event)).collect()
    }

    /// Counts records of each kind, as `(kind, count)` pairs sorted by
    /// kind.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            *counts.entry(r.event.kind()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// JSON form: `{"dropped":…,"ring_capacity":…,"records":[…]}`.
    pub fn to_json(&self) -> String {
        let mut records = JsonArray::new();
        for r in &self.records {
            records.push_raw(&r.to_json());
        }
        JsonObject::new()
            .uint("dropped", self.dropped)
            .uint("ring_capacity", self.per_worker_capacity as u64)
            .raw("records", &records.finish())
            .finish()
    }

    /// Renders a per-variant, flame-style span dump: one line per
    /// completed variant under its worker thread, with the reuse
    /// decision, wave/batch counts, and the span's wall-clock window.
    pub fn render_text(&self, variants: &VariantSet) -> String {
        #[derive(Default, Clone)]
        struct Span {
            thread: u16,
            started_ns: u64,
            finished_ns: u64,
            source: Option<TraceSource>,
            waves: u32,
            wave_points: u64,
            batches: u32,
            batch_queries: u64,
            clusters: u32,
            noise: u32,
            finished: bool,
            panicked: bool,
        }
        let mut spans: std::collections::BTreeMap<u32, Span> = std::collections::BTreeMap::new();
        for r in &self.records {
            match r.event {
                TraceEvent::Started { variant, source } => {
                    let s = spans.entry(variant).or_default();
                    s.thread = r.thread;
                    s.started_ns = r.at_ns;
                    s.source = Some(source);
                }
                TraceEvent::FrontierBatch { variant, queries } => {
                    let s = spans.entry(variant).or_default();
                    s.batches += 1;
                    s.batch_queries += queries as u64;
                }
                TraceEvent::ExpandWave { variant, points } => {
                    let s = spans.entry(variant).or_default();
                    s.waves += 1;
                    s.wave_points += points as u64;
                }
                TraceEvent::Finished {
                    variant,
                    clusters,
                    noise,
                } => {
                    let s = spans.entry(variant).or_default();
                    s.finished_ns = r.at_ns;
                    s.clusters = clusters;
                    s.noise = noise;
                    s.finished = true;
                }
                TraceEvent::PanicContained { variant } => {
                    spans.entry(variant).or_default().panicked = true;
                }
                _ => {}
            }
        }

        let mut out = String::new();
        let mut threads: Vec<u16> = spans.values().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for thread in threads {
            out.push_str(&format!("thread {thread}\n"));
            let mut thread_spans: Vec<(&u32, &Span)> =
                spans.iter().filter(|(_, s)| s.thread == thread).collect();
            thread_spans.sort_by_key(|(_, s)| s.started_ns);
            for (&v, s) in thread_spans {
                let ms = |ns: u64| ns as f64 / 1e6;
                let variant = if (v as usize) < variants.len() {
                    format!("v{v} {}", variants.get(v as usize))
                } else {
                    format!("warm#{}", v as usize - variants.len())
                };
                let source = s
                    .source
                    .map(|src| src.to_string())
                    .unwrap_or_else(|| "?".into());
                if s.panicked {
                    out.push_str(&format!(
                        "  [{:>10.3}ms ..      PANIC]  {variant}  {source}\n",
                        ms(s.started_ns)
                    ));
                    continue;
                }
                if !s.finished {
                    continue;
                }
                out.push_str(&format!(
                    "  [{:>10.3}ms .. {:>10.3}ms]  {variant}  {source}",
                    ms(s.started_ns),
                    ms(s.finished_ns),
                ));
                if s.waves > 0 || s.batches > 0 {
                    out.push_str(&format!(
                        "  batches={} ({} queries) waves={} ({} points)",
                        s.batches, s.batch_queries, s.waves, s.wave_points
                    ));
                }
                out.push_str(&format!("  clusters={} noise={}\n", s.clusters, s.noise));
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} records dropped by ring wrap; capacity {} per worker)\n",
                self.dropped, self.per_worker_capacity
            ));
        }
        out
    }
}

/// Log₂ buckets a [`Histogram`] holds: bucket `i` counts durations in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 is `< 1 ns`), so 40 buckets
/// cover everything up to ~9 minutes with the last bucket absorbing the
/// tail.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log-bucketed latency histogram: power-of-two nanosecond buckets,
/// constant-size, mergeable.
///
/// `merge` is associative and commutative (it adds bucket counts and
/// sums), so per-worker histograms can be folded in any grouping —
/// pinned by the `histogram_merge_is_associative` test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    #[inline]
    fn bucket(ns: u64) -> usize {
        ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample of `ns` nanoseconds.
    ///
    /// Every counter add saturates: a histogram that has absorbed
    /// `u64::MAX` samples (a long-lived daemon merging forever) pins at
    /// the ceiling instead of overflow-panicking in debug builds —
    /// consistent with `sum_ns`, which has always saturated.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        let b = Self::bucket(ns);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Records one [`Duration`] sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_ns(saturating_ns(d));
    }

    /// Adds every sample of `other` into `self`. Saturating, like
    /// [`Histogram::record_ns`].
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean sample, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, ns) of bucket `i`; `u64::MAX` for the
    /// overflow bucket.
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// The upper bound (ns) of the bucket containing the `q`-quantile
    /// sample (`0 ≤ q ≤ 1`); 0 when empty. A bucketed bound, not an
    /// interpolation — adjacent quantiles can land on the same power of
    /// two.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Self::bucket_upper_ns(i);
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs in ascending
    /// bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_ns(i), c))
            .collect()
    }

    /// Cumulative bucket counts as `(upper_bound_ns, cumulative_count)`
    /// pairs, for Prometheus-style `_bucket{le=…}` exposition. Always
    /// ends with the overflow bucket (`u64::MAX`, total count).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if c > 0 || i == HISTOGRAM_BUCKETS - 1 {
                out.push((Self::bucket_upper_ns(i), cum));
            }
        }
        out
    }

    /// JSON form: `{"count":…,"sum_ns":…,"buckets":[[le_ns,count],…]}`
    /// (non-empty buckets only).
    pub fn to_json(&self) -> String {
        let mut buckets = JsonArray::new();
        for (le, c) in self.nonzero_buckets() {
            let mut pair = JsonArray::new();
            pair.push_uint(le);
            pair.push_uint(c);
            buckets.push_raw(&pair.finish());
        }
        JsonObject::new()
            .uint("count", self.count)
            .uint("sum_ns", self.sum_ns)
            .raw("buckets", &buckets.finish())
            .finish()
    }
}

/// The engine's per-phase latency histograms, recorded by every worker on
/// every assignment (always on — a handful of array increments per
/// assignment, negligible next to a clustering job) and merged into the
/// [`RunReport`](crate::RunReport).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseHistograms {
    /// From-scratch clustering latency per assignment.
    pub scratch: Histogram,
    /// Reuse-path clustering latency per assignment.
    pub reuse: Histogram,
    /// Schedule-mutex acquisition latency (two samples per assignment:
    /// pull and completion).
    pub lock_wait: Histogram,
    /// In-lock schedule decision latency (same two sample points).
    pub sched: Histogram,
    /// Per-shard local clustering latency (core flagging + intra-shard
    /// unions), one sample per shard task of a sharded execution. Empty
    /// unless a run requested intra-variant sharding.
    pub shard_local: Histogram,
    /// Cross-shard merge latency, one sample per sharded variant.
    pub shard_merge: Histogram,
}

impl PhaseHistograms {
    /// An empty set.
    pub fn new() -> PhaseHistograms {
        PhaseHistograms::default()
    }

    /// Merges every phase of `other` into `self` (associative, like
    /// [`Histogram::merge`]).
    pub fn merge(&mut self, other: &PhaseHistograms) {
        self.scratch.merge(&other.scratch);
        self.reuse.merge(&other.reuse);
        self.lock_wait.merge(&other.lock_wait);
        self.sched.merge(&other.sched);
        self.shard_local.merge(&other.shard_local);
        self.shard_merge.merge(&other.shard_merge);
    }

    /// The phases as `(name, histogram)` pairs, in stable order.
    pub fn phases(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("scratch", &self.scratch),
            ("reuse", &self.reuse),
            ("lock_wait", &self.lock_wait),
            ("sched", &self.sched),
            ("shard_local", &self.shard_local),
            ("shard_merge", &self.shard_merge),
        ]
    }

    /// JSON object keyed by phase name.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for (name, hist) in self.phases() {
            obj = obj.raw(name, &hist.to_json());
        }
        obj.finish()
    }
}

/// Counter-and-histogram snapshot taken from a [`Metrics`] registry —
/// everything the service's `METRICS` exposition needs, decoupled from
/// the registry's lock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Engine runs observed.
    pub runs: u64,
    /// Variant jobs completed across observed runs.
    pub variants_completed: u64,
    /// Jobs that clustered from scratch.
    pub from_scratch: u64,
    /// Jobs that reused an in-run completion.
    pub in_run_reused: u64,
    /// Jobs that reused a warm (cross-run cache) seed.
    pub warm_hits: u64,
    /// Contained job panics observed.
    pub panics_contained: u64,
    /// Cold-path events recorded (cache hits/evictions, protocol
    /// errors), including any the shared ring has since dropped.
    pub events_recorded: u64,
    /// Jobs executed through the intra-variant sharded path.
    pub sharded_variants: u64,
    /// Shard tasks executed across those jobs.
    pub shard_tasks: u64,
    /// Points found with at least one ε-neighbor in another shard.
    pub shard_border_points: u64,
    /// Cross-shard core-core unions applied in merge phases.
    pub shard_cross_unions: u64,
    /// Streaming APPEND batches applied to registered datasets.
    pub appends_applied: u64,
    /// Points inserted across all applied APPEND batches.
    pub append_points: u64,
    /// Dominance-cache entries repaired (extended) after appends.
    pub cache_entries_repaired: u64,
    /// Dominance-cache entries dropped by append invalidation.
    pub cache_entries_dropped: u64,
    /// Cluster-delta lines pushed to WATCH subscribers.
    pub watch_deltas: u64,
    /// Merged per-phase latency histograms across observed runs.
    pub phases: PhaseHistograms,
}

struct MetricsInner {
    snapshot: MetricsSnapshot,
    events: TraceRing,
}

/// A process-shareable metrics registry: accumulates engine
/// [`RunReport`]s and cold-path service events across runs.
///
/// The engine writes nothing here on its own — callers that want
/// cross-run aggregation (the service's dispatcher, the CLI's `trace`
/// command) call [`Metrics::observe_run`] per run. All methods take
/// `&self`; the registry locks internally (cold path only — never inside
/// a worker loop).
pub struct Metrics {
    inner: Mutex<MetricsInner>,
    epoch: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Metrics {
    /// An empty registry; its event timestamps count from now.
    pub fn new() -> Metrics {
        Metrics {
            inner: Mutex::new(MetricsInner {
                snapshot: MetricsSnapshot::default(),
                events: TraceRing::new(SHARED_THREAD, SHARED_RING_CAPACITY),
            }),
            epoch: Instant::now(),
        }
    }

    /// Folds one run's outcome counters and phase histograms into the
    /// registry.
    pub fn observe_run(&self, report: &RunReport) {
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        let snap = &mut inner.snapshot;
        snap.runs += 1;
        snap.variants_completed += report.outcomes.len() as u64;
        snap.from_scratch += report.from_scratch_count() as u64;
        snap.warm_hits += report.warm_hits() as u64;
        snap.in_run_reused += report
            .outcomes
            .iter()
            .filter(|o| o.reused_from().is_some() && !o.warm)
            .count() as u64;
        snap.sharded_variants += report.sharding.variants;
        snap.shard_tasks += report.sharding.shards;
        snap.shard_border_points += report.sharding.border_points;
        snap.shard_cross_unions += report.sharding.cross_unions;
        snap.phases.merge(&report.phases);
    }

    /// Counts one contained job panic (a run that failed as a unit).
    pub fn observe_panic(&self) {
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        inner.snapshot.panics_contained += 1;
        let at_ns = saturating_ns(self.epoch.elapsed());
        inner
            .events
            .push(at_ns, TraceEvent::PanicContained { variant: u32::MAX });
        inner.snapshot.events_recorded += 1;
    }

    /// Records a cold-path event (cache hit/eviction, protocol error)
    /// into the shared ring.
    pub fn record_event(&self, event: TraceEvent) {
        let at_ns = saturating_ns(self.epoch.elapsed());
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        inner.events.push(at_ns, event);
        inner.snapshot.events_recorded += 1;
    }

    /// Counts one applied streaming APPEND batch and records the
    /// [`TraceEvent::AppendApplied`] event in the shared ring.
    pub fn observe_append(&self, points: u32, total: u32) {
        let at_ns = saturating_ns(self.epoch.elapsed());
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        inner.snapshot.appends_applied += 1;
        inner.snapshot.append_points += points as u64;
        inner
            .events
            .push(at_ns, TraceEvent::AppendApplied { points, total });
        inner.snapshot.events_recorded += 1;
    }

    /// Counts one post-append dominance-cache maintenance pass and
    /// records the [`TraceEvent::CacheRepaired`] event.
    pub fn observe_cache_repair(&self, kept: u32, dropped: u32, repaired: u32) {
        let at_ns = saturating_ns(self.epoch.elapsed());
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        inner.snapshot.cache_entries_repaired += repaired as u64;
        inner.snapshot.cache_entries_dropped += dropped as u64;
        inner.events.push(
            at_ns,
            TraceEvent::CacheRepaired {
                kept,
                dropped,
                repaired,
            },
        );
        inner.snapshot.events_recorded += 1;
    }

    /// Counts cluster-delta lines pushed to WATCH subscribers.
    pub fn observe_watch_deltas(&self, deltas: u64) {
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        inner.snapshot.watch_deltas += deltas;
    }

    /// A decoupled copy of the current counters and histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .snapshot
            .clone()
    }

    /// Chronological copy of the shared ring's surviving events.
    pub fn recent_events(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .events
            .records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;

    fn rng_samples(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 1_000_000_000
            })
            .collect()
    }

    #[test]
    fn trace_level_parse_and_order() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("SPANS"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("Full"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Full);
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Spans.enabled());
        assert_eq!(TraceLevel::Full.to_string(), "full");
    }

    #[test]
    fn off_tracer_records_nothing_and_allocates_nothing() {
        let mut t = WorkerTracer::new(0, TraceLevel::Off, Instant::now());
        for _ in 0..100 {
            t.record(TraceEvent::CacheHit);
            t.record_full(TraceEvent::ProtocolError);
        }
        let (records, dropped) = t.into_records();
        assert!(records.is_empty());
        assert_eq!(records.capacity(), 0, "Off must not allocate a ring");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn spans_level_gates_full_events() {
        let mut t = WorkerTracer::new(3, TraceLevel::Spans, Instant::now());
        t.record(TraceEvent::Started {
            variant: 1,
            source: TraceSource::Scratch,
        });
        t.record_full(TraceEvent::ExpandWave {
            variant: 1,
            points: 10,
        });
        t.record(TraceEvent::Finished {
            variant: 1,
            clusters: 2,
            noise: 3,
        });
        let (records, _) = t.into_records();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.thread == 3));
        assert_eq!(records[0].event.kind(), "started");
        assert_eq!(records[1].event.kind(), "finished");
    }

    #[test]
    fn ring_wrap_keeps_newest_in_order() {
        let mut ring = TraceRing::new(7, 4);
        for i in 0..10u64 {
            ring.push(
                i,
                TraceEvent::ExpandWave {
                    variant: i as u32,
                    points: 0,
                },
            );
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let (records, dropped) = ring.into_records();
        assert_eq!(dropped, 6);
        let times: Vec<u64> = records.iter().map(|r| r.at_ns).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "chronological, newest kept");
    }

    #[test]
    fn snapshot_merges_and_sorts_across_workers() {
        let epoch = Instant::now();
        let mut a = WorkerTracer::new(0, TraceLevel::Spans, epoch);
        let mut b = WorkerTracer::new(1, TraceLevel::Spans, epoch);
        a.record(TraceEvent::Started {
            variant: 0,
            source: TraceSource::Scratch,
        });
        b.record(TraceEvent::Started {
            variant: 1,
            source: TraceSource::InRun(0),
        });
        a.record(TraceEvent::Finished {
            variant: 0,
            clusters: 1,
            noise: 0,
        });
        let snap = TraceSnapshot::from_workers(vec![a, b]);
        assert_eq!(snap.records.len(), 3);
        assert!(snap.records.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(snap.dropped, 0);
        let seq = snap.event_sequence();
        assert_eq!(seq.len(), 3);
        // JSON form is syntactically sound enough to embed in a report.
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"records\":["), "{json}");
    }

    #[test]
    fn render_text_shows_spans_and_reuse_decisions() {
        let epoch = Instant::now();
        let mut t = WorkerTracer::new(0, TraceLevel::Full, epoch);
        t.record(TraceEvent::Started {
            variant: 0,
            source: TraceSource::Scratch,
        });
        t.record(TraceEvent::Finished {
            variant: 0,
            clusters: 4,
            noise: 10,
        });
        t.record(TraceEvent::Started {
            variant: 1,
            source: TraceSource::InRun(0),
        });
        t.record_full(TraceEvent::ExpandWave {
            variant: 1,
            points: 25,
        });
        t.record(TraceEvent::Finished {
            variant: 1,
            clusters: 4,
            noise: 8,
        });
        let snap = TraceSnapshot::from_workers(vec![t]);
        let variants = VariantSet::new(vec![Variant::new(0.5, 4), Variant::new(0.6, 4)]);
        let text = snap.render_text(&variants);
        assert!(text.contains("thread 0"), "{text}");
        assert!(text.contains("scratch"), "{text}");
        assert!(text.contains("reuse<-v0"), "{text}");
        assert!(text.contains("waves=1 (25 points)"), "{text}");
        assert!(text.contains("clusters=4 noise=8"), "{text}");
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 1: [1, 2)
        h.record_ns(1023); // bucket 10: [512, 1024)
        h.record_ns(1024); // bucket 11
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 2048);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(1, 1), (2, 1), (1024, 1), (2048, 1)]);
        // The overflow bucket absorbs the huge tail.
        h.record_ns(u64::MAX);
        assert_eq!(
            h.nonzero_buckets().last().unwrap().0,
            u64::MAX,
            "tail bucket"
        );
    }

    #[test]
    fn histogram_counters_saturate_at_u64_max_neighborhood() {
        // Merge-doubling reaches the u64 ceiling in ~64 rounds; every
        // counter (bucket, count, sum) must pin there instead of
        // overflow-panicking in debug builds.
        let mut h = Histogram::new();
        h.record_ns(100); // bucket upper bound 128
        for _ in 0..70 {
            let copy = h.clone();
            h.merge(&copy);
        }
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum_ns(), u64::MAX);
        assert_eq!(h.nonzero_buckets(), vec![(128, u64::MAX)]);
        // Further traffic at the ceiling stays saturated.
        h.record_ns(100);
        h.record_ns(u64::MAX);
        let copy = h.clone();
        h.merge(&copy);
        assert_eq!(h.count(), u64::MAX);
        // Derived views survive a saturated histogram too.
        assert_eq!(h.quantile_upper_ns(0.5), 128);
        assert_eq!(h.cumulative_buckets().last().unwrap().1, u64::MAX);
        assert_eq!(h.mean_ns(), 1.0);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record_ns(100); // bucket upper bound 128
        }
        h.record_ns(1_000_000); // upper bound 2^20 = 1048576
        assert_eq!(h.quantile_upper_ns(0.5), 128);
        assert_eq!(h.quantile_upper_ns(1.0), 1 << 20);
        assert_eq!(Histogram::new().quantile_upper_ns(0.5), 0);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let make = |seed: u64| {
            let mut h = Histogram::new();
            for ns in rng_samples(seed, 500) {
                h.record_ns(ns);
            }
            h
        };
        let (a, b, c) = (make(11), make(22), make(33));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // a ⊔ b == b ⊔ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        // Merge equals recording the union of samples directly.
        let mut direct = Histogram::new();
        for seed in [11u64, 22, 33] {
            for ns in rng_samples(seed, 500) {
                direct.record_ns(ns);
            }
        }
        assert_eq!(left, direct, "merge must equal the union of samples");
    }

    #[test]
    fn phase_histograms_merge_per_phase() {
        let mut a = PhaseHistograms::new();
        a.scratch.record_ns(10);
        a.lock_wait.record_ns(5);
        let mut b = PhaseHistograms::new();
        b.scratch.record_ns(20);
        b.reuse.record_ns(7);
        a.merge(&b);
        assert_eq!(a.scratch.count(), 2);
        assert_eq!(a.reuse.count(), 1);
        assert_eq!(a.lock_wait.count(), 1);
        assert_eq!(a.sched.count(), 0);
        let json = a.to_json();
        for phase in ["scratch", "reuse", "lock_wait", "sched"] {
            assert!(json.contains(&format!("\"{phase}\":")), "{json}");
        }
    }

    #[test]
    fn cumulative_buckets_end_with_total() {
        let mut h = Histogram::new();
        h.record_ns(1);
        h.record_ns(1000);
        h.record_ns(1000);
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().unwrap(), &(u64::MAX, 3));
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
    }

    #[test]
    fn metrics_registry_accumulates_events() {
        let m = Metrics::new();
        m.record_event(TraceEvent::CacheHit);
        m.record_event(TraceEvent::CacheEvicted { entries: 3 });
        m.record_event(TraceEvent::ProtocolError);
        m.observe_panic();
        let snap = m.snapshot();
        assert_eq!(snap.events_recorded, 4);
        assert_eq!(snap.panics_contained, 1);
        let events = m.recent_events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.thread == SHARED_THREAD));
        assert_eq!(events[0].event, TraceEvent::CacheHit);
    }
}
