//! Per-variant and per-run metrics — the quantities the paper's evaluation
//! plots: per-variant response time and fraction reused (Figure 5),
//! relative speedups (Figures 4, 7a, 8), average reuse (Figure 7b), and
//! per-thread makespans against the no-idle lower bound (Figure 9).

use std::sync::Arc;
use std::time::Duration;

use vbp_dbscan::{ClusterResult, DbscanStats};
use vbp_geom::PointId;
use vbp_rtree::TuneReport;

use crate::expand::ReuseStats;
use crate::variant::Variant;

/// How one variant was clustered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecutionPath {
    /// Plain DBSCAN (Algorithm 3, line 19).
    FromScratch(DbscanStats),
    /// Cluster reuse (Algorithm 3, lines 4–18) from the given source.
    Reused {
        /// The completed variant whose clusters were reused.
        source: Variant,
        /// Reuse instrumentation.
        stats: ReuseStats,
    },
}

/// The record of one variant's execution.
#[derive(Clone, Debug)]
pub struct VariantOutcome {
    /// Canonical index in the [`VariantSet`](crate::VariantSet).
    pub index: usize,
    /// The variant parameters.
    pub variant: Variant,
    /// Worker thread (0-based) that executed it.
    pub thread: usize,
    /// Start offset from the run's t = 0.
    pub started: Duration,
    /// Finish offset from the run's t = 0.
    pub finished: Duration,
    /// Which code path ran and its instrumentation.
    pub path: ExecutionPath,
    /// Clusters produced.
    pub clusters: usize,
    /// Points labeled noise.
    pub noise: usize,
}

impl VariantOutcome {
    /// Wall-clock time this variant took (the paper's per-variant
    /// "response time").
    pub fn response_time(&self) -> Duration {
        self.finished.saturating_sub(self.started)
    }

    /// Fraction of points whose assignment was copied from the reuse
    /// source (0 for from-scratch executions).
    pub fn fraction_reused(&self) -> f64 {
        match &self.path {
            ExecutionPath::FromScratch(_) => 0.0,
            ExecutionPath::Reused { stats, .. } => stats.fraction_reused(),
        }
    }

    /// The reuse source, if any.
    pub fn reused_from(&self) -> Option<Variant> {
        match &self.path {
            ExecutionPath::FromScratch(_) => None,
            ExecutionPath::Reused { source, .. } => Some(*source),
        }
    }

    /// Total ε-neighborhood searches issued.
    pub fn searches(&self) -> usize {
        match &self.path {
            ExecutionPath::FromScratch(s) => s.neighbor_searches,
            ExecutionPath::Reused { stats, .. } => stats.total_searches(),
        }
    }
}

/// Per-worker contention and utilization accounting.
///
/// Sampled by each worker thread around its two schedule-mutex critical
/// sections (pull and complete) and its clustering work; everything that
/// is neither is attributed to `idle`. These are the observability hooks
/// behind the `engine_contention` bench: with the monolithic
/// `Mutex<Shared>` split into a small scheduler mutex plus lock-free
/// result slots, the lock-wait share should stay small even at high `T`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker thread id (0-based).
    pub thread: usize,
    /// Assignments this worker executed.
    pub assignments: usize,
    /// Time spent blocked acquiring the schedule mutex.
    pub lock_wait: Duration,
    /// Time spent inside the schedule mutex making decisions
    /// (`next_assignment` + `complete`).
    pub sched_time: Duration,
    /// Time spent clustering variants.
    pub busy: Duration,
    /// Residual wall time: waiting for work that never came, thread
    /// startup/teardown, channel sends.
    pub idle: Duration,
}

impl WorkerStats {
    /// Fresh zeroed stats for one worker.
    pub fn new(thread: usize) -> Self {
        Self {
            thread,
            ..Self::default()
        }
    }

    /// The worker's accounted wall time.
    pub fn total(&self) -> Duration {
        self.busy + self.lock_wait + self.sched_time + self.idle
    }
}

/// The complete record of an engine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-variant outcomes, sorted by canonical variant index.
    pub outcomes: Vec<VariantOutcome>,
    /// Wall-clock makespan of the whole run (tree construction excluded;
    /// the paper indexes once and amortizes across variants).
    pub total_time: Duration,
    /// Time spent building T_low / T_high and bin-sorting — including the
    /// auto-tuning sweep when [`RChoice::Auto`](crate::RChoice) ran.
    pub index_build_time: Duration,
    /// Number of worker threads.
    pub threads: usize,
    /// The `r` (points per leaf MBB) `T_low` was actually built with —
    /// the configured value under [`RChoice::Fixed`](crate::RChoice), the
    /// sweep winner under [`RChoice::Auto`](crate::RChoice).
    pub chosen_r: usize,
    /// The auto-tuning sweep's full record; `None` unless
    /// [`RChoice::Auto`](crate::RChoice) ran (and found variants to tune
    /// against).
    pub tune: Option<TuneReport>,
    /// Clustering results per variant (in canonical variant order), in
    /// *tree order* point ids. Empty when the engine is configured with
    /// `keep_results = false`.
    pub results: Vec<Arc<ClusterResult>>,
    /// Permutation mapping tree order → caller point order.
    pub permutation: Vec<PointId>,
    /// Per-worker contention/utilization accounting, one entry per
    /// thread (unordered; see [`WorkerStats::thread`]).
    pub worker_stats: Vec<WorkerStats>,
}

impl RunReport {
    /// Sum of per-variant response times — what a single thread would
    /// spend executing this exact work distribution back to back.
    pub fn total_busy(&self) -> Duration {
        self.outcomes
            .iter()
            .map(VariantOutcome::response_time)
            .sum()
    }

    /// Busy time per thread (Figure 9's bar heights).
    pub fn per_thread_busy(&self) -> Vec<Duration> {
        let mut busy = vec![Duration::ZERO; self.threads];
        for o in &self.outcomes {
            busy[o.thread] += o.response_time();
        }
        busy
    }

    /// Per-thread makespan: when each thread finished its last variant.
    pub fn per_thread_finish(&self) -> Vec<Duration> {
        let mut finish = vec![Duration::ZERO; self.threads];
        for o in &self.outcomes {
            finish[o.thread] = finish[o.thread].max(o.finished);
        }
        finish
    }

    /// The Figure 9 lower bound: if no core ever idled, the run would take
    /// `total_busy / threads`.
    pub fn lower_bound(&self) -> Duration {
        if self.threads == 0 {
            return Duration::ZERO;
        }
        self.total_busy() / self.threads as u32
    }

    /// Slowdown of the actual makespan relative to the lower bound
    /// (the paper reports 13.5% for SchedGreedy vs 33.0% for SchedMinpts
    /// in its Figure 9 scenario). 0.0 means perfectly packed.
    pub fn slowdown_vs_lower_bound(&self) -> f64 {
        let lb = self.lower_bound().as_secs_f64();
        if lb <= 0.0 {
            return 0.0;
        }
        let makespan = self
            .per_thread_finish()
            .into_iter()
            .max()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        (makespan - lb).max(0.0) / lb
    }

    /// Mean fraction of points reused across all variants (Figure 7b).
    pub fn mean_fraction_reused(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(VariantOutcome::fraction_reused)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// How many variants were clustered from scratch.
    pub fn from_scratch_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.path, ExecutionPath::FromScratch(_)))
            .count()
    }

    /// Relative speedup versus a reference run time — the paper's y-axis:
    /// `time(reference) / time(this)`.
    pub fn speedup_vs(&self, reference: Duration) -> f64 {
        let own = self.total_time.as_secs_f64();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        reference.as_secs_f64() / own
    }

    /// Total time all workers spent blocked on the schedule mutex.
    pub fn total_lock_wait(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.lock_wait).sum()
    }

    /// Total time all workers spent inside schedule decisions.
    pub fn total_sched_time(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.sched_time).sum()
    }

    /// Total residual idle time across workers.
    pub fn total_idle(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.idle).sum()
    }

    /// Fraction of total accounted worker time spent blocked on the
    /// schedule mutex — the headline contention number of the
    /// `engine_contention` bench. 0.0 when no stats were recorded.
    pub fn lock_wait_share(&self) -> f64 {
        let accounted: Duration = self.worker_stats.iter().map(WorkerStats::total).sum();
        let accounted = accounted.as_secs_f64();
        if accounted <= 0.0 {
            return 0.0;
        }
        self.total_lock_wait().as_secs_f64() / accounted
    }

    /// Maps one variant's clustering result back to the caller's original
    /// point order.
    pub fn result_in_caller_order(&self, variant_index: usize) -> Vec<u32> {
        let result = &self.results[variant_index];
        let mut remapped = vec![0u32; result.len()];
        for (tree_idx, &orig) in self.permutation.iter().enumerate() {
            remapped[orig as usize] = result.labels().raw(tree_idx as PointId);
        }
        remapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize, thread: usize, start_ms: u64, end_ms: u64) -> VariantOutcome {
        VariantOutcome {
            index,
            variant: Variant::new(0.5, 4),
            thread,
            started: Duration::from_millis(start_ms),
            finished: Duration::from_millis(end_ms),
            path: ExecutionPath::FromScratch(DbscanStats::default()),
            clusters: 1,
            noise: 0,
        }
    }

    fn report(outcomes: Vec<VariantOutcome>, threads: usize, total_ms: u64) -> RunReport {
        RunReport {
            outcomes,
            total_time: Duration::from_millis(total_ms),
            index_build_time: Duration::ZERO,
            threads,
            chosen_r: 1,
            tune: None,
            results: Vec::new(),
            permutation: Vec::new(),
            worker_stats: Vec::new(),
        }
    }

    #[test]
    fn busy_and_lower_bound() {
        let r = report(
            vec![
                outcome(0, 0, 0, 100),
                outcome(1, 1, 0, 300),
                outcome(2, 0, 100, 200),
            ],
            2,
            300,
        );
        assert_eq!(r.total_busy(), Duration::from_millis(500));
        assert_eq!(
            r.per_thread_busy(),
            vec![Duration::from_millis(200), Duration::from_millis(300)]
        );
        assert_eq!(r.lower_bound(), Duration::from_millis(250));
        // Makespan 300 vs lower bound 250 ⇒ 20% slowdown.
        assert!((r.slowdown_vs_lower_bound() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn speedup() {
        let r = report(vec![outcome(0, 0, 0, 100)], 1, 100);
        assert!((r.speedup_vs(Duration::from_millis(500)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_counting_and_reuse_fraction() {
        let mut o2 = outcome(1, 0, 100, 150);
        o2.path = ExecutionPath::Reused {
            source: Variant::new(0.4, 8),
            stats: ReuseStats {
                points_reused: 75,
                total_points: 100,
                ..ReuseStats::default()
            },
        };
        let r = report(vec![outcome(0, 0, 0, 100), o2], 1, 150);
        assert_eq!(r.from_scratch_count(), 1);
        assert!((r.mean_fraction_reused() - 0.375).abs() < 1e-12);
        assert_eq!(r.outcomes[1].reused_from(), Some(Variant::new(0.4, 8)));
        assert_eq!(r.outcomes[1].fraction_reused(), 0.75);
    }

    #[test]
    fn contention_aggregates() {
        let mut r = report(vec![], 2, 100);
        r.worker_stats = vec![
            WorkerStats {
                thread: 0,
                assignments: 3,
                lock_wait: Duration::from_millis(10),
                sched_time: Duration::from_millis(5),
                busy: Duration::from_millis(70),
                idle: Duration::from_millis(15),
            },
            WorkerStats {
                thread: 1,
                assignments: 2,
                lock_wait: Duration::from_millis(30),
                sched_time: Duration::from_millis(5),
                busy: Duration::from_millis(50),
                idle: Duration::from_millis(15),
            },
        ];
        assert_eq!(r.total_lock_wait(), Duration::from_millis(40));
        assert_eq!(r.total_sched_time(), Duration::from_millis(10));
        assert_eq!(r.total_idle(), Duration::from_millis(30));
        // 40 ms of 200 ms accounted ⇒ 20% lock-wait share.
        assert!((r.lock_wait_share() - 0.2).abs() < 1e-9);
        assert_eq!(r.worker_stats[0].total(), Duration::from_millis(100));
    }

    #[test]
    fn empty_contention_is_zero() {
        let r = report(vec![], 2, 100);
        assert_eq!(r.total_lock_wait(), Duration::ZERO);
        assert_eq!(r.lock_wait_share(), 0.0);
    }

    #[test]
    fn empty_report() {
        let r = report(vec![], 4, 0);
        assert_eq!(r.total_busy(), Duration::ZERO);
        assert_eq!(r.mean_fraction_reused(), 0.0);
        assert_eq!(r.slowdown_vs_lower_bound(), 0.0);
    }
}
