//! Per-variant and per-run metrics — the quantities the paper's evaluation
//! plots: per-variant response time and fraction reused (Figure 5),
//! relative speedups (Figures 4, 7a, 8), average reuse (Figure 7b), and
//! per-thread makespans against the no-idle lower bound (Figure 9).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use vbp_dbscan::{ClusterResult, DbscanStats};
use vbp_geom::PointId;
use vbp_rtree::TuneReport;

use crate::expand::ReuseStats;
use crate::trace::{PhaseHistograms, TraceSnapshot};
use crate::variant::Variant;

/// How one variant was clustered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecutionPath {
    /// Plain DBSCAN (Algorithm 3, line 19).
    FromScratch(DbscanStats),
    /// Cluster reuse (Algorithm 3, lines 4–18) from the given source.
    Reused {
        /// The completed variant whose clusters were reused.
        source: Variant,
        /// Reuse instrumentation.
        stats: ReuseStats,
    },
}

/// The record of one variant's execution.
#[derive(Clone, Debug)]
pub struct VariantOutcome {
    /// Canonical index in the [`VariantSet`](crate::VariantSet).
    pub index: usize,
    /// The variant parameters.
    pub variant: Variant,
    /// Worker thread (0-based) that executed it.
    pub thread: usize,
    /// Start offset from the run's t = 0.
    pub started: Duration,
    /// Finish offset from the run's t = 0.
    pub finished: Duration,
    /// Which code path ran and its instrumentation.
    pub path: ExecutionPath,
    /// `true` when the reuse source was a *warm* one — a cached
    /// clustering completed by an earlier run over the same prepared
    /// index (see [`Engine::run_prepared_warm`](crate::Engine)) rather
    /// than a variant of this run. Always `false` for from-scratch
    /// executions.
    pub warm: bool,
    /// Clusters produced.
    pub clusters: usize,
    /// Points labeled noise.
    pub noise: usize,
}

impl VariantOutcome {
    /// Wall-clock time this variant took (the paper's per-variant
    /// "response time").
    pub fn response_time(&self) -> Duration {
        self.finished.saturating_sub(self.started)
    }

    /// Fraction of points whose assignment was copied from the reuse
    /// source (0 for from-scratch executions).
    pub fn fraction_reused(&self) -> f64 {
        match &self.path {
            ExecutionPath::FromScratch(_) => 0.0,
            ExecutionPath::Reused { stats, .. } => stats.fraction_reused(),
        }
    }

    /// The reuse source, if any.
    pub fn reused_from(&self) -> Option<Variant> {
        match &self.path {
            ExecutionPath::FromScratch(_) => None,
            ExecutionPath::Reused { source, .. } => Some(*source),
        }
    }

    /// Total ε-neighborhood searches issued.
    pub fn searches(&self) -> usize {
        match &self.path {
            ExecutionPath::FromScratch(s) => s.neighbor_searches,
            ExecutionPath::Reused { stats, .. } => stats.total_searches(),
        }
    }
}

/// Per-worker contention and utilization accounting.
///
/// Sampled by each worker thread around its two schedule-mutex critical
/// sections (pull and complete) and its clustering work; everything that
/// is neither is attributed to `idle`. These are the observability hooks
/// behind the `engine_contention` bench: with the monolithic
/// `Mutex<Shared>` split into a small scheduler mutex plus lock-free
/// result slots, the lock-wait share should stay small even at high `T`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker thread id (0-based).
    pub thread: usize,
    /// Assignments this worker executed.
    pub assignments: usize,
    /// Time spent blocked acquiring the schedule mutex.
    pub lock_wait: Duration,
    /// Time spent inside the schedule mutex making decisions
    /// (`next_assignment` + `complete`).
    pub sched_time: Duration,
    /// Time spent clustering variants.
    pub busy: Duration,
    /// Residual wall time: waiting for work that never came, thread
    /// startup/teardown, channel sends.
    pub idle: Duration,
}

impl WorkerStats {
    /// Fresh zeroed stats for one worker.
    pub fn new(thread: usize) -> Self {
        Self {
            thread,
            ..Self::default()
        }
    }

    /// The worker's accounted wall time.
    pub fn total(&self) -> Duration {
        self.busy + self.lock_wait + self.sched_time + self.idle
    }
}

/// Aggregate counters for the intra-variant sharded executions of one
/// run (all zero when no variant took the sharded path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTotals {
    /// Variants executed through the sharded path.
    pub variants: u64,
    /// Shard tasks executed across those variants.
    pub shards: u64,
    /// Points found with at least one ε-neighbor in another shard.
    pub border_points: u64,
    /// Cross-shard core-core unions applied in merge phases.
    pub cross_unions: u64,
}

impl ShardTotals {
    /// Adds another total in (associative, like the phase histograms the
    /// workers fold alongside it).
    pub fn merge(&mut self, other: &ShardTotals) {
        self.variants += other.variants;
        self.shards += other.shards;
        self.border_points += other.border_points;
        self.cross_unions += other.cross_unions;
    }

    /// JSON object form.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .uint("variants", self.variants)
            .uint("shards", self.shards)
            .uint("border_points", self.border_points)
            .uint("cross_unions", self.cross_unions)
            .finish()
    }
}

/// The complete record of an engine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-variant outcomes, sorted by canonical variant index.
    pub outcomes: Vec<VariantOutcome>,
    /// Wall-clock makespan of the whole run (tree construction excluded;
    /// the paper indexes once and amortizes across variants).
    pub total_time: Duration,
    /// Time spent building T_low / T_high and bin-sorting — including the
    /// auto-tuning sweep when [`RChoice::Auto`](crate::RChoice) ran.
    pub index_build_time: Duration,
    /// Number of worker threads.
    pub threads: usize,
    /// The `r` (points per leaf MBB) `T_low` was actually built with —
    /// the configured value under [`RChoice::Fixed`](crate::RChoice), the
    /// sweep winner under [`RChoice::Auto`](crate::RChoice).
    pub chosen_r: usize,
    /// The auto-tuning sweep's full record; `None` unless
    /// [`RChoice::Auto`](crate::RChoice) ran (and found variants to tune
    /// against).
    pub tune: Option<TuneReport>,
    /// Clustering results per variant (in canonical variant order), in
    /// *tree order* point ids. Empty when the engine is configured with
    /// `keep_results = false`.
    pub results: Vec<Arc<ClusterResult>>,
    /// Permutation mapping tree order → caller point order.
    pub permutation: Vec<PointId>,
    /// Per-worker contention/utilization accounting, one entry per
    /// thread (unordered; see [`WorkerStats::thread`]).
    pub worker_stats: Vec<WorkerStats>,
    /// Warm reuse sources the run was seeded with (0 outside
    /// [`Engine::run_prepared_warm`](crate::Engine)).
    pub warm_seeds: usize,
    /// Per-phase latency histograms (scratch/reuse busy time, lock wait,
    /// schedule decisions, shard local/merge), merged across workers.
    /// Always recorded — the per-sample cost is one `leading_zeros` and
    /// two adds.
    pub phases: PhaseHistograms,
    /// Aggregate counters of the run's intra-variant sharded executions
    /// (all zero unless the request opted in via
    /// [`RunRequest::sharding`](crate::RunRequest::sharding)).
    pub sharding: ShardTotals,
    /// The run's merged trace, when the request asked for a
    /// [`TraceLevel`](crate::trace::TraceLevel) above `Off`.
    pub trace: Option<TraceSnapshot>,
}

impl RunReport {
    /// Sum of per-variant response times — what a single thread would
    /// spend executing this exact work distribution back to back.
    pub fn total_busy(&self) -> Duration {
        self.outcomes
            .iter()
            .map(VariantOutcome::response_time)
            .sum()
    }

    /// Busy time per thread (Figure 9's bar heights).
    pub fn per_thread_busy(&self) -> Vec<Duration> {
        let mut busy = vec![Duration::ZERO; self.threads];
        for o in &self.outcomes {
            busy[o.thread] += o.response_time();
        }
        busy
    }

    /// Per-thread makespan: when each thread finished its last variant.
    pub fn per_thread_finish(&self) -> Vec<Duration> {
        let mut finish = vec![Duration::ZERO; self.threads];
        for o in &self.outcomes {
            finish[o.thread] = finish[o.thread].max(o.finished);
        }
        finish
    }

    /// The Figure 9 lower bound: if no core ever idled, the run would take
    /// `total_busy / threads`.
    pub fn lower_bound(&self) -> Duration {
        if self.threads == 0 {
            return Duration::ZERO;
        }
        self.total_busy() / self.threads as u32
    }

    /// Slowdown of the actual makespan relative to the lower bound
    /// (the paper reports 13.5% for SchedGreedy vs 33.0% for SchedMinpts
    /// in its Figure 9 scenario). 0.0 means perfectly packed.
    pub fn slowdown_vs_lower_bound(&self) -> f64 {
        let lb = self.lower_bound().as_secs_f64();
        if lb <= 0.0 {
            return 0.0;
        }
        let makespan = self
            .per_thread_finish()
            .into_iter()
            .max()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        (makespan - lb).max(0.0) / lb
    }

    /// Mean fraction of points reused across all variants (Figure 7b).
    pub fn mean_fraction_reused(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(VariantOutcome::fraction_reused)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// How many variants were clustered from scratch.
    pub fn from_scratch_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.path, ExecutionPath::FromScratch(_)))
            .count()
    }

    /// How many variants reused a *warm* (cross-run cached) source — the
    /// service cache's per-run hit count.
    pub fn warm_hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.warm).count()
    }

    /// Relative speedup versus a reference run time — the paper's y-axis:
    /// `time(reference) / time(this)`.
    pub fn speedup_vs(&self, reference: Duration) -> f64 {
        let own = self.total_time.as_secs_f64();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        reference.as_secs_f64() / own
    }

    /// Total time all workers spent blocked on the schedule mutex.
    pub fn total_lock_wait(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.lock_wait).sum()
    }

    /// Total time all workers spent inside schedule decisions.
    pub fn total_sched_time(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.sched_time).sum()
    }

    /// Total residual idle time across workers.
    pub fn total_idle(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.idle).sum()
    }

    /// Fraction of total accounted worker time spent blocked on the
    /// schedule mutex — the headline contention number of the
    /// `engine_contention` bench. 0.0 when no stats were recorded.
    pub fn lock_wait_share(&self) -> f64 {
        let accounted: Duration = self.worker_stats.iter().map(WorkerStats::total).sum();
        let accounted = accounted.as_secs_f64();
        if accounted <= 0.0 {
            return 0.0;
        }
        self.total_lock_wait().as_secs_f64() / accounted
    }

    /// Maps one variant's clustering result back to the caller's original
    /// point order.
    pub fn result_in_caller_order(&self, variant_index: usize) -> Vec<u32> {
        let result = &self.results[variant_index];
        let mut remapped = vec![0u32; result.len()];
        for (tree_idx, &orig) in self.permutation.iter().enumerate() {
            remapped[orig as usize] = result.labels().raw(tree_idx as PointId);
        }
        remapped
    }

    /// Renders the whole run machine-readably (one JSON object, no
    /// trailing newline): totals, tuning, per-variant outcomes, and
    /// per-worker stats. Emitted by `vbp sweep --json` and embedded in
    /// the service's `STATS` output.
    pub fn to_json(&self) -> String {
        let mut outcomes = JsonArray::new();
        for o in &self.outcomes {
            outcomes.push_raw(&o.to_json());
        }
        let mut workers = JsonArray::new();
        for w in &self.worker_stats {
            workers.push_raw(&w.to_json());
        }
        let tune = self
            .tune
            .as_ref()
            .map_or_else(|| "null".to_string(), tune_report_to_json);
        let o = JsonObject::new()
            .uint("variants", self.outcomes.len() as u64)
            .uint("threads", self.threads as u64)
            .uint("chosen_r", self.chosen_r as u64)
            .float("total_ms", self.total_time.as_secs_f64() * 1e3)
            .float("index_build_ms", self.index_build_time.as_secs_f64() * 1e3)
            .uint("warm_seeds", self.warm_seeds as u64)
            .uint("warm_hits", self.warm_hits() as u64)
            .uint("from_scratch", self.from_scratch_count() as u64)
            .float("mean_fraction_reused", self.mean_fraction_reused())
            .float("makespan_slowdown", self.slowdown_vs_lower_bound())
            .float("lock_wait_ms", self.total_lock_wait().as_secs_f64() * 1e3)
            .float("sched_ms", self.total_sched_time().as_secs_f64() * 1e3)
            .float("idle_ms", self.total_idle().as_secs_f64() * 1e3)
            .float("lock_wait_share", self.lock_wait_share())
            .raw("tune", &tune)
            .raw("phases", &self.phases.to_json())
            .raw("sharding", &self.sharding.to_json())
            .raw("outcomes", &outcomes.finish())
            .raw("worker_stats", &workers.finish());
        match &self.trace {
            Some(snap) => o.raw("trace", &snap.to_json()),
            None => o,
        }
        .finish()
    }
}

// ---------------------------------------------------------------------------
// Machine-readable output — a hand-rolled JSON writer. The build
// environment is offline (no serde), and both `vbp sweep --json` and the
// service's `STATS` command need structured reports, so a minimal
// RFC 8259 emitter lives here next to the types it serializes.

/// Appends `s` to `out` as a double-quoted JSON string, escaping quotes,
/// backslashes, and control characters — including DEL (`\u{7f}`), which
/// RFC 8259 permits raw but terminals and log scrapers do not. Non-ASCII
/// text (dataset names arrive from untrusted clients) passes through as
/// raw UTF-8, which JSON allows.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number. NaN and ±∞ have no JSON
/// representation and become `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's f64 Display prints plain decimal notation that
        // round-trips — valid JSON as-is.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental JSON object builder (chainable, consuming).
///
/// ```
/// use variantdbscan::metrics::JsonObject;
/// let s = JsonObject::new().str("name", "SW4").uint("points", 4).finish();
/// assert_eq!(s, r#"{"name":"SW4","points":4}"#);
/// ```
#[derive(Clone, Debug)]
pub struct JsonObject {
    buf: String,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        push_json_str(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a number field (`null` for non-finite values).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        push_json_f64(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn boolean(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn null(mut self, key: &str) -> Self {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Adds a field whose value is pre-rendered JSON (a nested object or
    /// array built with this module's writers).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Incremental JSON array builder.
#[derive(Clone, Debug)]
pub struct JsonArray {
    buf: String,
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        Self {
            buf: String::from("["),
        }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    /// Appends a pre-rendered JSON element.
    pub fn push_raw(&mut self, element: &str) {
        self.sep();
        self.buf.push_str(element);
    }

    /// Appends a string element.
    pub fn push_str(&mut self, element: &str) {
        self.sep();
        push_json_str(&mut self.buf, element);
    }

    /// Appends an unsigned integer element.
    pub fn push_uint(&mut self, element: u64) {
        self.sep();
        let _ = write!(self.buf, "{element}");
    }

    /// Appends a number element (`null` for non-finite values).
    pub fn push_float(&mut self, element: f64) {
        self.sep();
        push_json_f64(&mut self.buf, element);
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// JSON for a [`TuneReport`] (rendered here because the writer lives
/// here; `vbp-rtree` stays serialization-free).
pub fn tune_report_to_json(tune: &TuneReport) -> String {
    let mut timings = JsonArray::new();
    for (r, t) in &tune.timings {
        timings.push_raw(
            &JsonObject::new()
                .uint("r", *r as u64)
                .float("ms", t.as_secs_f64() * 1e3)
                .finish(),
        );
    }
    JsonObject::new()
        .uint("best_r", tune.best_r as u64)
        .uint("sample_size", tune.sample_size as u64)
        .raw("timings", &timings.finish())
        .finish()
}

impl WorkerStats {
    /// One worker's accounting as a JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .uint("thread", self.thread as u64)
            .uint("assignments", self.assignments as u64)
            .float("lock_wait_ms", self.lock_wait.as_secs_f64() * 1e3)
            .float("sched_ms", self.sched_time.as_secs_f64() * 1e3)
            .float("busy_ms", self.busy.as_secs_f64() * 1e3)
            .float("idle_ms", self.idle.as_secs_f64() * 1e3)
            .finish()
    }
}

impl VariantOutcome {
    /// One variant's record as a JSON object.
    pub fn to_json(&self) -> String {
        let o = JsonObject::new()
            .uint("index", self.index as u64)
            .float("eps", self.variant.eps)
            .uint("minpts", self.variant.minpts as u64)
            .uint("thread", self.thread as u64)
            .float("started_ms", self.started.as_secs_f64() * 1e3)
            .float("finished_ms", self.finished.as_secs_f64() * 1e3)
            .float("response_ms", self.response_time().as_secs_f64() * 1e3)
            .uint("clusters", self.clusters as u64)
            .uint("noise", self.noise as u64)
            .boolean("warm", self.warm)
            .float("fraction_reused", self.fraction_reused())
            .uint("searches", self.searches() as u64);
        match &self.path {
            ExecutionPath::FromScratch(_) => o.str("path", "scratch").null("source"),
            ExecutionPath::Reused { source, .. } => o.str("path", "reused").raw(
                "source",
                &JsonObject::new()
                    .float("eps", source.eps)
                    .uint("minpts", source.minpts as u64)
                    .finish(),
            ),
        }
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize, thread: usize, start_ms: u64, end_ms: u64) -> VariantOutcome {
        VariantOutcome {
            index,
            variant: Variant::new(0.5, 4),
            thread,
            started: Duration::from_millis(start_ms),
            finished: Duration::from_millis(end_ms),
            path: ExecutionPath::FromScratch(DbscanStats::default()),
            warm: false,
            clusters: 1,
            noise: 0,
        }
    }

    fn report(outcomes: Vec<VariantOutcome>, threads: usize, total_ms: u64) -> RunReport {
        RunReport {
            outcomes,
            total_time: Duration::from_millis(total_ms),
            index_build_time: Duration::ZERO,
            threads,
            chosen_r: 1,
            tune: None,
            results: Vec::new(),
            permutation: Vec::new(),
            worker_stats: Vec::new(),
            warm_seeds: 0,
            phases: PhaseHistograms::new(),
            sharding: ShardTotals::default(),
            trace: None,
        }
    }

    #[test]
    fn busy_and_lower_bound() {
        let r = report(
            vec![
                outcome(0, 0, 0, 100),
                outcome(1, 1, 0, 300),
                outcome(2, 0, 100, 200),
            ],
            2,
            300,
        );
        assert_eq!(r.total_busy(), Duration::from_millis(500));
        assert_eq!(
            r.per_thread_busy(),
            vec![Duration::from_millis(200), Duration::from_millis(300)]
        );
        assert_eq!(r.lower_bound(), Duration::from_millis(250));
        // Makespan 300 vs lower bound 250 ⇒ 20% slowdown.
        assert!((r.slowdown_vs_lower_bound() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn speedup() {
        let r = report(vec![outcome(0, 0, 0, 100)], 1, 100);
        assert!((r.speedup_vs(Duration::from_millis(500)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_counting_and_reuse_fraction() {
        let mut o2 = outcome(1, 0, 100, 150);
        o2.path = ExecutionPath::Reused {
            source: Variant::new(0.4, 8),
            stats: ReuseStats {
                points_reused: 75,
                total_points: 100,
                ..ReuseStats::default()
            },
        };
        let r = report(vec![outcome(0, 0, 0, 100), o2], 1, 150);
        assert_eq!(r.from_scratch_count(), 1);
        assert!((r.mean_fraction_reused() - 0.375).abs() < 1e-12);
        assert_eq!(r.outcomes[1].reused_from(), Some(Variant::new(0.4, 8)));
        assert_eq!(r.outcomes[1].fraction_reused(), 0.75);
    }

    #[test]
    fn contention_aggregates() {
        let mut r = report(vec![], 2, 100);
        r.worker_stats = vec![
            WorkerStats {
                thread: 0,
                assignments: 3,
                lock_wait: Duration::from_millis(10),
                sched_time: Duration::from_millis(5),
                busy: Duration::from_millis(70),
                idle: Duration::from_millis(15),
            },
            WorkerStats {
                thread: 1,
                assignments: 2,
                lock_wait: Duration::from_millis(30),
                sched_time: Duration::from_millis(5),
                busy: Duration::from_millis(50),
                idle: Duration::from_millis(15),
            },
        ];
        assert_eq!(r.total_lock_wait(), Duration::from_millis(40));
        assert_eq!(r.total_sched_time(), Duration::from_millis(10));
        assert_eq!(r.total_idle(), Duration::from_millis(30));
        // 40 ms of 200 ms accounted ⇒ 20% lock-wait share.
        assert!((r.lock_wait_share() - 0.2).abs() < 1e-9);
        assert_eq!(r.worker_stats[0].total(), Duration::from_millis(100));
    }

    #[test]
    fn empty_contention_is_zero() {
        let r = report(vec![], 2, 100);
        assert_eq!(r.total_lock_wait(), Duration::ZERO);
        assert_eq!(r.lock_wait_share(), 0.0);
    }

    #[test]
    fn empty_report() {
        let r = report(vec![], 4, 0);
        assert_eq!(r.total_busy(), Duration::ZERO);
        assert_eq!(r.mean_fraction_reused(), 0.0);
        assert_eq!(r.slowdown_vs_lower_bound(), 0.0);
    }

    // ----- the hand-rolled JSON writer

    /// Minimal JSON well-formedness scanner: strings (with escapes),
    /// balanced {}/[], and at least one top-level value. Not a full
    /// parser — enough to catch unbalanced or unescaped output.
    fn assert_well_formed_json(s: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                c => assert!(
                    !c.is_control(),
                    "unescaped control character {:?} in {s}",
                    c
                ),
            }
        }
        assert!(!in_str, "unterminated string in {s}");
        assert_eq!(depth, 0, "unbalanced brackets in {s}");
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001""#);
        assert_well_formed_json(&out);
    }

    #[test]
    fn json_escapes_del_and_every_c0_control() {
        // DEL is a control character too: terminals and log scrapers choke
        // on it even though RFC 8259 technically permits it raw.
        let mut out = String::new();
        push_json_str(&mut out, "x\u{7f}y");
        assert_eq!(out, "\"x\\u007fy\"");
        assert_well_formed_json(&out);

        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let mut out = String::new();
            push_json_str(&mut out, &c.to_string());
            assert!(
                out.chars().all(|c| !c.is_control()),
                "U+{code:04X} leaked raw: {out:?}"
            );
            assert_well_formed_json(&out);
        }
    }

    #[test]
    fn json_passes_non_ascii_through_raw() {
        // Dataset names can legitimately be non-ASCII; JSON allows raw
        // UTF-8 inside strings, so no escaping (and no mangling).
        let mut out = String::new();
        push_json_str(&mut out, "µ-blobs·日本語 ✓");
        assert_eq!(out, "\"µ-blobs·日本語 ✓\"");
        assert_well_formed_json(&out);
        // U+009F (a C1 control) is not in the C0 range and not DEL: JSON
        // permits it raw and we keep it byte-faithful — only C0 + DEL are
        // escaped, pinned here so the policy is explicit.
        let mut out = String::new();
        push_json_str(&mut out, "\u{9f}");
        assert_eq!(out, "\"\u{9f}\"");
    }

    #[test]
    fn json_non_finite_floats_become_null() {
        let s = JsonObject::new()
            .float("nan", f64::NAN)
            .float("inf", f64::INFINITY)
            .float("x", 1.5)
            .finish();
        assert_eq!(s, r#"{"nan":null,"inf":null,"x":1.5}"#);
    }

    #[test]
    fn json_object_and_array_shapes() {
        let mut a = JsonArray::new();
        a.push_uint(1);
        a.push_float(0.5);
        a.push_str("x");
        let s = JsonObject::new()
            .str("k", "v")
            .boolean("b", true)
            .null("n")
            .raw("a", &a.finish())
            .finish();
        assert_eq!(s, r#"{"k":"v","b":true,"n":null,"a":[1,0.5,"x"]}"#);
        assert_well_formed_json(&s);
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn run_report_json_carries_outcomes_and_counters() {
        let mut o2 = outcome(1, 0, 100, 150);
        o2.path = ExecutionPath::Reused {
            source: Variant::new(0.4, 8),
            stats: ReuseStats {
                points_reused: 75,
                total_points: 100,
                ..ReuseStats::default()
            },
        };
        o2.warm = true;
        let mut r = report(vec![outcome(0, 0, 0, 100), o2], 1, 150);
        r.warm_seeds = 3;
        r.worker_stats = vec![WorkerStats::new(0)];
        let json = r.to_json();
        assert_well_formed_json(&json);
        assert!(json.contains(r#""warm_seeds":3"#), "{json}");
        assert!(json.contains(r#""warm_hits":1"#), "{json}");
        assert!(json.contains(r#""from_scratch":1"#), "{json}");
        assert!(json.contains(r#""path":"reused""#), "{json}");
        assert!(
            json.contains(r#""source":{"eps":0.4,"minpts":8}"#),
            "{json}"
        );
        assert!(json.contains(r#""tune":null"#), "{json}");
        assert!(json.contains(r#""worker_stats":[{"thread":0"#), "{json}");
    }

    #[test]
    fn tune_report_json_shape() {
        let t = vbp_rtree::TuneReport {
            best_r: 30,
            timings: vec![
                (1, Duration::from_millis(2)),
                (30, Duration::from_millis(1)),
            ],
            sample_size: 512,
        };
        let json = tune_report_to_json(&t);
        assert_well_formed_json(&json);
        assert!(json.contains(r#""best_r":30"#), "{json}");
        assert!(json.contains(r#""timings":[{"r":1,"ms":2}"#), "{json}");
    }

    #[test]
    fn warm_hits_counts_only_warm_outcomes() {
        let mut a = outcome(0, 0, 0, 10);
        a.warm = true;
        let b = outcome(1, 0, 10, 20);
        let r = report(vec![a, b], 1, 20);
        assert_eq!(r.warm_hits(), 1);
    }
}
