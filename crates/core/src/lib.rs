//! **VariantDBSCAN** — variant-based parallelism for density clustering.
//!
//! Implementation of Gowanlock, Blair & Pankratius, *Exploiting
//! Variant-Based Parallelism for Data Mining of Space Weather Phenomena*
//! (2016). Given one 2-D point database and a set of DBSCAN parameter
//! variants `V = {(ε, minpts)}`, the engine maximizes clustering
//! *throughput* across all of `V` by combining three optimizations:
//!
//! 1. **Tuned indexing** ([`vbp_rtree::PackedRTree`] with `r` points per
//!    leaf MBB) to relieve the memory-bound ε-neighborhood searches;
//! 2. **Cluster reuse across variants** ([`expand`]): a variant copies the
//!    clusters of a completed variant whose parameters satisfy the
//!    inclusion criteria (ε grew, minpts shrank) and only recomputes their
//!    frontiers;
//! 3. **Online scheduling** ([`scheduler`]): [`Scheduler::SchedGreedy`] and
//!    [`Scheduler::SchedMinpts`] decide which variant each thread takes
//!    and which completed result it reuses.
//!
//! # Quick start
//!
//! ```
//! use variantdbscan::{Engine, EngineConfig, RunRequest, VariantSet};
//! use vbp_geom::Point2;
//!
//! // Two square blobs, 10 apart.
//! let mut points = Vec::new();
//! for b in [0.0, 10.0] {
//!     for i in 0..25 {
//!         points.push(Point2::new(b + (i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2));
//!     }
//! }
//!
//! // V = A × B as in the paper's §V-B notation.
//! let variants = VariantSet::cartesian(&[0.3, 0.5], &[3, 5]);
//! let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(8));
//! let report = engine.execute(&RunRequest::new(&points, &variants)).unwrap();
//!
//! assert_eq!(report.outcomes.len(), 4);
//! for result in &report.results {
//!     assert_eq!(result.num_clusters(), 2);
//! }
//! ```

#![warn(missing_docs)]

pub mod deptree;
pub mod engine;
pub mod expand;
pub mod fault;
pub mod metrics;
pub mod progress;
pub mod scheduler;
pub mod seeds;
pub mod sim;
pub mod trace;
pub mod variant;

pub use deptree::DependencyTree;
pub use engine::{
    AppendReport, Engine, EngineConfig, EngineError, JobPanic, PreparedIndex, RChoice, RunRequest,
    RunSource, Sharding, WarmSource, APPEND_RESORT_FRACTION,
};
pub use expand::{cluster_with_reuse, ReuseStats};
pub use metrics::{
    tune_report_to_json, ExecutionPath, JsonArray, JsonObject, RunReport, ShardTotals,
    VariantOutcome, WorkerStats,
};
pub use progress::ProgressEvent;
pub use scheduler::{Assignment, ReferenceScheduleState, ScheduleSource, ScheduleState, Scheduler};
pub use seeds::{seed_list, ReuseScheme};
pub use sim::{simulate, simulate_with, SimCostModel, SimOutcome, SimReport};
pub use trace::{
    Histogram, Metrics, MetricsSnapshot, PhaseHistograms, TraceEvent, TraceLevel, TraceRecord,
    TraceSnapshot, TraceSource, WorkerTracer,
};
pub use variant::{Variant, VariantSet};
