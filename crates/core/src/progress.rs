//! Live progress reporting for long engine runs.
//!
//! A full-scale S3 run (|V| = 57 over five million points) takes minutes;
//! the CLI and long-running examples want per-variant completion events
//! as they happen rather than a report at the end. Workers publish
//! completions into an unbounded `std::sync::mpsc` channel; the caller
//! consumes them from its own thread (or after the run — the events are
//! small).

use std::sync::mpsc::{channel, Receiver};

use vbp_geom::Point2;

use crate::engine::{Engine, RunRequest};
use crate::metrics::{RunReport, VariantOutcome};
use crate::variant::VariantSet;

/// A progress event.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// The shared indexes finished building (seconds spent).
    IndexBuilt {
        /// Build wall time in seconds.
        seconds: f64,
    },
    /// One variant completed.
    VariantDone(VariantOutcome),
    /// The whole run completed.
    Finished {
        /// Total variants executed.
        variants: usize,
    },
}

impl Engine {
    /// Convenience over [`Engine::execute`] with
    /// [`RunRequest::progress`]: runs over raw points while streaming
    /// [`ProgressEvent`]s. The receiver can be consumed concurrently from
    /// another thread or drained afterwards.
    ///
    /// ```
    /// use variantdbscan::{Engine, EngineConfig, VariantSet, Variant, ProgressEvent};
    /// use vbp_geom::Point2;
    ///
    /// let points: Vec<Point2> = (0..100)
    ///     .map(|i| Point2::new((i % 10) as f64, (i / 10) as f64))
    ///     .collect();
    /// let variants = VariantSet::cartesian(&[1.1, 1.5], &[3]);
    /// let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(8));
    /// let (report, events) = engine.run_with_progress(&points, &variants);
    /// let done = events
    ///     .iter()
    ///     .filter(|e| matches!(e, ProgressEvent::VariantDone(_)))
    ///     .count();
    /// assert_eq!(done, report.outcomes.len());
    /// ```
    pub fn run_with_progress(
        &self,
        points: &[Point2],
        variants: &VariantSet,
    ) -> (RunReport, Receiver<ProgressEvent>) {
        let (tx, rx) = channel();
        let report = match self.execute(&RunRequest::new(points, variants).progress(tx)) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        };
        (report, rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::variant::Variant;

    fn grid_points(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new((i % 20) as f64 * 0.5, (i / 20) as f64 * 0.5))
            .collect()
    }

    #[test]
    fn events_cover_the_whole_run() {
        let points = grid_points(400);
        let variants = VariantSet::cartesian(&[0.8, 1.2], &[3, 5]);
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        let (report, rx) = engine.run_with_progress(&points, &variants);
        let events: Vec<ProgressEvent> = rx.try_iter().collect();

        let built = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::IndexBuilt { .. }))
            .count();
        assert_eq!(built, 1);
        let done: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::VariantDone(o) => Some(o.index),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), variants.len());
        let mut sorted = done.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..variants.len()).collect::<Vec<_>>());
        assert!(matches!(
            events.last(),
            Some(ProgressEvent::Finished { variants: 4 })
        ));
        assert_eq!(report.outcomes.len(), 4);
    }

    #[test]
    fn concurrent_consumption_works() {
        let points = grid_points(400);
        let variants = VariantSet::replicated(Variant::new(0.8, 3), 6);
        let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(16));
        // Consume from a separate thread while the run progresses.
        let (report, rx) = engine.run_with_progress(&points, &variants);
        let consumer = std::thread::spawn(move || rx.iter().count());
        // Dropping all senders happened when execute returned, so the
        // consumer terminates.
        let count = consumer.join().unwrap();
        assert_eq!(count, 6 + 2); // 6 variants + IndexBuilt + Finished
        assert_eq!(report.outcomes.len(), 6);
    }
}
