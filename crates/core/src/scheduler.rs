//! Online variant scheduling — §IV-D.
//!
//! Threads pull work from a shared schedule. An assignment pairs a pending
//! variant with (optionally) a *completed* variant to reuse; the choice is
//! made at pull time, because which variants have completed is exactly the
//! online information the paper's heuristics exploit:
//!
//! - **SchedGreedy** — among all (pending, completed) pairs satisfying the
//!   inclusion criteria, pick the one with the smallest normalized
//!   parameter distance. If no pending variant can reuse anything
//!   completed, cluster the pending variant with the smallest ε / largest
//!   minpts from scratch (that is position 0 of the canonical order).
//! - **SchedMinpts** — first cluster, from scratch, the max-minpts variant
//!   of every distinct ε (the "priority list"), maximizing the diversity
//!   of future reuse sources; afterwards behave exactly like SchedGreedy.

use crate::variant::VariantSet;

/// The paper's two thread-scheduling heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Minimize each variant's time to solution by reusing the most
    /// similar completed variant (§IV-D heuristic 1).
    #[default]
    SchedGreedy,
    /// Seed the schedule with a diverse set of from-scratch variants
    /// (§IV-D heuristic 2).
    SchedMinpts,
}

impl Scheduler {
    /// Short stable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::SchedGreedy => "SchedGreedy",
            Scheduler::SchedMinpts => "SchedMinpts",
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One unit of work handed to a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the variant to cluster (into the canonical
    /// [`VariantSet`] order).
    pub variant: usize,
    /// Completed variant whose clusters should be reused, or `None` to
    /// cluster from scratch.
    pub reuse_from: Option<usize>,
}

/// Shared scheduling state. The engine wraps this in a mutex; all methods
/// are cheap relative to a clustering run.
#[derive(Clone, Debug)]
pub struct ScheduleState {
    scheduler: Scheduler,
    reuse_enabled: bool,
    eps_range: f64,
    minpts_range: f64,
    /// Pending variant indices, ascending canonical order.
    pending: Vec<usize>,
    /// SchedMinpts scratch-first queue (ascending ε), subset of pending.
    priority: Vec<usize>,
    /// Completed variant indices in completion order.
    completed: Vec<usize>,
    /// In-flight count, to distinguish "done" from "temporarily empty".
    in_flight: usize,
    variants: VariantSet,
}

impl ScheduleState {
    /// Creates the schedule for a variant set.
    ///
    /// `reuse_enabled = false` forces every assignment to be from scratch
    /// (the reference-implementation configuration).
    pub fn new(variants: VariantSet, scheduler: Scheduler, reuse_enabled: bool) -> Self {
        let pending: Vec<usize> = (0..variants.len()).collect();
        let priority = match scheduler {
            Scheduler::SchedMinpts => variants.minpts_priority_indices(),
            Scheduler::SchedGreedy => Vec::new(),
        };
        Self {
            scheduler,
            reuse_enabled,
            eps_range: variants.eps_range(),
            minpts_range: variants.minpts_range(),
            pending,
            priority,
            completed: Vec::new(),
            in_flight: 0,
            variants,
        }
    }

    /// The scheduling heuristic in use.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Variants not yet assigned.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Variants completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Returns `true` once every variant has been assigned and completed.
    pub fn is_finished(&self) -> bool {
        self.pending.is_empty() && self.in_flight == 0
    }

    /// Pulls the next assignment, or `None` when no variants are pending.
    pub fn next_assignment(&mut self) -> Option<Assignment> {
        if self.pending.is_empty() {
            return None;
        }

        // SchedMinpts: drain the scratch-first priority queue.
        if let Some(&head) = self.priority.first() {
            self.priority.remove(0);
            self.take_pending(head);
            return Some(Assignment {
                variant: head,
                reuse_from: None,
            });
        }

        if self.reuse_enabled {
            // Greedy rule: best (pending, completed) pair by parameter
            // distance; ties resolved toward earlier canonical positions
            // for determinism.
            let mut best: Option<(f64, usize, usize)> = None;
            for &v in &self.pending {
                let vv = self.variants[v];
                for &u in &self.completed {
                    if !vv.can_reuse(&self.variants[u]) {
                        continue;
                    }
                    let d =
                        vv.param_distance(&self.variants[u], self.eps_range, self.minpts_range);
                    let cand = (d, v, u);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            if let Some((_, v, u)) = best {
                self.take_pending(v);
                // SchedMinpts keeps its priority list consistent if the
                // greedy rule happens to grab one of its entries.
                self.priority.retain(|&p| p != v);
                return Some(Assignment {
                    variant: v,
                    reuse_from: Some(u),
                });
            }
        }

        // Nothing reusable (or reuse disabled): cluster from scratch the
        // pending variant with the smallest ε and largest minpts — the
        // first pending index in canonical order.
        let v = self.pending[0];
        self.take_pending(v);
        self.priority.retain(|&p| p != v);
        Some(Assignment {
            variant: v,
            reuse_from: None,
        })
    }

    /// Records that `variant` finished, making it available as a reuse
    /// source for future assignments.
    pub fn complete(&mut self, variant: usize) {
        debug_assert!(self.in_flight > 0);
        self.in_flight -= 1;
        self.completed.push(variant);
    }

    fn take_pending(&mut self, v: usize) {
        let pos = self
            .pending
            .iter()
            .position(|&p| p == v)
            .expect("assigned variant must be pending");
        self.pending.remove(pos);
        self.in_flight += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;

    fn figure3_set() -> VariantSet {
        VariantSet::cartesian(&[0.2, 0.4, 0.6], &[20, 24, 28, 32])
    }

    /// Simulates a single-threaded run: pull, execute instantly, complete.
    fn simulate_serial(mut state: ScheduleState) -> Vec<Assignment> {
        let mut order = Vec::new();
        while let Some(a) = state.next_assignment() {
            state.complete(a.variant);
            order.push(a);
        }
        assert!(state.is_finished());
        order
    }

    #[test]
    fn greedy_serial_starts_with_smallest_eps_largest_minpts() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedGreedy,
            true,
        ));
        assert_eq!(order.len(), 12);
        // First from scratch: (0.2, 32).
        assert_eq!(order[0].reuse_from, None);
        assert_eq!(set[order[0].variant], Variant::new(0.2, 32));
        // Everything else reuses something.
        for a in &order[1..] {
            assert!(a.reuse_from.is_some(), "{a:?} should reuse");
        }
    }

    #[test]
    fn greedy_reuse_sources_satisfy_inclusion_criteria() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedGreedy,
            true,
        ));
        for a in &order {
            if let Some(u) = a.reuse_from {
                assert!(
                    set[a.variant].can_reuse(&set[u]),
                    "{} cannot reuse {}",
                    set[a.variant],
                    set[u]
                );
            }
        }
    }

    #[test]
    fn minpts_scheduler_seeds_one_scratch_variant_per_eps() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedMinpts,
            true,
        ));
        // Figure 3 (c): the first three assignments are (0.2,32), (0.4,32),
        // (0.6,32), all from scratch.
        let head: Vec<Variant> = order[..3].iter().map(|a| set[a.variant]).collect();
        assert_eq!(
            head,
            vec![
                Variant::new(0.2, 32),
                Variant::new(0.4, 32),
                Variant::new(0.6, 32)
            ]
        );
        for a in &order[..3] {
            assert_eq!(a.reuse_from, None);
        }
        for a in &order[3..] {
            assert!(a.reuse_from.is_some());
        }
    }

    #[test]
    fn every_variant_assigned_exactly_once() {
        for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
            let set = figure3_set();
            let order = simulate_serial(ScheduleState::new(set.clone(), sched, true));
            let mut seen = vec![false; set.len()];
            for a in &order {
                assert!(!seen[a.variant], "variant {} assigned twice", a.variant);
                seen[a.variant] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn reuse_disabled_forces_scratch_in_canonical_order() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedGreedy,
            false,
        ));
        for (i, a) in order.iter().enumerate() {
            assert_eq!(a.variant, i);
            assert_eq!(a.reuse_from, None);
        }
    }

    #[test]
    fn concurrent_pulls_before_any_completion_are_scratch() {
        // T = 4: the first 4 pulls happen before anything completes, so
        // all must be from scratch (the paper's f = (|V|−T)/|V| bound).
        let set = figure3_set();
        let mut state = ScheduleState::new(set, Scheduler::SchedGreedy, true);
        let first: Vec<Assignment> = (0..4).map(|_| state.next_assignment().unwrap()).collect();
        for a in &first {
            assert_eq!(a.reuse_from, None);
        }
        // Complete them; the 5th pull must now reuse.
        for a in &first {
            state.complete(a.variant);
        }
        let fifth = state.next_assignment().unwrap();
        assert!(fifth.reuse_from.is_some());
    }

    #[test]
    fn greedy_prefers_componentwise_nearest_source() {
        // Complete (0.2, 32) and (0.6, 24); the best candidate pair should
        // use a source at minimal normalized distance, reproducing the
        // Figure 3 intuition that (0.6, 20) prefers (0.6, 24) over
        // (0.2, 32).
        let set = figure3_set();
        let mut state = ScheduleState::new(set.clone(), Scheduler::SchedGreedy, true);
        // Drain assignments until both desired variants have been pulled,
        // completing them immediately; then inspect who reuses what.
        let mut sources_used: Vec<(Variant, Option<Variant>)> = Vec::new();
        while let Some(a) = state.next_assignment() {
            state.complete(a.variant);
            sources_used.push((set[a.variant], a.reuse_from.map(|u| set[u])));
        }
        let (_, src) = sources_used
            .iter()
            .find(|(v, _)| *v == Variant::new(0.6, 20))
            .unwrap();
        let src = src.unwrap();
        // Its source must be strictly closer (normalized) than (0.2, 32).
        let (er, mr) = (set.eps_range(), set.minpts_range());
        let v = Variant::new(0.6, 20);
        assert!(
            v.param_distance(&src, er, mr) <= v.param_distance(&Variant::new(0.2, 32), er, mr)
        );
    }

    #[test]
    fn empty_set_finishes_immediately() {
        let mut state = ScheduleState::new(VariantSet::new(vec![]), Scheduler::SchedGreedy, true);
        assert!(state.next_assignment().is_none());
        assert!(state.is_finished());
    }
}
