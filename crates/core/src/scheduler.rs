//! Online variant scheduling — §IV-D.
//!
//! Threads pull work from a shared schedule. An assignment pairs a pending
//! variant with (optionally) a *completed* variant to reuse; the choice is
//! made at pull time, because which variants have completed is exactly the
//! online information the paper's heuristics exploit:
//!
//! - **SchedGreedy** — among all (pending, completed) pairs satisfying the
//!   inclusion criteria, pick the one with the smallest normalized
//!   parameter distance. If no pending variant can reuse anything
//!   completed, cluster the pending variant with the smallest ε / largest
//!   minpts from scratch (that is position 0 of the canonical order).
//! - **SchedMinpts** — first cluster, from scratch, the max-minpts variant
//!   of every distinct ε (the "priority list"), maximizing the diversity
//!   of future reuse sources; afterwards behave exactly like SchedGreedy.
//!
//! # Incremental best-pair selection
//!
//! The original implementation rescanned every (pending, completed) pair
//! on *each* pull — O(|pending| · |completed|) inside the engine's shared
//! lock, which serializes workers on Table IV-scale grids. This module now
//! pays an amortized cost per **completion** instead: `complete(u)` pushes
//! the eligible (pending, u) pairs into a min-heap keyed by
//! (`param_distance`, variant, source) — the same deterministic tie-break
//! as the scan — and `next_assignment` pops the heap top in O(log n),
//! lazily discarding entries whose pending variant was already taken.
//! Pending variants only ever leave the pending set, so a heap entry is
//! stale iff its variant is no longer pending; sources are never
//! invalidated because completed variants stay completed. The emitted
//! assignment sequence is therefore *identical* to the exhaustive scan's
//! (see [`ReferenceScheduleState`] and the property tests).
//!
//! # Warm sources
//!
//! The service layer's cross-run cache seeds a schedule with *externally*
//! completed variants ([`ScheduleState::with_warm_sources`]): clusterings
//! produced by an earlier engine run over the same prepared index. Warm
//! sources occupy the id range `variants.len()..variants.len() + warm`,
//! never appear as pending work, and never complete — they only add
//! candidate reuse pairs up front, so a warm-started run can hand out
//! reuse assignments from its very first pull. Ties between a warm and an
//! in-run source at equal distance resolve toward the in-run source (its
//! id is smaller), keeping cold-run behavior bit-identical when the warm
//! list is empty.

use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::variant::VariantSet;

/// The paper's two thread-scheduling heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Minimize each variant's time to solution by reusing the most
    /// similar completed variant (§IV-D heuristic 1).
    #[default]
    SchedGreedy,
    /// Seed the schedule with a diverse set of from-scratch variants
    /// (§IV-D heuristic 2).
    SchedMinpts,
}

impl Scheduler {
    /// Short stable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::SchedGreedy => "SchedGreedy",
            Scheduler::SchedMinpts => "SchedMinpts",
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One unit of work handed to a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the variant to cluster (into the canonical
    /// [`VariantSet`] order).
    pub variant: usize,
    /// Completed variant whose clusters should be reused, or `None` to
    /// cluster from scratch.
    pub reuse_from: Option<usize>,
}

/// The common schedule interface, implemented by both the production
/// [`ScheduleState`] and the executable specification
/// [`ReferenceScheduleState`]. The simulator and the equivalence tests are
/// generic over it.
pub trait ScheduleSource {
    /// Pulls the next assignment, or `None` when no variants are pending.
    fn next_assignment(&mut self) -> Option<Assignment>;
    /// Records that `variant` finished, making it available as a reuse
    /// source for future assignments.
    fn complete(&mut self, variant: usize);
    /// Returns `true` once every variant has been assigned and completed.
    fn is_finished(&self) -> bool;
}

/// A candidate (pending, completed) reuse pair, ordered exactly like the
/// reference scan's `(distance, variant, source)` tuples: ascending
/// distance, ties toward earlier canonical positions.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    dist: f64,
    variant: usize,
    source: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Distances are sums of absolute values, so never NaN and never
        // -0.0; total_cmp matches the reference scan's partial_cmp.
        self.dist
            .total_cmp(&other.dist)
            .then(self.variant.cmp(&other.variant))
            .then(self.source.cmp(&other.source))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared scheduling state. The engine wraps this in a small mutex; every
/// method is O(log n) amortized, so the critical section stays tiny even
/// on large variant grids.
#[derive(Clone, Debug)]
pub struct ScheduleState {
    scheduler: Scheduler,
    reuse_enabled: bool,
    eps_range: f64,
    minpts_range: f64,
    /// Pending variant indices; a BTreeSet so membership tests, removal,
    /// and "first pending in canonical order" are all logarithmic.
    pending: BTreeSet<usize>,
    /// SchedMinpts scratch-first queue (ascending ε), subset of pending.
    priority: VecDeque<usize>,
    /// Completed count (sources live forever; no list needed).
    completed: usize,
    /// Min-heap of candidate reuse pairs; entries whose variant has been
    /// taken are discarded lazily on pop.
    candidates: BinaryHeap<std::cmp::Reverse<Candidate>>,
    /// In-flight count, to distinguish "done" from "temporarily empty".
    in_flight: usize,
    /// Set when a worker hit a panic: no further assignments are handed
    /// out, so every worker drains and the run can fail as a unit.
    aborted: bool,
    variants: VariantSet,
}

impl ScheduleState {
    /// Creates the schedule for a variant set.
    ///
    /// `reuse_enabled = false` forces every assignment to be from scratch
    /// (the reference-implementation configuration).
    pub fn new(variants: VariantSet, scheduler: Scheduler, reuse_enabled: bool) -> Self {
        Self::with_warm_sources(variants, scheduler, reuse_enabled, &[])
    }

    /// Creates a schedule seeded with externally completed *warm sources*
    /// (see the module docs): `warm[i]` is addressable as reuse source
    /// `variants.len() + i` in the assignments this schedule emits. Warm
    /// sources contribute candidate reuse pairs immediately but are never
    /// pending and never counted as completions. With an empty `warm`
    /// slice this is exactly [`ScheduleState::new`].
    pub fn with_warm_sources(
        variants: VariantSet,
        scheduler: Scheduler,
        reuse_enabled: bool,
        warm: &[crate::variant::Variant],
    ) -> Self {
        let pending: BTreeSet<usize> = (0..variants.len()).collect();
        let priority: VecDeque<usize> = match scheduler {
            Scheduler::SchedMinpts => variants.minpts_priority_indices().into(),
            Scheduler::SchedGreedy => VecDeque::new(),
        };
        let mut state = Self {
            scheduler,
            reuse_enabled,
            eps_range: variants.eps_range(),
            minpts_range: variants.minpts_range(),
            pending,
            priority,
            completed: 0,
            candidates: BinaryHeap::new(),
            in_flight: 0,
            aborted: false,
            variants,
        };
        if state.reuse_enabled {
            for (i, &w) in warm.iter().enumerate() {
                state.push_candidates_for_source(state.variants.len() + i, w);
            }
        }
        state
    }

    /// Pushes the (pending, `source`) candidate pairs a newly available
    /// reuse source enables. `source_id` may address a warm source (id ≥
    /// `variants.len()`) — the heap and the emitted assignments carry it
    /// through untouched.
    fn push_candidates_for_source(&mut self, source_id: usize, source: crate::variant::Variant) {
        for &v in &self.pending {
            let vv = self.variants[v];
            if !vv.can_reuse(&source) {
                continue;
            }
            let dist = vv.param_distance(&source, self.eps_range, self.minpts_range);
            self.candidates.push(std::cmp::Reverse(Candidate {
                dist,
                variant: v,
                source: source_id,
            }));
        }
    }

    /// The scheduling heuristic in use.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Variants not yet assigned.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Variants completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed
    }

    /// Entries currently in the SchedMinpts scratch-first queue.
    pub fn priority_len(&self) -> usize {
        self.priority.len()
    }

    fn take_pending(&mut self, v: usize) {
        let was_pending = self.pending.remove(&v);
        debug_assert!(was_pending, "assigned variant must be pending");
        self.in_flight += 1;
    }

    /// Poisons the schedule: [`ScheduleState::next_assignment`] returns
    /// `None` from now on, so every worker exits at its next pull. Called
    /// by the engine when a job panics — the run is going to fail as a
    /// whole, and handing out more work would only delay that verdict.
    pub fn abort(&mut self) {
        self.aborted = true;
    }

    /// Returns `true` once [`ScheduleState::abort`] has been called.
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    fn pull_impl(&mut self) -> Option<Assignment> {
        if self.aborted || self.pending.is_empty() {
            return None;
        }

        // SchedMinpts: drain the scratch-first priority queue.
        if let Some(head) = self.priority.pop_front() {
            self.take_pending(head);
            return Some(Assignment {
                variant: head,
                reuse_from: None,
            });
        }

        if self.reuse_enabled {
            // Greedy rule: pop the globally best (pending, completed) pair
            // by parameter distance; stale entries (variant already taken)
            // are discarded lazily. Ordering — (distance, variant, source)
            // ascending — reproduces the reference scan's tie-break.
            while let Some(&std::cmp::Reverse(cand)) = self.candidates.peek() {
                if !self.pending.contains(&cand.variant) {
                    self.candidates.pop();
                    continue;
                }
                self.candidates.pop();
                self.take_pending(cand.variant);
                // SchedMinpts keeps its priority list consistent if the
                // greedy rule happens to grab one of its entries.
                self.priority.retain(|&p| p != cand.variant);
                return Some(Assignment {
                    variant: cand.variant,
                    reuse_from: Some(cand.source),
                });
            }
        }

        // Nothing reusable (or reuse disabled): cluster from scratch the
        // pending variant with the smallest ε and largest minpts — the
        // first pending index in canonical order.
        let v = *self.pending.first().expect("pending is non-empty");
        self.take_pending(v);
        self.priority.retain(|&p| p != v);
        Some(Assignment {
            variant: v,
            reuse_from: None,
        })
    }

    fn complete_impl(&mut self, variant: usize) {
        debug_assert!(self.in_flight > 0);
        self.in_flight -= 1;
        self.completed += 1;
        if !self.reuse_enabled {
            return;
        }
        // Amortized insertion: every pending variant that can reuse the
        // newly completed one becomes a candidate pair. Pending variants
        // only ever leave the set, so no future pair is missed.
        let u = self.variants[variant];
        self.push_candidates_for_source(variant, u);
    }
}

impl ScheduleSource for ScheduleState {
    fn next_assignment(&mut self) -> Option<Assignment> {
        self.pull_impl()
    }

    fn complete(&mut self, variant: usize) {
        self.complete_impl(variant)
    }

    fn is_finished(&self) -> bool {
        self.pending.is_empty() && self.in_flight == 0
    }
}

// Inherent forwarding so callers don't need the trait in scope.
impl ScheduleState {
    /// Pulls the next assignment, or `None` when no variants are pending.
    pub fn next_assignment(&mut self) -> Option<Assignment> {
        self.pull_impl()
    }

    /// Records that `variant` finished, making it available as a reuse
    /// source for future assignments.
    pub fn complete(&mut self, variant: usize) {
        self.complete_impl(variant)
    }

    /// Returns `true` once every variant has been assigned and completed.
    pub fn is_finished(&self) -> bool {
        ScheduleSource::is_finished(self)
    }
}

/// The original exhaustive-scan scheduler, kept verbatim as the executable
/// specification of §IV-D: `next_assignment` rescans every
/// (pending, completed) pair. O(|pending| · |completed|) per pull — do not
/// use in the engine; it exists so tests and benches can prove the
/// incremental [`ScheduleState`] emits an *identical* assignment sequence.
#[derive(Clone, Debug)]
pub struct ReferenceScheduleState {
    scheduler: Scheduler,
    reuse_enabled: bool,
    eps_range: f64,
    minpts_range: f64,
    pending: Vec<usize>,
    priority: Vec<usize>,
    completed: Vec<usize>,
    in_flight: usize,
    variants: VariantSet,
}

impl ReferenceScheduleState {
    /// Creates the reference schedule (same semantics as
    /// [`ScheduleState::new`]).
    pub fn new(variants: VariantSet, scheduler: Scheduler, reuse_enabled: bool) -> Self {
        let pending: Vec<usize> = (0..variants.len()).collect();
        let priority = match scheduler {
            Scheduler::SchedMinpts => variants.minpts_priority_indices(),
            Scheduler::SchedGreedy => Vec::new(),
        };
        Self {
            scheduler,
            reuse_enabled,
            eps_range: variants.eps_range(),
            minpts_range: variants.minpts_range(),
            pending,
            priority,
            completed: Vec::new(),
            in_flight: 0,
            variants,
        }
    }

    /// The heuristic this schedule was built with.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    fn take_pending(&mut self, v: usize) {
        let pos = self
            .pending
            .iter()
            .position(|&p| p == v)
            .expect("assigned variant must be pending");
        self.pending.remove(pos);
        self.in_flight += 1;
    }
}

impl ScheduleSource for ReferenceScheduleState {
    fn next_assignment(&mut self) -> Option<Assignment> {
        if self.pending.is_empty() {
            return None;
        }

        if let Some(&head) = self.priority.first() {
            self.priority.remove(0);
            self.take_pending(head);
            return Some(Assignment {
                variant: head,
                reuse_from: None,
            });
        }

        if self.reuse_enabled {
            let mut best: Option<(f64, usize, usize)> = None;
            for &v in &self.pending {
                let vv = self.variants[v];
                for &u in &self.completed {
                    if !vv.can_reuse(&self.variants[u]) {
                        continue;
                    }
                    let d = vv.param_distance(&self.variants[u], self.eps_range, self.minpts_range);
                    let cand = (d, v, u);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            if let Some((_, v, u)) = best {
                self.take_pending(v);
                self.priority.retain(|&p| p != v);
                return Some(Assignment {
                    variant: v,
                    reuse_from: Some(u),
                });
            }
        }

        let v = self.pending[0];
        self.take_pending(v);
        self.priority.retain(|&p| p != v);
        Some(Assignment {
            variant: v,
            reuse_from: None,
        })
    }

    fn complete(&mut self, variant: usize) {
        debug_assert!(self.in_flight > 0);
        self.in_flight -= 1;
        self.completed.push(variant);
    }

    fn is_finished(&self) -> bool {
        self.pending.is_empty() && self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Variant;

    fn figure3_set() -> VariantSet {
        VariantSet::cartesian(&[0.2, 0.4, 0.6], &[20, 24, 28, 32])
    }

    /// Simulates a single-threaded run: pull, execute instantly, complete.
    fn simulate_serial(mut state: impl ScheduleSource) -> Vec<Assignment> {
        let mut order = Vec::new();
        while let Some(a) = state.next_assignment() {
            state.complete(a.variant);
            order.push(a);
        }
        assert!(state.is_finished());
        order
    }

    #[test]
    fn greedy_serial_starts_with_smallest_eps_largest_minpts() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedGreedy,
            true,
        ));
        assert_eq!(order.len(), 12);
        // First from scratch: (0.2, 32).
        assert_eq!(order[0].reuse_from, None);
        assert_eq!(set[order[0].variant], Variant::new(0.2, 32));
        // Everything else reuses something.
        for a in &order[1..] {
            assert!(a.reuse_from.is_some(), "{a:?} should reuse");
        }
    }

    #[test]
    fn greedy_reuse_sources_satisfy_inclusion_criteria() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedGreedy,
            true,
        ));
        for a in &order {
            if let Some(u) = a.reuse_from {
                assert!(
                    set[a.variant].can_reuse(&set[u]),
                    "{} cannot reuse {}",
                    set[a.variant],
                    set[u]
                );
            }
        }
    }

    #[test]
    fn minpts_scheduler_seeds_one_scratch_variant_per_eps() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedMinpts,
            true,
        ));
        // Figure 3 (c): the first three assignments are (0.2,32), (0.4,32),
        // (0.6,32), all from scratch.
        let head: Vec<Variant> = order[..3].iter().map(|a| set[a.variant]).collect();
        assert_eq!(
            head,
            vec![
                Variant::new(0.2, 32),
                Variant::new(0.4, 32),
                Variant::new(0.6, 32)
            ]
        );
        for a in &order[..3] {
            assert_eq!(a.reuse_from, None);
        }
        for a in &order[3..] {
            assert!(a.reuse_from.is_some());
        }
    }

    #[test]
    fn minpts_priority_queue_drains_before_any_reuse() {
        // §IV-D: SchedMinpts must exhaust its scratch-first queue before
        // the greedy reuse rule may hand out a single reuse assignment —
        // even when completed variants are already available as sources.
        let set = figure3_set(); // 3 distinct ε ⇒ priority length 3
        let mut state = ScheduleState::new(set, Scheduler::SchedMinpts, true);
        assert_eq!(state.priority_len(), 3);
        for pull in 0..3 {
            let a = state.next_assignment().unwrap();
            assert_eq!(
                a.reuse_from, None,
                "priority pull {pull} must be from scratch"
            );
            // Complete immediately: reuse sources now exist, yet the
            // remaining priority entries must still run from scratch.
            state.complete(a.variant);
        }
        assert_eq!(state.priority_len(), 0);
        // Queue drained: the very next pull reuses.
        let next = state.next_assignment().unwrap();
        assert!(next.reuse_from.is_some());
    }

    #[test]
    fn every_variant_assigned_exactly_once() {
        for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
            let set = figure3_set();
            let order = simulate_serial(ScheduleState::new(set.clone(), sched, true));
            let mut seen = vec![false; set.len()];
            for a in &order {
                assert!(!seen[a.variant], "variant {} assigned twice", a.variant);
                seen[a.variant] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn reuse_disabled_forces_scratch_in_canonical_order() {
        let set = figure3_set();
        let order = simulate_serial(ScheduleState::new(
            set.clone(),
            Scheduler::SchedGreedy,
            false,
        ));
        for (i, a) in order.iter().enumerate() {
            assert_eq!(a.variant, i);
            assert_eq!(a.reuse_from, None);
        }
    }

    #[test]
    fn concurrent_pulls_before_any_completion_are_scratch() {
        // T = 4: the first 4 pulls happen before anything completes, so
        // all must be from scratch (the paper's f = (|V|−T)/|V| bound).
        let set = figure3_set();
        let mut state = ScheduleState::new(set, Scheduler::SchedGreedy, true);
        let first: Vec<Assignment> = (0..4).map(|_| state.next_assignment().unwrap()).collect();
        for a in &first {
            assert_eq!(a.reuse_from, None);
        }
        // Complete them; the 5th pull must now reuse.
        for a in &first {
            state.complete(a.variant);
        }
        let fifth = state.next_assignment().unwrap();
        assert!(fifth.reuse_from.is_some());
    }

    #[test]
    fn greedy_prefers_componentwise_nearest_source() {
        // Complete (0.2, 32) and (0.6, 24); the best candidate pair should
        // use a source at minimal normalized distance, reproducing the
        // Figure 3 intuition that (0.6, 20) prefers (0.6, 24) over
        // (0.2, 32).
        let set = figure3_set();
        let mut state = ScheduleState::new(set.clone(), Scheduler::SchedGreedy, true);
        // Drain assignments until both desired variants have been pulled,
        // completing them immediately; then inspect who reuses what.
        let mut sources_used: Vec<(Variant, Option<Variant>)> = Vec::new();
        while let Some(a) = state.next_assignment() {
            state.complete(a.variant);
            sources_used.push((set[a.variant], a.reuse_from.map(|u| set[u])));
        }
        let (_, src) = sources_used
            .iter()
            .find(|(v, _)| *v == Variant::new(0.6, 20))
            .unwrap();
        let src = src.unwrap();
        // Its source must be strictly closer (normalized) than (0.2, 32).
        let (er, mr) = (set.eps_range(), set.minpts_range());
        let v = Variant::new(0.6, 20);
        assert!(v.param_distance(&src, er, mr) <= v.param_distance(&Variant::new(0.2, 32), er, mr));
    }

    #[test]
    fn empty_set_finishes_immediately() {
        let mut state = ScheduleState::new(VariantSet::new(vec![]), Scheduler::SchedGreedy, true);
        assert!(state.next_assignment().is_none());
        assert!(state.is_finished());
    }

    /// Drives incremental and reference schedules through the same
    /// interleaving (a `workers`-slot FIFO pipeline) and asserts the
    /// assignment sequences match element for element.
    fn assert_sequences_identical(set: &VariantSet, sched: Scheduler, workers: usize) {
        let mut inc = ScheduleState::new(set.clone(), sched, true);
        let mut reference = ReferenceScheduleState::new(set.clone(), sched, true);
        let mut in_flight: std::collections::VecDeque<usize> = Default::default();
        let mut step = 0usize;
        loop {
            while in_flight.len() < workers {
                let a = inc.next_assignment();
                let b = reference.next_assignment();
                assert_eq!(a, b, "divergence at step {step} (T = {workers})");
                step += 1;
                match a {
                    Some(a) => in_flight.push_back(a.variant),
                    None => break,
                }
            }
            match in_flight.pop_front() {
                Some(v) => {
                    inc.complete(v);
                    reference.complete(v);
                }
                None => break,
            }
        }
        assert!(inc.is_finished());
        assert!(reference.is_finished());
    }

    #[test]
    fn warm_sources_enable_reuse_from_the_first_pull() {
        // A warm source dominating the whole grid: every assignment —
        // including the very first — can reuse it, so nothing runs from
        // scratch.
        let set = figure3_set();
        let warm = [Variant::new(0.1, 40)]; // ε smaller, minpts larger than all
        let mut state =
            ScheduleState::with_warm_sources(set.clone(), Scheduler::SchedGreedy, true, &warm);
        let mut pulls = 0;
        while let Some(a) = state.next_assignment() {
            assert!(a.reuse_from.is_some(), "pull {pulls} should reuse: {a:?}");
            state.complete(a.variant);
            pulls += 1;
        }
        assert_eq!(pulls, set.len());
        assert!(state.is_finished());
    }

    #[test]
    fn warm_source_ids_live_past_the_variant_range() {
        let set = figure3_set();
        let warm = [Variant::new(0.1, 40)];
        let mut state =
            ScheduleState::with_warm_sources(set.clone(), Scheduler::SchedGreedy, true, &warm);
        let first = state.next_assignment().unwrap();
        // The only completed source is the warm one, addressed past the
        // variant range.
        assert_eq!(first.reuse_from, Some(set.len()));
    }

    #[test]
    fn in_run_source_wins_distance_ties_over_warm() {
        // Warm copy of (0.2, 32) and an in-run completion of the same
        // variant: identical distance for every candidate; the in-run id
        // (smaller) must win the tie so cold-run determinism is preserved.
        let set = figure3_set();
        let warm = [Variant::new(0.2, 32)];
        let mut state =
            ScheduleState::with_warm_sources(set.clone(), Scheduler::SchedMinpts, true, &warm);
        // Drain the 3-entry priority queue (scratch-first), completing
        // each so (0.2, 32) — index 0 — becomes an in-run source.
        for _ in 0..3 {
            let a = state.next_assignment().unwrap();
            state.complete(a.variant);
        }
        let next = state.next_assignment().unwrap();
        let src = next.reuse_from.unwrap();
        assert!(src < set.len(), "tie must resolve to the in-run source");
    }

    #[test]
    fn empty_warm_list_is_bit_identical_to_new() {
        let set = figure3_set();
        for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
            let a = simulate_serial(ScheduleState::new(set.clone(), sched, true));
            let b = simulate_serial(ScheduleState::with_warm_sources(
                set.clone(),
                sched,
                true,
                &[],
            ));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn warm_sources_ignored_when_reuse_disabled() {
        let set = figure3_set();
        let warm = [Variant::new(0.1, 40)];
        let order = simulate_serial(ScheduleState::with_warm_sources(
            set,
            Scheduler::SchedGreedy,
            false,
            &warm,
        ));
        for a in &order {
            assert_eq!(a.reuse_from, None);
        }
    }

    #[test]
    fn abort_stops_assignment_flow_immediately() {
        let set = figure3_set();
        let mut state = ScheduleState::new(set, Scheduler::SchedGreedy, true);
        let a = state.next_assignment().unwrap();
        state.abort();
        assert!(state.is_aborted());
        assert!(state.next_assignment().is_none());
        // Completing in-flight work is still legal after an abort.
        state.complete(a.variant);
        assert!(state.next_assignment().is_none());
    }

    #[test]
    fn incremental_matches_reference_on_paper_grids() {
        let v3_eps: Vec<f64> = (2..=20).map(|i| i as f64 * 0.02).collect();
        let v1_minpts: Vec<usize> = (10..=100).step_by(5).collect();
        let grids = [
            figure3_set(),
            VariantSet::cartesian(&v3_eps, &[4, 8, 16]), // V3, |V|=57
            VariantSet::cartesian(&[0.2, 0.3, 0.4], &v1_minpts), // V1, |V|=57
            VariantSet::replicated(Variant::new(0.5, 4), 16),
        ];
        for set in &grids {
            for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
                for workers in [1usize, 2, 7, 16, 64] {
                    assert_sequences_identical(set, sched, workers);
                }
            }
        }
    }
}
