//! Deterministic scheduling simulator.
//!
//! The engine's makespan on real hardware depends on timing noise and on
//! how many physical cores exist. This simulator executes the *same*
//! online schedule ([`ScheduleState`]) against an analytic cost model, so
//! scheduling questions — e.g. Figure 9's "why is SchedMinpts 33% over
//! the lower bound while SchedGreedy is 13.5%?" — can be answered
//! exactly, reproducibly, and for hypothetical machines (any `T`).
//!
//! Cost model: clustering variant `v` from scratch costs
//! `base · (1 + κ·v.ε)` (neighborhoods grow with ε); reusing a completed
//! source `u` costs the scratch cost scaled by the normalized parameter
//! distance (a stand-in for "fraction of points that must be recomputed"),
//! floored at a fixed fraction for the irreducible frontier work.

use crate::scheduler::{ScheduleSource, ScheduleState, Scheduler};
use crate::variant::{Variant, VariantSet};

/// Analytic per-variant cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimCostModel {
    /// Cost of clustering the ε = 0 variant from scratch (arbitrary time
    /// units).
    pub base: f64,
    /// Linear growth of scratch cost with ε.
    pub eps_slope: f64,
    /// Floor of the reuse cost as a fraction of the scratch cost (the
    /// frontier work that reuse can never remove).
    pub reuse_floor: f64,
    /// How fast reuse cost approaches scratch cost as the parameter
    /// distance grows (1.0 = proportional).
    pub distance_scale: f64,
}

impl Default for SimCostModel {
    fn default() -> Self {
        Self {
            base: 100.0,
            eps_slope: 1.0,
            reuse_floor: 0.05,
            distance_scale: 1.0,
        }
    }
}

impl SimCostModel {
    /// Cost of clustering `v` from scratch.
    pub fn scratch_cost(&self, v: Variant) -> f64 {
        self.base * (1.0 + self.eps_slope * v.eps)
    }

    /// Cost of clustering `v` by reusing `u` (assumed eligible).
    pub fn reuse_cost(&self, v: Variant, u: Variant, eps_range: f64, minpts_range: f64) -> f64 {
        let d = v.param_distance(&u, eps_range, minpts_range);
        let fraction = (self.reuse_floor + self.distance_scale * d).min(1.0);
        self.scratch_cost(v) * fraction
    }
}

/// One simulated variant execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimOutcome {
    /// Canonical variant index.
    pub variant: usize,
    /// Simulated worker.
    pub thread: usize,
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
    /// Reuse source (canonical index), if any.
    pub reused_from: Option<usize>,
}

/// The simulation result.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Per-variant outcomes sorted by variant index.
    pub outcomes: Vec<SimOutcome>,
    /// Completion time of the last variant.
    pub makespan: f64,
    /// Simulated threads.
    pub threads: usize,
}

impl SimReport {
    /// Total busy time across threads.
    pub fn total_busy(&self) -> f64 {
        self.outcomes.iter().map(|o| o.finish - o.start).sum()
    }

    /// The no-idle lower bound `total_busy / threads`.
    pub fn lower_bound(&self) -> f64 {
        self.total_busy() / self.threads as f64
    }

    /// Fractional slowdown of the makespan over the lower bound
    /// (Figure 9's headline metric).
    pub fn slowdown_vs_lower_bound(&self) -> f64 {
        let lb = self.lower_bound();
        if lb <= 0.0 {
            0.0
        } else {
            (self.makespan - lb).max(0.0) / lb
        }
    }

    /// Variants executed from scratch.
    pub fn from_scratch_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.reused_from.is_none())
            .count()
    }
}

/// Simulates executing `variants` on `threads` workers under `scheduler`
/// with the given cost model. Uses the *identical* online scheduling
/// logic as the real engine; only the clustering work is replaced by the
/// analytic cost.
pub fn simulate(
    variants: &VariantSet,
    scheduler: Scheduler,
    threads: usize,
    model: &SimCostModel,
) -> SimReport {
    let state = ScheduleState::new(variants.clone(), scheduler, true);
    simulate_with(variants, state, threads, model)
}

/// [`simulate`] generalized over the schedule source, so alternative
/// implementations (e.g. the reference exhaustive-scan scheduler used by
/// the equivalence tests) can drive the identical event loop.
pub fn simulate_with<S: ScheduleSource>(
    variants: &VariantSet,
    mut state: S,
    threads: usize,
    model: &SimCostModel,
) -> SimReport {
    assert!(threads >= 1, "need at least one simulated thread");
    let eps_range = variants.eps_range();
    let minpts_range = variants.minpts_range();

    // Event-driven: a min-heap of (free_time, thread). In-flight variants
    // complete when their thread frees; completion order feeds the online
    // schedule exactly as in the real engine.
    #[derive(PartialEq)]
    struct Free(f64, usize);
    impl Eq for Free {}
    impl Ord for Free {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed for min-heap; ties by thread id for determinism.
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Free {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: std::collections::BinaryHeap<Free> = (0..threads).map(|t| Free(0.0, t)).collect();
    // Variant currently running per thread (None = idle pull next).
    let mut running: Vec<Option<usize>> = vec![None; threads];
    let mut outcomes: Vec<SimOutcome> = Vec::with_capacity(variants.len());
    let mut makespan = 0.0f64;

    while let Some(Free(now, thread)) = heap.pop() {
        // Completing whatever this thread ran.
        if let Some(v) = running[thread].take() {
            state.complete(v);
        }
        // Pull next work.
        match state.next_assignment() {
            Some(a) => {
                let v = variants[a.variant];
                let cost = match a.reuse_from {
                    Some(u) => model.reuse_cost(v, variants[u], eps_range, minpts_range),
                    None => model.scratch_cost(v),
                };
                let finish = now + cost;
                makespan = makespan.max(finish);
                outcomes.push(SimOutcome {
                    variant: a.variant,
                    thread,
                    start: now,
                    finish,
                    reused_from: a.reuse_from,
                });
                running[thread] = Some(a.variant);
                heap.push(Free(finish, thread));
            }
            None => {
                // Nothing pending; thread retires. (Other threads may
                // still be running — their completions need no pulls.)
                if running.iter().all(Option::is_none) && state.is_finished() {
                    break;
                }
            }
        }
    }
    debug_assert!(state.is_finished());

    outcomes.sort_by_key(|o| o.variant);
    SimReport {
        outcomes,
        makespan,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v3_like() -> VariantSet {
        // 19 distinct ε, 3 minpts values — the paper's V3 shape.
        let eps: Vec<f64> = (2..=20).map(|i| i as f64 * 0.02).collect();
        VariantSet::cartesian(&eps, &[4, 8, 16])
    }

    fn v1_like() -> VariantSet {
        // 3 distinct ε, 19 minpts values — the paper's V1 shape.
        let minpts: Vec<usize> = (10..=100).step_by(5).collect();
        VariantSet::cartesian(&[0.2, 0.3, 0.4], &minpts)
    }

    #[test]
    fn all_variants_simulated_exactly_once() {
        for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
            for t in [1usize, 4, 16] {
                let r = simulate(&v3_like(), sched, t, &SimCostModel::default());
                assert_eq!(r.outcomes.len(), 57);
                for (i, o) in r.outcomes.iter().enumerate() {
                    assert_eq!(o.variant, i);
                    assert!(o.finish > o.start);
                }
                assert!(r.makespan >= r.lower_bound() - 1e-9);
            }
        }
    }

    #[test]
    fn minpts_scheduler_does_more_scratch_work_on_v3() {
        // V3 has 19 distinct ε ⇒ SchedMinpts seeds 19 scratch runs;
        // SchedGreedy at T = 16 seeds at most 16.
        let t = 16;
        let greedy = simulate(
            &v3_like(),
            Scheduler::SchedGreedy,
            t,
            &SimCostModel::default(),
        );
        let minpts = simulate(
            &v3_like(),
            Scheduler::SchedMinpts,
            t,
            &SimCostModel::default(),
        );
        assert_eq!(minpts.from_scratch_count(), 19);
        assert!(greedy.from_scratch_count() <= t);
        // The Figure 9 claim: the extra scratch work costs makespan.
        assert!(
            minpts.makespan >= greedy.makespan,
            "greedy {} vs minpts {}",
            greedy.makespan,
            minpts.makespan
        );
    }

    #[test]
    fn schedulers_converge_on_v1_at_low_thread_counts() {
        // V1 has only 3 distinct ε; with T ≥ 3 both schedulers cluster a
        // comparable number of variants from scratch and land close.
        let t = 4;
        let model = SimCostModel::default();
        let greedy = simulate(&v1_like(), Scheduler::SchedGreedy, t, &model);
        let minpts = simulate(&v1_like(), Scheduler::SchedMinpts, t, &model);
        let rel = (minpts.makespan - greedy.makespan).abs() / greedy.makespan;
        assert!(rel < 0.5, "relative gap {rel}");
    }

    #[test]
    fn single_thread_serializes() {
        let r = simulate(
            &v1_like(),
            Scheduler::SchedGreedy,
            1,
            &SimCostModel::default(),
        );
        assert!((r.makespan - r.total_busy()).abs() < 1e-9);
        assert_eq!(r.slowdown_vs_lower_bound(), 0.0);
        // Sequential execution: outcomes must not overlap in time.
        let mut by_start: Vec<&SimOutcome> = r.outcomes.iter().collect();
        by_start.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for w in by_start.windows(2) {
            assert!(w[1].start >= w[0].finish - 1e-9);
        }
    }

    #[test]
    fn reuse_is_cheaper_than_scratch_in_the_model() {
        let model = SimCostModel::default();
        let v = Variant::new(0.4, 8);
        let u = Variant::new(0.4, 12);
        let reuse = model.reuse_cost(v, u, 0.2, 12.0);
        assert!(reuse < model.scratch_cost(v));
        assert!(reuse >= model.scratch_cost(v) * model.reuse_floor - 1e-12);
    }

    #[test]
    fn more_threads_never_hurt_makespan_much() {
        // Monotonicity sanity: T = 8 should beat T = 1 clearly.
        let model = SimCostModel::default();
        let t1 = simulate(&v3_like(), Scheduler::SchedGreedy, 1, &model);
        let t8 = simulate(&v3_like(), Scheduler::SchedGreedy, 8, &model);
        assert!(t8.makespan < t1.makespan * 0.6);
    }

    #[test]
    fn deterministic() {
        let model = SimCostModel::default();
        let a = simulate(&v3_like(), Scheduler::SchedMinpts, 7, &model);
        let b = simulate(&v3_like(), Scheduler::SchedMinpts, 7, &model);
        assert_eq!(a, b);
    }

    #[test]
    fn reference_scheduler_simulates_identically() {
        // The incremental ScheduleState and the exhaustive-scan reference
        // must produce byte-identical simulated schedules — same variant →
        // thread placement, same reuse sources, same timings.
        use crate::scheduler::ReferenceScheduleState;
        let model = SimCostModel::default();
        for set in [v3_like(), v1_like()] {
            for sched in [Scheduler::SchedGreedy, Scheduler::SchedMinpts] {
                for t in [1usize, 4, 16] {
                    let fast = simulate(&set, sched, t, &model);
                    let reference = simulate_with(
                        &set,
                        ReferenceScheduleState::new(set.clone(), sched, true),
                        t,
                        &model,
                    );
                    assert_eq!(fast, reference, "{sched:?} T={t}");
                }
            }
        }
    }

    #[test]
    fn empty_variant_set() {
        let r = simulate(
            &VariantSet::new(vec![]),
            Scheduler::SchedGreedy,
            4,
            &SimCostModel::default(),
        );
        assert!(r.outcomes.is_empty());
        assert_eq!(r.makespan, 0.0);
    }
}
