//! Trace determinism: at `T = 1` the online schedule has no timing
//! dependence, so two runs over the same input must emit *identical event
//! sequences* — same events, same order, same payloads — with only the
//! timestamps free to differ. This pins the tracer to the execution it
//! observes: any nondeterminism in a single-thread trace is a bug in the
//! engine, the scheduler, or the tracer itself.

use variantdbscan::{
    Engine, EngineConfig, ReuseScheme, RunRequest, TraceEvent, TraceLevel, VariantSet,
};
use vbp_geom::Point2;

fn blobs(n: usize, k: usize, seed: u64) -> Vec<Point2> {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let centers: Vec<Point2> = (0..k)
        .map(|_| Point2::new(rnd() * 100.0, rnd() * 100.0))
        .collect();
    (0..n)
        .map(|i| {
            if i % 10 == 0 {
                Point2::new(rnd() * 100.0, rnd() * 100.0)
            } else {
                let c = centers[i % k];
                Point2::new(c.x + (rnd() - 0.5) * 2.0, c.y + (rnd() - 0.5) * 2.0)
            }
        })
        .collect()
}

#[test]
fn t1_event_sequences_are_identical_across_runs() {
    let points = blobs(900, 4, 2024);
    let variants = VariantSet::cartesian(&[0.7, 1.0, 1.3], &[4, 8]);
    let engine = Engine::new(
        EngineConfig::default()
            .with_threads(1)
            .with_r(16)
            .with_reuse(ReuseScheme::ClusDensity),
    );

    for level in [TraceLevel::Spans, TraceLevel::Full] {
        let trace_of = || {
            engine
                .execute(&RunRequest::new(&points, &variants).trace(level))
                .expect("valid input")
                .trace
                .expect("tracing was requested")
        };
        let (a, b) = (trace_of(), trace_of());

        // Same events, same order, same payloads; timestamps excluded.
        assert_eq!(
            a.event_sequence(),
            b.event_sequence(),
            "nondeterministic {level} trace at T = 1"
        );
        assert_eq!(a.dropped, b.dropped);

        // The deterministic sequence is also internally coherent: every
        // variant is pulled, started, and finished exactly once.
        let per_kind = |kind: &str| a.records.iter().filter(|r| r.event.kind() == kind).count();
        for kind in ["pull", "started", "finished"] {
            assert_eq!(per_kind(kind), variants.len(), "{kind} count at {level}");
        }
        if level == TraceLevel::Full {
            // T = 1 under SchedGreedy reuses all but the first variant, so
            // reuse detail must appear — and identically in both runs.
            assert!(
                a.records
                    .iter()
                    .any(|r| matches!(r.event, TraceEvent::FrontierBatch { .. })),
                "full trace must carry frontier batches"
            );
        }
    }
}

#[test]
fn timestamps_are_monotone_within_each_worker() {
    let points = blobs(600, 3, 7);
    let variants = VariantSet::cartesian(&[0.8, 1.2], &[4, 8]);
    let engine = Engine::new(EngineConfig::default().with_threads(3).with_r(16));
    let report = engine
        .execute(&RunRequest::new(&points, &variants).trace(TraceLevel::Full))
        .unwrap();
    let snap = report.trace.unwrap();
    // Merged snapshot is globally sorted…
    assert!(snap.records.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    // …and per-thread order survives the stable merge.
    for thread in 0..3u16 {
        let times: Vec<u64> = snap
            .records
            .iter()
            .filter(|r| r.thread == thread)
            .map(|r| r.at_ns)
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "thread {thread} out of order"
        );
    }
}
