//! Property tests for the paper's central claims:
//!
//! - the inclusion criteria (§IV-B) really do guarantee monotone cluster
//!   growth, so copied memberships are always valid;
//! - VariantDBSCAN's reuse path produces results equivalent to plain
//!   DBSCAN (up to border-point assignment) for *random* variant pairs;
//! - the engine as a whole matches direct DBSCAN for random variant grids
//!   under every scheduler/reuse-scheme combination;
//! - the scheduler executes every variant exactly once and only hands out
//!   reuse sources satisfying the inclusion criteria.

use proptest::prelude::*;
use variantdbscan::{
    cluster_with_reuse, Engine, EngineConfig, ReferenceScheduleState, ReuseScheme, RunRequest,
    ScheduleSource, ScheduleState, Scheduler, Variant, VariantSet,
};
use vbp_dbscan::{dbscan, quality_score};
use vbp_geom::{Point2, PointId};
use vbp_rtree::PackedRTree;

/// Clustered cloud: a few blob centers plus noise, so DBSCAN has real
/// structure to find.
fn arb_cloud() -> impl Strategy<Value = Vec<Point2>> {
    (
        proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 2..6),
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0usize..6), 50..250),
    )
        .prop_map(|(centers, raw)| {
            raw.into_iter()
                .map(|(dx, dy, which)| {
                    if which < centers.len() {
                        let (cx, cy) = centers[which];
                        Point2::new(cx + dx, cy + dy)
                    } else {
                        Point2::new(dx * 10.0, dy * 10.0) // background noise
                    }
                })
                .collect()
        })
}

fn arb_pair() -> impl Strategy<Value = (Variant, Variant)> {
    // Source (ε₀, m₀) and target (ε₀ + Δε, m₀ − Δm): always satisfies the
    // inclusion criteria.
    (0.1f64..1.0, 2usize..8, 0.0f64..1.0, 0usize..5).prop_map(|(e, m, de, dm)| {
        let src = Variant::new(e, m);
        let dst = Variant::new(e + de, m.saturating_sub(dm).max(1));
        (src, dst)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clusters_grow_monotonically_under_inclusion_criteria(
        points in arb_cloud(),
        (src, dst) in arb_pair(),
    ) {
        // Every cluster of the source clustering must be contained in a
        // single cluster of the target clustering.
        let (tree, _) = PackedRTree::build(&points, 16);
        let before = dbscan(&tree, src.params());
        let after = dbscan(&tree, dst.params());
        for (c, members) in before.iter_clusters() {
            let target = after.labels().cluster(members[0]);
            prop_assert!(target.is_some(), "cluster {c} member became noise");
            for &p in members {
                prop_assert_eq!(
                    after.labels().cluster(p),
                    target,
                    "cluster {} split between target clusters", c
                );
            }
        }
    }

    #[test]
    fn reuse_path_equivalent_to_direct_dbscan(
        points in arb_cloud(),
        (src, dst) in arb_pair(),
        scheme_idx in 0usize..3,
    ) {
        let scheme = ReuseScheme::REUSING[scheme_idx];
        let (t_low, _) = PackedRTree::build(&points, 16);
        let t_high = PackedRTree::from_sorted(t_low.shared_points(), 1);
        let base = dbscan(&t_low, src.params());
        let (reused, stats) =
            cluster_with_reuse(&t_low, &t_high, dst, &base, src, scheme);
        let direct = dbscan(&t_low, dst.params());

        prop_assert_eq!(reused.num_clusters(), direct.num_clusters());
        prop_assert_eq!(reused.noise_count(), direct.noise_count());
        prop_assert!(reused.check_consistency().is_ok());
        prop_assert!(stats.fraction_reused() <= 1.0);
        // Border points dominate these tiny clouds, so the threshold sits
        // below the paper's large-dataset ≥ 0.998; structural equality is
        // already enforced by the exact count and noise-status asserts.
        let q = quality_score(&direct, &reused);
        prop_assert!(q.mean_score > 0.95, "quality {}", q.mean_score);

        // Noise status is order-independent, so it must match exactly.
        for p in 0..points.len() as PointId {
            prop_assert_eq!(
                direct.labels().is_noise(p),
                reused.labels().is_noise(p),
                "noise status of {} differs", p
            );
        }
    }

    #[test]
    fn engine_matches_direct_dbscan_for_random_grids(
        points in arb_cloud(),
        eps_base in 0.2f64..0.8,
        threads in 1usize..5,
        sched in prop_oneof![Just(Scheduler::SchedGreedy), Just(Scheduler::SchedMinpts)],
        scheme_idx in 0usize..3,
    ) {
        let variants = VariantSet::cartesian(
            &[eps_base, eps_base * 1.5, eps_base * 2.0],
            &[3, 5],
        );
        let engine = Engine::new(
            EngineConfig::default()
                .with_threads(threads)
                .with_r(16)
                .with_scheduler(sched)
                .with_reuse(ReuseScheme::REUSING[scheme_idx]),
        );
        let report = engine.execute(&RunRequest::new(&points, &variants)).unwrap();
        prop_assert_eq!(report.outcomes.len(), variants.len());

        let (t_low, _) = PackedRTree::build(&points, 16);
        for (i, v) in variants.iter().enumerate() {
            let direct = dbscan(&t_low, v.params());
            prop_assert_eq!(
                direct.num_clusters(),
                report.results[i].num_clusters(),
                "variant {}", v
            );
            prop_assert_eq!(
                direct.noise_count(),
                report.results[i].noise_count(),
                "variant {}", v
            );
            // Border points are a large fraction of these small random
            // clouds, so the score sits below the paper's ≥ 0.998 (which
            // is measured on 10⁴–10⁶-point datasets); 0.95 still catches
            // any structural bug because cluster/noise counts above match
            // exactly.
            let q = quality_score(&direct, &report.results[i]);
            prop_assert!(q.mean_score > 0.95, "variant {}: {}", v, q.mean_score);
        }
    }

    #[test]
    fn scheduler_executes_each_variant_once_with_valid_sources(
        eps in proptest::collection::vec(0.05f64..2.0, 1..5),
        minpts in proptest::collection::vec(1usize..40, 1..5),
        sched in prop_oneof![Just(Scheduler::SchedGreedy), Just(Scheduler::SchedMinpts)],
        workers in 1usize..6,
    ) {
        let variants = VariantSet::cartesian(&eps, &minpts);
        let mut state = ScheduleState::new(variants.clone(), sched, true);
        // Simulate `workers` slots pulling concurrently: fill slots, then
        // complete them in FIFO order.
        let mut in_flight: std::collections::VecDeque<usize> = Default::default();
        let mut executed = vec![0usize; variants.len()];
        loop {
            while in_flight.len() < workers {
                match state.next_assignment() {
                    Some(a) => {
                        executed[a.variant] += 1;
                        if let Some(u) = a.reuse_from {
                            prop_assert!(variants[a.variant].can_reuse(&variants[u]));
                        }
                        in_flight.push_back(a.variant);
                    }
                    None => break,
                }
            }
            match in_flight.pop_front() {
                Some(v) => state.complete(v),
                None => break,
            }
        }
        prop_assert!(state.is_finished());
        prop_assert!(executed.iter().all(|&e| e == 1));
    }

    #[test]
    fn incremental_scheduler_matches_reference_on_random_grids(
        eps in proptest::collection::vec(0.05f64..2.0, 1..8),
        minpts in proptest::collection::vec(1usize..40, 1..8),
        sched in prop_oneof![Just(Scheduler::SchedGreedy), Just(Scheduler::SchedMinpts)],
        workers in 1usize..9,
        reuse in any::<bool>(),
    ) {
        // The tentpole invariant: the incremental best-pair scheduler must
        // emit the *exact* assignment sequence of the original exhaustive
        // (pending × completed) rescan, for any grid, worker count,
        // heuristic, and reuse setting, under identical completion
        // interleavings.
        let variants = VariantSet::cartesian(&eps, &minpts);
        let mut fast = ScheduleState::new(variants.clone(), sched, reuse);
        let mut reference = ReferenceScheduleState::new(variants.clone(), sched, reuse);

        // Drive both through the same FIFO interleaving: fill `workers`
        // slots, complete the oldest, refill, until drained.
        let mut in_flight: std::collections::VecDeque<usize> = Default::default();
        let mut assigned = 0usize;
        loop {
            while in_flight.len() < workers {
                let a = fast.next_assignment();
                let b = reference.next_assignment();
                prop_assert_eq!(&a, &b, "divergence after {} assignments", assigned);
                match a {
                    Some(a) => {
                        assigned += 1;
                        in_flight.push_back(a.variant);
                    }
                    None => break,
                }
            }
            match in_flight.pop_front() {
                Some(v) => {
                    fast.complete(v);
                    ScheduleSource::complete(&mut reference, v);
                }
                None => break,
            }
        }
        prop_assert_eq!(assigned, variants.len());
        prop_assert!(fast.is_finished());
        prop_assert!(ScheduleSource::is_finished(&reference));
    }

    #[test]
    fn at_least_one_variant_runs_from_scratch(
        points in arb_cloud(),
        threads in 1usize..5,
    ) {
        // The paper's bound f = (|V|−T)/|V| assumes all T threads pull
        // before anything completes; on real hardware a fast worker can
        // finish before a peer's first pull, legitimately enabling *more*
        // reuse. The hard invariant is that the very first assignment has
        // nothing to reuse.
        let variants = VariantSet::cartesian(&[0.3, 0.5, 0.7], &[3, 4, 5]);
        let engine = Engine::new(
            EngineConfig::default().with_threads(threads).with_r(16),
        );
        let report = engine.execute(&RunRequest::new(&points, &variants)).unwrap();
        let reused = report.outcomes.iter().filter(|o| o.reused_from().is_some()).count();
        prop_assert!(report.from_scratch_count() >= 1);
        prop_assert!(reused < variants.len());
        prop_assert_eq!(reused + report.from_scratch_count(), variants.len());
    }
}
