//! Warm-state store round-trip equivalence suite.
//!
//! The contract under test: a [`PreparedIndex`] that went through the
//! store (`snapshot` → bytes → `restore`) is *indistinguishable* from
//! the original handle —
//!
//! 1. **Byte-stable**: snapshot → restore → snapshot is byte-identical,
//!    pinning the container format against accidental drift;
//! 2. **Bit-identical labels**: every variant clustered over the
//!    restored handle produces exactly the raw label vector (not merely
//!    an isomorphic one) and exactly the `chosen_r` the original does;
//! 3. **Generation-proof**: both append branches (in-place maintain and
//!    the `APPEND_RESORT_FRACTION` full re-sort) survive the round
//!    trip, as does an explicit [`Engine::resort_prepared`] flush.

use variantdbscan::{
    Engine, EngineConfig, PreparedIndex, RChoice, RunRequest, Variant, VariantSet,
};
use vbp_geom::Point2;

/// Deterministic clustered cloud (no RNG: fixed LCG) with a few dense
/// blobs plus scattered background, sized so auto-tune actually sweeps.
fn cloud(n: usize, seed: u64) -> Vec<Point2> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let centers = [(2.0, 2.5), (7.0, 6.5), (4.5, 8.0)];
    (0..n)
        .map(|i| {
            if i % 5 == 4 {
                Point2::new(next() * 10.0, next() * 10.0)
            } else {
                let (cx, cy) = centers[i % centers.len()];
                Point2::new(cx + next() * 0.8, cy + next() * 0.8)
            }
        })
        .collect()
}

fn variants() -> VariantSet {
    VariantSet::new(vec![
        Variant::new(0.3, 4),
        Variant::new(0.5, 4),
        Variant::new(0.5, 8),
        Variant::new(0.9, 3),
    ])
}

fn engine() -> Engine {
    Engine::new(EngineConfig {
        r: RChoice::Auto,
        ..EngineConfig::default()
    })
}

fn roundtrip(index: &PreparedIndex) -> PreparedIndex {
    let mut bytes = Vec::new();
    index.snapshot(&mut bytes).unwrap();
    let restored = PreparedIndex::restore(&mut bytes.as_slice()).unwrap();
    assert_eq!(
        restored.snapshot_bytes(),
        bytes,
        "snapshot → restore → snapshot must be byte-identical"
    );
    restored
}

/// Asserts the two handles are operationally indistinguishable: same
/// shape, same `chosen_r`, and bit-identical raw labels for every
/// variant, in both tree order and caller order.
fn assert_equivalent(engine: &Engine, original: &PreparedIndex, restored: &PreparedIndex) {
    assert_eq!(restored.len(), original.len());
    assert_eq!(restored.chosen_r(), original.chosen_r());
    assert_eq!(restored.permutation(), original.permutation());
    assert_eq!(
        restored.appended_since_sort(),
        original.appended_since_sort()
    );
    assert_eq!(
        restored.tune().map(|t| t.best_r),
        original.tune().map(|t| t.best_r)
    );

    let vs = variants();
    let a = engine
        .execute(&RunRequest::prepared(original, &vs))
        .unwrap();
    let b = engine
        .execute(&RunRequest::prepared(restored, &vs))
        .unwrap();
    assert_eq!(a.results.len(), b.results.len());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(
            ra.labels().iter_raw().collect::<Vec<_>>(),
            rb.labels().iter_raw().collect::<Vec<_>>(),
            "restored handle must label bit-identically"
        );
    }
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(
            original.labels_in_caller_order(ra),
            restored.labels_in_caller_order(rb)
        );
    }
}

#[test]
fn fresh_prepare_roundtrips() {
    let engine = engine();
    let points = cloud(1200, 0xA11CE);
    let index = engine.prepare(&points, Some(0.5)).unwrap();
    assert!(index.tune().is_some(), "auto-tune should have run");
    let restored = roundtrip(&index);
    assert_equivalent(&engine, &index, &restored);
    // The restored handle never carries the dynamic mirror.
    assert!(restored.dynamic().is_none());
}

#[test]
fn fixed_r_without_tune_roundtrips() {
    let engine = Engine::new(EngineConfig {
        r: RChoice::Fixed(7),
        ..EngineConfig::default()
    });
    let points = cloud(500, 0xBEEF);
    let index = engine.prepare(&points, None).unwrap();
    assert!(index.tune().is_none());
    let restored = roundtrip(&index);
    assert_equivalent(&engine, &index, &restored);
}

#[test]
fn empty_dataset_roundtrips() {
    let engine = engine();
    let index = engine.prepare(&[], None).unwrap();
    let restored = roundtrip(&index);
    assert_eq!(restored.len(), 0);
    assert_equivalent(&engine, &index, &restored);
}

#[test]
fn maintained_append_generation_roundtrips() {
    let engine = engine();
    let points = cloud(1000, 0x5EED);
    let index = engine.prepare(&points, Some(0.5)).unwrap();
    // Small batch: stays under APPEND_RESORT_FRACTION → maintain branch.
    let extra = cloud(60, 0xD00D);
    let (index, report) = engine.append_to_prepared(&index, &extra).unwrap();
    assert!(!report.resorted);
    assert!(index.appended_since_sort() > 0);
    let restored = roundtrip(&index);
    assert_equivalent(&engine, &index, &restored);
}

#[test]
fn resorted_append_generation_roundtrips() {
    let engine = engine();
    let points = cloud(600, 0xF00D);
    let index = engine.prepare(&points, Some(0.5)).unwrap();
    // Large batch: crosses APPEND_RESORT_FRACTION → full re-sort.
    let extra = cloud(400, 0xCAFE);
    let (index, report) = engine.append_to_prepared(&index, &extra).unwrap();
    assert!(report.resorted);
    assert_eq!(index.appended_since_sort(), 0);
    let restored = roundtrip(&index);
    assert_equivalent(&engine, &index, &restored);
}

#[test]
fn appends_resume_on_a_restored_handle() {
    // restore → append must behave exactly like append on the original:
    // the dynamic mirror rematerializes from the restored points.
    let engine = engine();
    let points = cloud(800, 0x1234);
    let extra = cloud(50, 0x5678);
    let original = engine.prepare(&points, Some(0.5)).unwrap();
    let restored = roundtrip(&original);

    let (a, _) = engine.append_to_prepared(&original, &extra).unwrap();
    let (b, _) = engine.append_to_prepared(&restored, &extra).unwrap();
    assert!(b.dynamic().is_some());
    assert_equivalent(&engine, &a, &b);
}

#[test]
fn resort_prepared_flushes_the_tail_and_roundtrips() {
    let engine = engine();
    let points = cloud(900, 0x9999);
    let index = engine.prepare(&points, Some(0.5)).unwrap();
    let (dirty, report) = engine
        .append_to_prepared(&index, &cloud(80, 0x8888))
        .unwrap();
    assert!(!report.resorted);

    let clean = engine.resort_prepared(&dirty);
    assert_eq!(clean.appended_since_sort(), 0);
    assert_eq!(clean.len(), dirty.len());
    assert_eq!(clean.chosen_r(), dirty.chosen_r());
    // Same database, label-identical in caller order (tree orders differ).
    let vs = variants();
    let a = engine.execute(&RunRequest::prepared(&dirty, &vs)).unwrap();
    let b = engine.execute(&RunRequest::prepared(&clean, &vs)).unwrap();
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(
            dirty.labels_in_caller_order(ra),
            clean.labels_in_caller_order(rb)
        );
    }
    // A clean handle resorts to a cheap clone.
    let again = engine.resort_prepared(&clean);
    assert_eq!(again.permutation(), clean.permutation());

    let restored = roundtrip(&clean);
    assert_equivalent(&engine, &clean, &restored);
}

#[test]
fn corrupt_snapshots_are_rejected_with_typed_errors() {
    let engine = engine();
    let index = engine.prepare(&cloud(300, 0x7777), Some(0.5)).unwrap();
    let bytes = index.snapshot_bytes();

    // Every truncation fails; none panics.
    for len in 0..bytes.len() {
        assert!(
            PreparedIndex::restore(&mut &bytes[..len]).is_err(),
            "truncation to {len} bytes was accepted"
        );
    }
    // A sample of single-bit flips all fail (the exhaustive sweep lives
    // in the store crate's property suite).
    for i in (0..bytes.len()).step_by(97) {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x10;
        assert!(
            PreparedIndex::restore(&mut flipped.as_slice()).is_err(),
            "bit flip at byte {i} was accepted"
        );
    }
}
