//! Metamorphic reuse-equivalence suite.
//!
//! The metamorphic relation under test: for **every** valid reuse pair
//! `(source, target)` of a random variant grid — not just one constructed
//! pair — the Algorithm 3/4 reuse path (including its batched frontier
//! queries) must produce results *label-isomorphic* to clustering the
//! target from scratch, under all three seed-selection schemes.
//!
//! Label isomorphism is checked structurally, with no tolerance:
//!
//! 1. the noise sets are identical (noise status is order-independent);
//! 2. the cluster counts are identical;
//! 3. the map `direct cluster → reused cluster` restricted to *core*
//!    points (whose assignment is order-independent, unlike border
//!    points) is a well-defined bijection — core status is established by
//!    brute-force neighbor counting, independent of every index backend.
//!
//! Budget: case count scales 4× under `VBP_CONFORMANCE_FULL=1` (the
//! `CHECK_FULL=1` path of `scripts/check.sh`).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;
use variantdbscan::{
    cluster_with_reuse, Engine, EngineConfig, ReuseScheme, RunRequest, Variant, VariantSet,
    WarmSource,
};
use vbp_dbscan::{dbscan, ClusterId, ClusterResult, Labels};
use vbp_geom::{Point2, PointId};
use vbp_rtree::PackedRTree;

fn cases() -> u32 {
    match std::env::var("VBP_CONFORMANCE_FULL") {
        Ok(v) if v != "0" && !v.is_empty() => 48,
        _ => 12,
    }
}

/// Clustered cloud: a few blob centers plus background noise, so every
/// variant finds real structure.
fn arb_cloud() -> impl Strategy<Value = Vec<Point2>> {
    (
        proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 2..6),
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0usize..6), 40..220),
    )
        .prop_map(|(centers, raw)| {
            raw.into_iter()
                .map(|(dx, dy, which)| {
                    if which < centers.len() {
                        let (cx, cy) = centers[which];
                        Point2::new(cx + dx, cy + dy)
                    } else {
                        Point2::new(dx * 10.0, dy * 10.0)
                    }
                })
                .collect()
        })
}

/// Core points of `(eps, minpts)` by brute force — the oracle no index
/// backend can bias.
fn brute_core_points(points: &[Point2], eps: f64, minpts: usize) -> Vec<PointId> {
    let eps_sq = eps * eps;
    (0..points.len())
        .filter(|&i| {
            points
                .iter()
                .filter(|q| points[i].dist_sq(q) <= eps_sq)
                .count()
                >= minpts
        })
        .map(|i| i as PointId)
        .collect()
}

/// Checks the three-part label-isomorphism relation between a from-scratch
/// clustering and a reuse-path clustering of the same variant.
fn check_isomorphic(
    direct: &ClusterResult,
    reused: &ClusterResult,
    n: usize,
    cores: &[PointId],
    ctx: &str,
) -> Result<(), TestCaseError> {
    for p in 0..n as PointId {
        prop_assert_eq!(
            direct.labels().is_noise(p),
            reused.labels().is_noise(p),
            "{ctx}: noise status of point {} differs",
            p
        );
    }
    prop_assert_eq!(
        direct.num_clusters(),
        reused.num_clusters(),
        "{ctx}: cluster counts differ"
    );

    // Core points belong to exactly one cluster regardless of expansion
    // order, so the induced cluster map must be a bijection.
    let mut forward: HashMap<ClusterId, ClusterId> = HashMap::new();
    let mut images: HashSet<ClusterId> = HashSet::new();
    for &p in cores {
        let a = direct.labels().cluster(p);
        let b = reused.labels().cluster(p);
        prop_assert!(
            a.is_some() && b.is_some(),
            "{ctx}: core point {} left unclustered (direct {:?}, reused {:?})",
            p,
            a,
            b
        );
        let (a, b) = (a.unwrap(), b.unwrap());
        match forward.get(&a) {
            Some(&mapped) => prop_assert_eq!(
                mapped,
                b,
                "{ctx}: direct cluster {} split across reused clusters at core {}",
                a,
                p
            ),
            None => {
                prop_assert!(
                    images.insert(b),
                    "{ctx}: two direct clusters merged into reused cluster {} at core {}",
                    b,
                    p
                );
                forward.insert(a, b);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn every_valid_reuse_pair_is_label_isomorphic_to_from_scratch(
        points in arb_cloud(),
        eps in proptest::collection::vec(0.15f64..1.0, 2..4),
        minpts in proptest::collection::vec(2usize..8, 2..4),
        scheme_idx in 0usize..3,
    ) {
        let scheme = ReuseScheme::REUSING[scheme_idx];
        let variants = VariantSet::cartesian(&eps, &minpts);
        let (t_low, _) = PackedRTree::build(&points, 16);
        let t_high = PackedRTree::from_sorted(t_low.shared_points(), 1);
        // Index order == caller order for from_sorted trees built off
        // t_low's shared points, so labels are comparable point-for-point.
        let pts = t_low.shared_points();

        let direct: Vec<ClusterResult> =
            variants.iter().map(|v| dbscan(&t_low, v.params())).collect();
        let cores: Vec<Vec<PointId>> = variants
            .iter()
            .map(|v| brute_core_points(&pts, v.eps, v.minpts))
            .collect();

        let mut pairs = 0usize;
        for (si, src) in variants.iter().enumerate() {
            for (ti, dst) in variants.iter().enumerate() {
                if si == ti || !dst.can_reuse(&src) {
                    continue;
                }
                pairs += 1;
                let (reused, stats) =
                    cluster_with_reuse(&t_low, &t_high, dst, &direct[si], src, scheme);
                prop_assert!(reused.check_consistency().is_ok());
                prop_assert!(stats.fraction_reused() <= 1.0);
                let ctx = format!("{scheme:?}: reuse {src} -> {dst}");
                check_isomorphic(&direct[ti], &reused, pts.len(), &cores[ti], &ctx)?;
            }
        }
        // A cartesian grid with ≥ 2 distinct ε columns always contains a
        // valid pair; deterministic seeding makes this assert stable.
        prop_assert!(pairs >= 1, "grid {:?}/{:?} produced no valid reuse pair", eps, minpts);
    }

    /// The cross-run (cache-seeded) warm-start path: results of one run,
    /// selected by the service cache's dominance rule, seed a later run
    /// over the same prepared index. Every variant answered through a
    /// warm source must stay label-isomorphic to its own from-scratch
    /// clustering — the cache must be invisible in the labels.
    #[test]
    fn cache_seeded_warm_start_is_label_isomorphic_to_from_scratch(
        points in arb_cloud(),
        eps in proptest::collection::vec(0.15f64..1.0, 2..4),
        minpts in proptest::collection::vec(2usize..8, 2..4),
    ) {
        let engine = Engine::new(EngineConfig::default().with_threads(2).with_r(16));
        let variants = VariantSet::cartesian(&eps, &minpts);
        let prepared = engine.prepare(&points, None).unwrap();

        // "Earlier run" whose results populate the cache.
        let donor = engine.execute(&RunRequest::prepared(&prepared, &variants)).unwrap();

        for (i, v) in variants.iter().enumerate() {
            // The dominance cache's lookup rule: among donor entries v
            // can reuse, seed with the nearest by parameter distance.
            let (er, mr) = (variants.eps_range(), variants.minpts_range());
            let seed = (0..variants.len())
                .filter(|&j| v.can_reuse(&variants.get(j)))
                .min_by(|&a, &b| {
                    v.param_distance(&variants.get(a), er, mr)
                        .total_cmp(&v.param_distance(&variants.get(b), er, mr))
                });
            let Some(j) = seed else { continue };
            let warm = [WarmSource {
                variant: variants.get(j),
                result: Arc::clone(&donor.results[j]),
            }];
            let single = VariantSet::new(vec![Variant::new(v.eps, v.minpts)]);
            let warm_run = engine.execute(&RunRequest::prepared(&prepared, &single).warm(&warm)).unwrap();
            prop_assert_eq!(warm_run.warm_hits(), 1, "seed {} not reused for {}", j, i);
            prop_assert!(warm_run.results[0].check_consistency().is_ok());

            let scratch = engine.execute(&RunRequest::prepared(&prepared, &single)).unwrap();
            let cores = brute_core_points(&points, v.eps, v.minpts);
            // Both label vectors come back in prepared-index caller order.
            let direct = ClusterResult::from_labels(Labels::from_raw(
                prepared.labels_in_caller_order(&scratch.results[0]),
            ));
            let served = ClusterResult::from_labels(Labels::from_raw(
                prepared.labels_in_caller_order(&warm_run.results[0]),
            ));
            let ctx = format!("warm {} -> {}", variants.get(j), v);
            check_isomorphic(&direct, &served, points.len(), &cores, &ctx)?;
        }
    }
}

/// Thread-count determinism: the same dataset and variant grid, run at
/// `T ∈ {1, 2, 8}`, must agree — pointwise-identical noise sets and a
/// core-point cluster bijection — on both the cold path and the warm
/// (identity warm-source) path. Scheduling order may differ wildly
/// across thread counts; the labels may not.
#[test]
fn thread_counts_agree_cold_and_warm() {
    // A deterministic cloud (three blobs + background) so all thread
    // counts see the exact same bytes.
    let mut points = Vec::new();
    for (cx, cy) in [(2.0f64, 2.0), (7.0, 3.0), (4.5, 8.0)] {
        for i in 0..60 {
            let dx = (i as f64 * 0.618_033_988_749_894_9).fract();
            let dy = (i as f64 * 0.754_877_666_246_693).fract();
            points.push(Point2::new(cx + dx, cy + dy));
        }
    }
    for i in 0..40 {
        let dx = (i as f64 * 0.569_840_290_998_053_2).fract();
        let dy = (i as f64 * 0.493_406_585_013_595_4).fract();
        points.push(Point2::new(dx * 10.0, dy * 10.0));
    }

    let variants = VariantSet::cartesian(&[0.3, 0.45, 0.7], &[3, 6]);
    let cores: Vec<Vec<PointId>> = variants
        .iter()
        .map(|v| brute_core_points(&points, v.eps, v.minpts))
        .collect();

    // T=1 is the reference; every other thread count must match it.
    let reference_engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
    let reference_prepared = reference_engine.prepare(&points, None).unwrap();
    let reference = reference_engine
        .execute(&RunRequest::prepared(&reference_prepared, &variants))
        .unwrap();
    let ref_labels: Vec<ClusterResult> = (0..variants.len())
        .map(|i| {
            ClusterResult::from_labels(Labels::from_raw(
                reference_prepared.labels_in_caller_order(&reference.results[i]),
            ))
        })
        .collect();
    let ref_noise: Vec<usize> = ref_labels.iter().map(|r| r.noise_count()).collect();

    for threads in [2usize, 8] {
        let engine = Engine::new(EngineConfig::default().with_threads(threads).with_r(16));
        let prepared = engine.prepare(&points, None).unwrap();

        // Cold: straight run of the whole grid.
        let cold = engine
            .execute(&RunRequest::prepared(&prepared, &variants))
            .unwrap();
        for (i, v) in variants.iter().enumerate() {
            let got = ClusterResult::from_labels(Labels::from_raw(
                prepared.labels_in_caller_order(&cold.results[i]),
            ));
            assert_eq!(
                got.noise_count(),
                ref_noise[i],
                "T={threads} cold {v}: noise set size drifted"
            );
            check_isomorphic(
                &ref_labels[i],
                &got,
                points.len(),
                &cores[i],
                &format!("T={threads} cold {v}"),
            )
            .unwrap();
        }

        // Warm: every variant seeded with its own cold result (identity
        // warm sources — `can_reuse` admits equality), the service
        // cache's distance-0 hit. Must still agree with T=1.
        let warm_sources: Vec<WarmSource> = (0..variants.len())
            .map(|i| WarmSource {
                variant: variants.get(i),
                result: Arc::clone(&cold.results[i]),
            })
            .collect();
        let warm = engine
            .execute(&RunRequest::prepared(&prepared, &variants).warm(&warm_sources))
            .unwrap();
        assert_eq!(
            warm.warm_hits(),
            variants.len(),
            "T={threads}: identity warm sources must all hit"
        );
        for (i, v) in variants.iter().enumerate() {
            let got = ClusterResult::from_labels(Labels::from_raw(
                prepared.labels_in_caller_order(&warm.results[i]),
            ));
            check_isomorphic(
                &ref_labels[i],
                &got,
                points.len(),
                &cores[i],
                &format!("T={threads} warm {v}"),
            )
            .unwrap();
        }
    }
}
