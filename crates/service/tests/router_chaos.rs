//! Router chaos: seeded schedules that kill one backend mid-stream.
//!
//! Each schedule boots two daemons behind a router, drives a seeded mix
//! of healthy proxied traffic, hostile front-door bytes (garbage heads,
//! torn writes), and fan-out reads — then shuts one backend down midway
//! and keeps going. Afterwards four things must hold:
//!
//! 1. **Per-backend degradation** — every request for a dataset owned
//!    by the dead backend answers a typed `503` with the
//!    `unavailable` code and a `Retry-After` hint; nothing hangs and
//!    nothing is silently remapped to the survivor;
//! 2. **Survivor isolation** — every request for the survivor's
//!    datasets keeps succeeding (zero failures, before and after the
//!    kill), and the survivor's own `STATS` stays consistent with
//!    `failed == 0`;
//! 3. **Router ledger** — `received == answered_ok + answered_err +
//!    in_flight` holds on the router's own admission ledger, with
//!    hostile bytes accounted separately as `protocol_errors`;
//! 4. **Honest fan-outs** — merged `/v1/stats` still satisfies the
//!    daemon invariant (summing live backends only), flags the dead
//!    backend `up:false`, and `/healthz` drops below quorum (`503`)
//!    while per-dataset traffic to the survivor still flows — quorum
//!    health and dataset availability are deliberately different
//!    statements.
//!
//! Schedules replay exactly from their seed: a failure prints
//! `VBP_CHAOS_ROUTER_SEED=0x...`; `VBP_CHAOS_FULL=1` widens the sweep.
//!
//! Placement note: both backends register the *same* 16-dataset
//! catalog (ephemeral ports make pre-computing the ring impossible),
//! and the schedule derives who owns what from
//! [`RouterHandle::placement`] after boot — so every schedule's kill
//! partitions the catalog differently.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{assert_stats_consistent, field_u64, Watchdog};
use vbp_data::Pcg32;
use vbp_service::{
    ClientError, DatasetService, ErrorCode, FaultPlan, FaultTransport, HttpClient, JsonValue,
    MemTransport, Router, RouterConfig, RouterHandle, ServerHandle, ServiceConfig, Step,
    TcpTransport, Transport,
};

/// Sixteen small datasets; the ring partitions them fresh every
/// schedule because backend ports are ephemeral.
fn catalog() -> Vec<String> {
    (0..16).map(|i| format!("SW1@{}", 300 + i)).collect()
}

fn chaos_backend(datasets: &[&str]) -> ServerHandle {
    common::start_server(
        datasets,
        2,
        ServiceConfig {
            queue_cap: 8,
            cache_bytes: 8 << 20,
            batch_window: Duration::ZERO,
            job_timeout: Duration::from_secs(30),
            http_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    )
}

/// A seeded, always-valid variant for a ~300-point dataset.
fn seeded_variant(rng: &mut Pcg32) -> (f64, usize) {
    let eps = 0.2 + rng.below(800) as f64 / 1000.0;
    let minpts = 3 + rng.below(6) as usize;
    (eps, minpts)
}

/// One healthy submit through the router; panics on any error.
fn live_submit(http: &mut HttpClient, dataset: &str, rng: &mut Pcg32, ctx: &str) {
    let (eps, minpts) = seeded_variant(rng);
    let reply = http
        .submit(dataset, eps, minpts, false)
        .unwrap_or_else(|e| panic!("{ctx}: live submit to {dataset} failed: {e}"));
    assert!(
        reply.clusters < 400 && reply.noise <= 400,
        "{ctx}: implausible reply for {dataset}"
    );
}

/// A submit for a dead backend's dataset, checked at the raw HTTP
/// layer: typed `503 unavailable` with a `Retry-After` hint.
fn dead_submit(router: &RouterHandle, dataset: &str, rng: &mut Pcg32, ctx: &str) {
    let (eps, minpts) = seeded_variant(rng);
    let mut http = HttpClient::connect(router.http_addr()).unwrap();
    http.set_timeout(Some(Duration::from_secs(60))).unwrap();
    let body = format!(r#"{{"dataset":"{dataset}","eps":{eps},"minpts":{minpts}}}"#);
    let resp = http.post("/v1/submit", &body).unwrap();
    assert_eq!(
        resp.status,
        503,
        "{ctx}: dead backend's dataset answered {}: {}",
        resp.status,
        resp.body_str()
    );
    assert!(
        resp.header("retry-after").is_some(),
        "{ctx}: 503 without a Retry-After hint"
    );
    let doc = resp
        .json()
        .unwrap_or_else(|e| panic!("{ctx}: untyped 503 body: {e}"));
    assert_eq!(
        doc.get("error").and_then(JsonValue::as_str),
        Some("unavailable"),
        "{ctx}: wrong code in {}",
        resp.body_str()
    );

    // The same rejection through the typed client surface.
    let err = http
        .submit(dataset, eps, minpts, false)
        .expect_err("dead backend's dataset must reject");
    assert_eq!(
        err.code(),
        Some(ErrorCode::Unavailable),
        "{ctx}: typed client saw {err}"
    );
}

/// Definitely-malformed front-door bytes (a request line with no
/// spaces): the router must answer a typed `400` and count a protocol
/// error, never hang or crash.
fn garbage_head(router: &RouterHandle, rng: &mut Pcg32, ctx: &str) {
    let n = 4 + rng.below(24) as usize;
    let mut payload: Vec<u8> = (0..n)
        .map(|_| b"abcdefghijklmnop!#$%"[rng.below(20) as usize])
        .collect();
    payload.extend_from_slice(b"\r\n\r\n");
    let mut stream = TcpStream::connect(router.http_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&payload).unwrap();
    let mut out = Vec::new();
    let _ = std::io::Read::read_to_end(&mut stream, &mut out);
    assert!(
        out.starts_with(b"HTTP/1.1 400"),
        "{ctx}: garbage head got {:?}",
        String::from_utf8_lossy(&out[..out.len().min(40)])
    );
}

/// A scripted in-memory front-door connection through
/// [`RouterHandle::serve_transport`]: same malformed head, same typed
/// answer, no sockets involved.
fn scripted_garbage(router: &RouterHandle, ctx: &str) {
    let (transport, out) =
        MemTransport::new(vec![Step::Recv(b"not-an-http-request\r\n\r\n".to_vec())]);
    router.serve_transport(transport).join().unwrap();
    let captured = out.lock().unwrap().clone();
    assert!(
        captured.starts_with(b"HTTP/1.1 400"),
        "{ctx}: scripted garbage got {:?}",
        String::from_utf8_lossy(&captured[..captured.len().min(40)])
    );
}

/// A healthy submit whose client-side writes are torn at seeded byte
/// boundaries: the request arrives whole, so the router must proxy it
/// whole and answer a complete `200`.
fn torn_submit(router: &RouterHandle, sub_seed: u64, dataset: &str, rng: &mut Pcg32, ctx: &str) {
    let (eps, minpts) = seeded_variant(rng);
    let body = format!(r#"{{"dataset":"{dataset}","eps":{eps},"minpts":{minpts}}}"#);
    let request = format!(
        "POST /v1/submit HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let stream = TcpStream::connect(router.http_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut transport =
        FaultTransport::new(TcpTransport::new(stream), FaultPlan::torn_writes(sub_seed));
    transport.write_all(request.as_bytes()).unwrap();
    let mut out = Vec::new();
    std::io::Read::read_to_end(&mut reader, &mut out)
        .unwrap_or_else(|e| panic!("{ctx}: torn submit read failed: {e}"));
    assert!(
        out.starts_with(b"HTTP/1.1 200"),
        "{ctx}: torn submit got {:?}",
        String::from_utf8_lossy(&out[..out.len().min(60)])
    );
}

/// One seeded schedule: boot, mixed traffic, mid-stream kill, more
/// traffic, then the invariant battery.
fn run_router_schedule(seed: u64) {
    let ctx_seed = format!("router-chaos 0x{seed:x}");
    let mut rng = Pcg32::seeded(seed);
    let names = catalog();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut backends = [chaos_backend(&name_refs), chaos_backend(&name_refs)];
    let addrs: Vec<String> = backends
        .iter()
        .map(|b| b.http_addr().unwrap().to_string())
        .collect();
    let mut router = Router::start(
        RouterConfig::builder()
            .backends(addrs.clone())
            .breaker_cooldown(Duration::from_millis(200))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut http = HttpClient::connect(router.http_addr()).unwrap();
    http.set_timeout(Some(Duration::from_secs(60))).unwrap();

    // Partition the catalog by ring owner; every schedule gets a
    // different partition because the ports differ.
    let owned_by = |idx: usize, router: &RouterHandle| -> Vec<&str> {
        names
            .iter()
            .filter(|n| router.placement(n) == addrs[idx])
            .map(String::as_str)
            .collect()
    };
    let victim = rng.below(2) as usize;
    let survivor = 1 - victim;
    let victim_ds = owned_by(victim, &router);
    let survivor_ds = owned_by(survivor, &router);
    assert!(
        !victim_ds.is_empty() && !survivor_ds.is_empty(),
        "{ctx_seed}: 16 datasets over 2 backends left one backend empty \
         — vnode spread is broken"
    );
    fn pick<'a>(set: &[&'a str], rng: &mut Pcg32) -> &'a str {
        set[rng.below(set.len() as u32) as usize]
    }

    let actions = 12 + rng.below(5) as usize;
    let kill_at = 3 + rng.below(4) as usize;
    let mut garbage_count = 0u64;
    let mut killed = false;

    for a in 0..actions {
        let ctx = format!("{ctx_seed} action {a}");
        if a == kill_at {
            // The mid-stream kill: one request for the victim's data is
            // in flight on another connection while the backend drains.
            let in_flight = {
                let addr = router.http_addr();
                let ds = pick(&victim_ds, &mut rng).to_string();
                let (eps, minpts) = seeded_variant(&mut rng);
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
                    c.submit(&ds, eps, minpts, false)
                })
            };
            std::thread::sleep(Duration::from_millis(rng.below(10) as u64));
            backends[victim].shutdown();
            killed = true;
            // The overlapped request must get a definite, typed answer
            // — served before the drain, or rejected with a
            // retryable-later code. Never a hang, never a panic.
            match in_flight.join().unwrap() {
                Ok(_) => {}
                Err(e) => match e {
                    ClientError::Overloaded { .. } => {}
                    ClientError::Rejected { code, .. } => assert!(
                        matches!(code, ErrorCode::Unavailable | ErrorCode::Draining),
                        "{ctx}: overlapped request got {code:?}"
                    ),
                    other => panic!("{ctx}: overlapped request got {other}"),
                },
            }
            continue;
        }
        match rng.below(6) {
            0 | 1 => {
                let ds = pick(&survivor_ds, &mut rng);
                live_submit(&mut http, ds, &mut rng, &ctx);
            }
            2 => {
                let ds = pick(&victim_ds, &mut rng);
                if killed {
                    dead_submit(&router, ds, &mut rng, &ctx);
                } else {
                    live_submit(&mut http, ds, &mut rng, &ctx);
                }
            }
            3 => {
                garbage_head(&router, &mut rng, &ctx);
                garbage_count += 1;
            }
            4 => {
                let ds = pick(&survivor_ds, &mut rng);
                torn_submit(&router, rng.next_u64(), ds, &mut rng, &ctx);
            }
            _ => {
                // Fan-out read under fire: the merged stats document
                // must satisfy the daemon invariant whether both
                // backends answer or only one does.
                let resp = http.get("/v1/stats").unwrap();
                assert_eq!(resp.status, 200, "{ctx}: stats fan-out");
                assert_stats_consistent(resp.body_str(), &ctx);
            }
        }
    }
    assert!(killed, "{ctx_seed}: schedule never reached the kill");

    // Explicit post-kill battery, independent of the seeded mix.
    dead_submit(
        &router,
        victim_ds[0],
        &mut rng,
        &format!("{ctx_seed} post-kill dead"),
    );
    live_submit(
        &mut http,
        survivor_ds[0],
        &mut rng,
        &format!("{ctx_seed} post-kill survivor"),
    );

    // Quorum health says unavailable (1 of 2 is below quorum) even
    // though the survivor's datasets still serve — the two statements
    // are intentionally different.
    let health = http.get("/healthz").unwrap();
    assert_eq!(health.status, 503, "{ctx_seed}: healthz below quorum");
    let doc = health.json().unwrap();
    assert_eq!(
        doc.get("status").and_then(JsonValue::as_str),
        Some("unavailable")
    );
    assert_eq!(
        doc.get("backends_up").and_then(JsonValue::as_f64),
        Some(1.0)
    );

    // Merged stats flag the dead backend honestly and still balance.
    let merged = http.get("/v1/stats").unwrap();
    assert_eq!(merged.status, 200);
    assert_stats_consistent(merged.body_str(), &format!("{ctx_seed} merged"));
    let doc = merged.json().unwrap();
    let flags: Vec<(String, bool)> = doc
        .get("backends")
        .and_then(JsonValue::as_array)
        .expect("backends array")
        .iter()
        .map(|b| {
            (
                b.get("backend")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
                b.get("up").and_then(JsonValue::as_bool).unwrap(),
            )
        })
        .collect();
    assert_eq!(flags.len(), 2, "{ctx_seed}");
    for (addr, up) in &flags {
        let expected = *addr == addrs[survivor];
        assert_eq!(up, &expected, "{ctx_seed}: wrong up flag for {addr}");
    }

    // The scripted in-memory front door behaves like the socket one.
    scripted_garbage(&router, &format!("{ctx_seed} scripted"));
    garbage_count += 1;

    // Survivor isolation: its daemon never failed a job and its ledger
    // balances.
    let survivor_stats = backends[survivor].stats_json();
    assert_stats_consistent(&survivor_stats, &format!("{ctx_seed} survivor"));
    assert_eq!(
        field_u64(&survivor_stats, "failed"),
        0,
        "{ctx_seed}: survivor failed jobs: {survivor_stats}"
    );

    // The router's own admission ledger: everything received was
    // answered, with the hostile bytes accounted separately. The
    // handler thread books end-of-request *after* writing the response
    // bytes, so a just-answered reply can be observed a beat before the
    // ledger settles — wait out that window, bounded.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let ledger = loop {
        let ledger = router.stats_json();
        if field_u64(&ledger, "in_flight") == 0 {
            break ledger;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{ctx_seed}: router never quiesced: {ledger}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        field_u64(&ledger, "received"),
        field_u64(&ledger, "answered_ok") + field_u64(&ledger, "answered_err"),
        "{ctx_seed}: router ledger out of balance: {ledger}"
    );
    assert!(
        field_u64(&ledger, "protocol_errors") >= garbage_count,
        "{ctx_seed}: {garbage_count} garbage exchanges, ledger says {ledger}"
    );

    router.shutdown();
    backends[survivor].shutdown();
}

fn router_schedule_seeds() -> Vec<u64> {
    if let Ok(replay) = std::env::var("VBP_CHAOS_ROUTER_SEED") {
        let hex = replay.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|_| panic!("VBP_CHAOS_ROUTER_SEED={replay} is not hex"));
        return vec![seed];
    }
    let full = matches!(std::env::var("VBP_CHAOS_FULL"), Ok(v) if v != "0" && !v.is_empty());
    let count = if full { 24 } else { 8 };
    (0..count)
        .map(|i: u64| 0x2007_ECA0 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

#[test]
fn seeded_backend_kills_degrade_only_the_dead_shard() {
    let _wd = Watchdog::arm("router-chaos-schedules", Duration::from_secs(570));
    for seed in router_schedule_seeds() {
        if let Err(panic) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_router_schedule(seed)))
        {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!(
                "router chaos schedule failed: {msg}\n\
                 replay with: VBP_CHAOS_ROUTER_SEED=0x{seed:x} \
                 cargo test -p vbp-service --test router_chaos"
            );
        }
    }
}
