//! Streaming-equivalence suite: the tentpole guarantee of the APPEND /
//! WATCH protocol is that *streaming never changes answers*.
//!
//! For seeded interleavings of `APPEND`, `SUBMIT`, and `WATCH` traffic
//! against a live daemon:
//!
//! 1. **Batch equivalence** — every post-append `SUBMIT` returns labels
//!    label-isomorphic to a from-scratch engine run over the accumulated
//!    point set (original + every appended batch so far);
//! 2. **Delta replay** — a `WATCH` stream's `DELTA` lines replay to the
//!    final clustering: `census_0 + Σnew − Σabsorbed == clusters_final`,
//!    link by link, and the final census equals a from-scratch run;
//! 3. **Cache audit** — every cache entry surviving the appends is sized
//!    for the *current* dataset generation and structurally consistent
//!    (repaired entries are real clusterings, not length-padded husks);
//! 4. **Atomicity** — a torn `APPEND` (connection cut mid-line) leaves
//!    the dataset at its pre-append snapshot.
//!
//! Schedules replay exactly from their seed: a failure prints
//! `VBP_STREAM_SEED=0x...`. `VBP_STREAM_FULL=1` widens the sweep.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{assert_isomorphic, assert_stats_consistent, brute_core_points, field_u64, Watchdog};
use variantdbscan::{Engine, RunRequest, Variant, VariantSet};
use vbp_data::Pcg32;
use vbp_dbscan::{suggest_eps, ClusterResult, Labels};
use vbp_geom::Point2;
use vbp_rtree::PackedRTree;
use vbp_service::{Client, ServerHandle, ServiceConfig};

const DATASET: &str = "cF_10k_5N@300";

fn streaming_server() -> ServerHandle {
    common::start_server(
        &[DATASET],
        2,
        ServiceConfig {
            queue_cap: 16,
            cache_bytes: 8 << 20,
            batch_window: Duration::ZERO,
            poll_interval: Duration::from_millis(10),
            job_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    )
}

/// The fixed variant pool every schedule submits from; ε around the
/// dataset's k-dist knee so clusterings are non-trivial.
fn variant_pool(points: &[Point2]) -> Vec<(f64, usize)> {
    let (tree, _) = PackedRTree::build(points, 16);
    let base = suggest_eps(&tree, 4, 1).expect("dataset has a knee");
    let mut pool = Vec::new();
    for scale in [0.9, 1.2] {
        for minpts in [4usize, 8] {
            pool.push((base * scale, minpts));
        }
    }
    pool
}

/// From-scratch oracle: batch-clusters `points` at `(eps, minpts)` with
/// a fresh engine, labels in caller order.
fn scratch_run(points: &[Point2], eps: f64, minpts: usize) -> ClusterResult {
    let engine = Engine::new(common::engine_config(2));
    let variants = VariantSet::new(vec![Variant::new(eps, minpts)]);
    let report = engine
        .execute(&RunRequest::new(points, &variants))
        .expect("scratch run");
    ClusterResult::from_labels(Labels::from_raw(report.result_in_caller_order(0)))
}

/// Generates one append batch. `remote` batches land far outside the
/// data's bounding box (no old point within any pool ε → the cache
/// repair path); near batches land inside it (→ the drop path).
fn gen_batch(rng: &mut Pcg32, base: &[Point2], remote: bool, len: usize) -> Vec<Point2> {
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in base {
        lo_x = lo_x.min(p.x);
        hi_x = hi_x.max(p.x);
        lo_y = lo_y.min(p.y);
        hi_y = hi_y.max(p.y);
    }
    let (w, h) = (hi_x - lo_x, hi_y - lo_y);
    let offset = if remote { 50.0 * (w + h + 1.0) } else { 0.0 };
    (0..len)
        .map(|_| {
            let fx = rng.below(10_000) as f64 / 10_000.0;
            let fy = rng.below(10_000) as f64 / 10_000.0;
            Point2::new(lo_x + offset + fx * w, lo_y + offset + fy * h)
        })
        .collect()
}

/// One seeded APPEND/SUBMIT/WATCH interleaving. Returns the totals of
/// `(repaired, dropped)` cache maintenance the schedule observed, so the
/// caller can assert both repair paths actually ran across the sweep.
fn run_schedule(seed: u64, actions: usize) -> (u64, u64) {
    let ctx_seed = format!("stream schedule 0x{seed:x}");
    let mut rng = Pcg32::seeded(seed);
    let initial = vbp_data::DatasetSpec::by_name(DATASET).unwrap().generate();
    let pool = variant_pool(&initial);
    let mut accumulated = initial.clone();

    let mut handle = streaming_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    // A dedicated watcher connection on one pool variant.
    let (watch_eps, watch_minpts) = pool[rng.below(pool.len() as u32) as usize];
    let mut watcher = Client::connect(handle.local_addr()).unwrap();
    let census = watcher.watch(DATASET, watch_eps, watch_minpts).unwrap();
    {
        let direct = scratch_run(&initial, watch_eps, watch_minpts);
        assert_eq!(
            (census.clusters, census.noise),
            (direct.num_clusters(), direct.noise_count()),
            "{ctx_seed}: WATCH census at subscription"
        );
    }

    let (mut repaired_total, mut dropped_total) = (0u64, 0u64);
    let mut appends = 0usize;
    for a in 0..actions {
        let ctx = format!("{ctx_seed} action {a}");
        match rng.below(5) {
            // Append: mixes near batches (ε-region touched → cache
            // drops) and remote ones (provably untouched → repairs).
            0 | 1 => {
                let remote = rng.below(2) == 0;
                let len = 1 + rng.below(12) as usize;
                let batch = gen_batch(&mut rng, &initial, remote, len);
                let reply = client
                    .append(DATASET, &batch)
                    .unwrap_or_else(|e| panic!("{ctx}: append failed: {e}"));
                accumulated.extend_from_slice(&batch);
                appends += 1;
                assert_eq!(reply.appended, batch.len(), "{ctx}");
                assert_eq!(reply.total, accumulated.len(), "{ctx}: dataset length");
                repaired_total += reply.repaired as u64;
                dropped_total += reply.dropped as u64;
            }
            // Submit: the served labels must match a from-scratch batch
            // run over everything accumulated so far — streaming is
            // answer-invisible. This also audits repaired cache entries
            // the hard way: a corrupt repair feeds the engine a wrong
            // warm source and the isomorphism check catches it.
            _ => {
                let (eps, minpts) = pool[rng.below(pool.len() as u32) as usize];
                let reply = client
                    .submit(DATASET, eps, minpts, true)
                    .unwrap_or_else(|e| panic!("{ctx}: submit failed: {e}"));
                let served = ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap()));
                let direct = scratch_run(&accumulated, eps, minpts);
                let cores = brute_core_points(&accumulated, eps, minpts);
                assert_isomorphic(&direct, &served, &cores, &ctx);
            }
        }
    }

    // Delta replay: one DELTA per append, in order, census chaining from
    // the subscription reply to a from-scratch final clustering.
    let mut chain = census.clusters;
    let mut last = (census.clusters, census.noise);
    let deadline = Instant::now() + Duration::from_secs(30);
    for d in 0..appends {
        let delta = loop {
            match watcher.poll_delta(Duration::from_millis(200)).unwrap() {
                Some(delta) => break delta,
                None => assert!(
                    Instant::now() < deadline,
                    "{ctx_seed}: delta {d}/{appends} never arrived"
                ),
            }
        };
        assert_eq!(delta.dataset, DATASET, "{ctx_seed}");
        assert_eq!(
            chain + delta.new - delta.absorbed,
            delta.clusters,
            "{ctx_seed}: delta {d} census does not chain"
        );
        chain = delta.clusters;
        last = (delta.clusters, delta.noise);
    }
    assert!(
        watcher
            .poll_delta(Duration::from_millis(100))
            .unwrap()
            .is_none(),
        "{ctx_seed}: spurious extra delta"
    );
    let direct = scratch_run(&accumulated, watch_eps, watch_minpts);
    assert_eq!(
        last,
        (direct.num_clusters(), direct.noise_count()),
        "{ctx_seed}: replayed census diverged from the batch clustering"
    );

    // Cache audit: every surviving entry is sized for the current
    // generation and structurally consistent.
    for (ds, variant, result) in handle.cache_entries() {
        assert_eq!(ds, DATASET, "{ctx_seed}");
        assert_eq!(
            result.len(),
            accumulated.len(),
            "{ctx_seed}: stale-generation entry survived at {variant:?}"
        );
        result
            .check_consistency()
            .unwrap_or_else(|e| panic!("{ctx_seed}: corrupt cache entry at {variant:?}: {e}"));
    }
    handle
        .cache_invariants()
        .unwrap_or_else(|e| panic!("{ctx_seed}: cache invariant broken: {e}"));

    // Counter invariants (admission and append) and a bounded drain.
    let stats = client.stats_json().unwrap();
    assert_stats_consistent(&stats, &ctx_seed);
    assert_eq!(field_u64(&stats, "failed"), 0, "{ctx_seed}: failed jobs");
    assert_eq!(
        field_u64(&stats, "appends_applied"),
        appends as u64,
        "{ctx_seed}"
    );
    assert_eq!(
        field_u64(&stats, "watch_deltas"),
        appends as u64,
        "{ctx_seed}: one delta per append for one subscriber"
    );
    client.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "{ctx_seed}: drain did not bound"
    );
    (repaired_total, dropped_total)
}

fn schedule_seeds() -> (Vec<u64>, usize) {
    if let Ok(replay) = std::env::var("VBP_STREAM_SEED") {
        let hex = replay.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|_| panic!("VBP_STREAM_SEED={replay} is not hex"));
        return (vec![seed], 14);
    }
    let full = matches!(std::env::var("VBP_STREAM_FULL"), Ok(v) if v != "0" && !v.is_empty());
    let (count, actions) = if full { (12, 22) } else { (4, 14) };
    (
        (0..count)
            .map(|i: u64| 0x57EA_11E5 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect(),
        actions,
    )
}

#[test]
fn seeded_streaming_interleavings_match_batch_runs() {
    let _wd = Watchdog::arm("streaming-equivalence", Duration::from_secs(570));
    let (seeds, actions) = schedule_seeds();
    let (mut repaired, mut dropped) = (0u64, 0u64);
    for seed in &seeds {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_schedule(*seed, actions)
        })) {
            Ok((r, d)) => {
                repaired += r;
                dropped += d;
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic".into());
                panic!(
                    "streaming schedule failed: {msg}\n\
                     replay with: VBP_STREAM_SEED=0x{seed:x} \
                     cargo test -p vbp-service --test streaming_equivalence"
                );
            }
        }
    }
    // Both maintenance paths must have fired across the sweep, or the
    // suite silently stopped exercising the incremental repair.
    assert!(
        repaired > 0,
        "no schedule ever took the cache repair path (remote batches broken?)"
    );
    assert!(
        dropped > 0,
        "no schedule ever took the cache drop path (near batches broken?)"
    );
}

/// Atomicity: an `APPEND` line cut mid-write (connection dies before the
/// newline) must not partially mutate the dataset — the registry stays
/// at the pre-append snapshot and later appends still apply cleanly.
#[test]
fn torn_append_leaves_the_preappend_snapshot() {
    let _wd = Watchdog::arm("streaming-torn-append", Duration::from_secs(120));
    let mut handle = streaming_server();
    let before = handle.dataset_points(DATASET).unwrap();

    // Cut mid-line at several byte offsets, including inside a number.
    let line = format!("APPEND {DATASET} 1.5 2.5 3.5 4.5\n");
    for cut in [9, line.len() / 2, line.len() - 2] {
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        s.write_all(&line.as_bytes()[..cut]).unwrap();
        drop(s);
    }
    // Let the handlers observe the EOFs.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        handle.dataset_points(DATASET).unwrap().len(),
        before.len(),
        "torn APPEND mutated the dataset"
    );
    let stats = handle.stats_json();
    assert_eq!(field_u64(&stats, "appends"), 0, "{stats}");
    assert_stats_consistent(&stats, "torn append");

    // The daemon is healthy: a whole APPEND still applies.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let reply = client
        .append(DATASET, &[Point2::new(1.5, 2.5), Point2::new(3.5, 4.5)])
        .unwrap();
    assert_eq!(reply.total, before.len() + 2);
    client.shutdown().unwrap();
    handle.wait();
}

/// A non-finite coordinate is rejected with a typed error *before* any
/// mutation — `APPEND` is transactional at the request boundary.
#[test]
fn invalid_append_is_rejected_without_mutation() {
    let _wd = Watchdog::arm("streaming-invalid-append", Duration::from_secs(120));
    let mut handle = streaming_server();
    let n = handle.dataset_points(DATASET).unwrap().len();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // The wire parser refuses non-finite floats outright.
    for bad in [
        format!("APPEND {DATASET} nan 1.0"),
        format!("APPEND {DATASET} 1.0 inf"),
        format!("APPEND {DATASET} 1.0"), // odd coordinate count
        "APPEND no_such_dataset 1.0 2.0".to_string(),
    ] {
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(format!("{bad}\n").as_bytes()).unwrap();
        let mut reply = String::new();
        std::io::BufRead::read_line(&mut std::io::BufReader::new(s), &mut reply).unwrap();
        assert!(reply.starts_with("ERR "), "'{bad}' answered {reply:?}");
    }
    assert_eq!(
        handle.dataset_points(DATASET).unwrap().len(),
        n,
        "rejected APPEND mutated the dataset"
    );
    let stats = handle.stats_json();
    assert_stats_consistent(&stats, "invalid append");
    assert_eq!(field_u64(&stats, "appends_applied"), 0, "{stats}");
    client.shutdown().unwrap();
    handle.wait();
}
