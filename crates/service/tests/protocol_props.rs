//! Protocol robustness properties (seed-replayable via the proptest
//! shim's `VBP_PROPTEST_SEED`).
//!
//! Three layers, hostile to trusting:
//!
//! 1. the pure parser — arbitrary byte soup (truncated UTF-8, embedded
//!    NULs, oversized tokens) must never panic and must always come back
//!    as a typed error with a non-empty reason;
//! 2. encode/parse — every well-formed request round-trips to itself,
//!    including ε values at the mercy of float formatting;
//! 3. the live handler — arbitrary byte streams pushed through
//!    [`ServerHandle::serve_transport`] over a scripted in-memory
//!    transport may only ever produce `OK ...` or `ERR <typed-code> ...`
//!    reply lines, and must leave the daemon's counters consistent.

mod common;

use std::time::Duration;

use common::{assert_stats_consistent, Watchdog};
use proptest::prelude::*;
use proptest::{collection, proptest};
use variantdbscan::Engine;
use vbp_geom::Point2;
use vbp_service::{
    parse_request, ErrorCode, LineEvent, LineIo, MemTransport, Registry, Request, Server, Step,
};

/// Charset for generated dataset tokens: protocol-legal, whitespace-free.
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_@.-";

fn dataset_name(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|&i| NAME_CHARS[i as usize % NAME_CHARS.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Layer 1: the parser is total. Whatever bytes arrive — interpreted
    /// leniently as UTF-8 the way a hostile peer could force — it either
    /// returns a request or a typed error; it never panics, and every
    /// rejection carries a human-readable reason.
    #[test]
    fn parser_is_total_on_byte_soup(bytes in collection::vec(any::<u8>(), 0..96)) {
        let line = String::from_utf8_lossy(&bytes);
        match parse_request(&line) {
            Ok(req) => {
                // Anything accepted must re-encode to something the
                // parser accepts again (idempotence of acceptance).
                prop_assert_eq!(parse_request(&req.encode()), Ok(req));
            }
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }

    /// Layer 1b: NUL bytes and truncated multi-byte sequences never
    /// smuggle a verb past the tokenizer.
    #[test]
    fn nul_and_truncation_probes(prefix in 0usize..9, junk in collection::vec(any::<u8>(), 0..16)) {
        let verb: &[u8] = [
            &b"HELLO"[..], b"DATASETS", b"SUBMIT", b"STATS", b"METRICS", b"SHUTDOWN", b"QUIT",
            b"APPEND", b"WATCH",
        ][prefix];
        let mut bytes = verb.to_vec();
        bytes.push(0);
        bytes.extend_from_slice(&junk);
        let line = String::from_utf8_lossy(&bytes);
        // "VERB\0..." is one whitespace-delimited token, not the verb.
        let parsed = parse_request(&line);
        if let Ok(req) = parsed {
            // Only possible if the junk happened to spell a full valid
            // request after lossy decoding — then it must round-trip.
            prop_assert_eq!(parse_request(&req.encode()), Ok(req));
        }
    }

    /// Layer 2: well-formed SUBMITs round-trip exactly — dataset name,
    /// ε through float formatting, minpts, and the LABELS flag.
    #[test]
    fn submit_roundtrip_is_identity(
        name_idx in collection::vec(any::<u8>(), 1..24),
        eps in 1e-9f64..1e9,
        minpts in 1usize..100_000,
        labels in any::<bool>(),
    ) {
        let req = Request::Submit {
            dataset: dataset_name(&name_idx),
            eps,
            minpts,
            labels,
        };
        prop_assert_eq!(parse_request(&req.encode()), Ok(req));
    }

    /// Layer 2b: well-formed APPENDs round-trip exactly — every
    /// coordinate survives float formatting bit-for-bit, in order.
    #[test]
    fn append_roundtrip_is_identity(
        name_idx in collection::vec(any::<u8>(), 1..24),
        coords in collection::vec((-1e12f64..1e12, -1e12f64..1e12), 1..16),
    ) {
        let req = Request::Append {
            dataset: dataset_name(&name_idx),
            points: coords.iter().map(|&(x, y)| Point2::new(x, y)).collect(),
        };
        prop_assert_eq!(parse_request(&req.encode()), Ok(req));
    }

    /// Layer 2c: well-formed WATCH subscriptions round-trip exactly.
    #[test]
    fn watch_roundtrip_is_identity(
        name_idx in collection::vec(any::<u8>(), 1..24),
        eps in 1e-9f64..1e9,
        minpts in 1usize..100_000,
    ) {
        let req = Request::Watch {
            dataset: dataset_name(&name_idx),
            eps,
            minpts,
        };
        prop_assert_eq!(parse_request(&req.encode()), Ok(req));
    }

    /// Non-finite coordinates never parse into an APPEND (or WATCH ε) —
    /// they die at the tokenizer with a reasoned rejection, so no
    /// NaN/∞ ever reaches the spatial index.
    #[test]
    fn non_finite_floats_never_parse(
        name_idx in collection::vec(any::<u8>(), 1..12),
        good in collection::vec((-1e9f64..1e9, -1e9f64..1e9), 0..4),
        bad_at in 0usize..64,
        bad_idx in 0usize..5,
        watch in any::<bool>(),
    ) {
        let bad_tok = ["nan", "NaN", "inf", "-inf", "infinity"][bad_idx];
        let ds = dataset_name(&name_idx);
        let line = if watch {
            format!("WATCH {ds} {bad_tok} 4")
        } else {
            let mut toks: Vec<String> = good
                .iter()
                .flat_map(|&(x, y)| [x.to_string(), y.to_string()])
                .collect();
            toks.insert(bad_at % (toks.len() + 1), bad_tok.to_string());
            // Keep the coordinate count even so only finiteness can be
            // the reason for rejection.
            toks.push("1.0".to_string());
            format!("APPEND {ds} {}", toks.join(" "))
        };
        match parse_request(&line) {
            Ok(req) => prop_assert!(false, "non-finite line parsed: {:?} -> {:?}", line, req),
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }

    /// A CRLF client of the line protocol is indistinguishable from an
    /// LF client: the same line contents produce the exact same framing
    /// event stream under the same cap, including contents exactly at
    /// the per-line byte cap (the trailing `\r` is framing, not
    /// payload, and must not count against the budget).
    #[test]
    fn crlf_and_lf_clients_frame_identically(
        raw_lines in collection::vec(collection::vec(any::<u8>(), 0..40), 1..8),
        cap in 8usize..32,
    ) {
        // Line *contents* must not contain terminator bytes — the
        // terminators under test are appended below.
        let lines: Vec<Vec<u8>> = raw_lines
            .into_iter()
            .map(|l| l.into_iter().filter(|&b| b != b'\n' && b != b'\r').collect())
            .collect();
        let events_for = |terminator: &[u8]| {
            let mut bytes = Vec::new();
            for line in &lines {
                bytes.extend_from_slice(line);
                bytes.extend_from_slice(terminator);
            }
            let (mem, _out) = MemTransport::new(vec![Step::Recv(bytes)]);
            let mut io = LineIo::new(mem, cap);
            let mut events = Vec::new();
            loop {
                let ev = io.next_event().unwrap();
                let done = ev == LineEvent::Eof;
                events.push(ev);
                if done {
                    break;
                }
            }
            events
        };
        prop_assert_eq!(events_for(b"\n"), events_for(b"\r\n"));
    }

    /// Layer 3: arbitrary byte streams through the real connection
    /// handler. Replies must all be typed; counters must stay
    /// consistent; the handler must terminate once the script ends.
    #[test]
    fn live_handler_answers_only_typed_replies(
        // Inner chunks are non-empty: a zero-length read is EOF by
        // `Read` contract, which would (correctly) end the connection.
        chunks in collection::vec(collection::vec(any::<u8>(), 1..48), 1..6),
        newline_every in 1usize..5,
    ) {
        let _wd = Watchdog::arm("protocol-props-live", Duration::from_secs(120));
        let engine = Engine::new(common::engine_config(1));
        let handle = Server::start(engine, Registry::new(), Default::default()).unwrap();

        let mut steps = Vec::new();
        for (i, mut chunk) in chunks.into_iter().enumerate() {
            // Sprinkle newlines so some lines actually complete.
            if i % newline_every == 0 {
                chunk.push(b'\n');
            }
            steps.push(Step::Recv(chunk));
        }
        // The leading newline terminates any partial junk line, so the
        // STATS and METRICS requests are guaranteed lines of their own.
        steps.push(Step::Recv(b"\nSTATS\nMETRICS\n".to_vec()));
        steps.push(Step::Close);

        let (transport, out) = MemTransport::new(steps);
        handle.serve_transport(transport).join().unwrap();

        let out = out.lock().unwrap();
        let text = String::from_utf8(out.clone()).expect("server replies are UTF-8");
        let mut saw_ok_stats = false;
        let mut saw_metrics = false;
        let mut lines = text.lines();
        while let Some(line) = lines.next() {
            // METRICS is the one verb with continuation lines: `OK <n>`
            // (n a bare integer — no other reply has that shape) followed
            // by exactly n exposition lines outside the OK/ERR framing.
            if let Some(n) = line
                .strip_prefix("OK ")
                .and_then(|rest| rest.parse::<usize>().ok())
            {
                saw_metrics = true;
                for _ in 0..n {
                    let cont = lines.next();
                    prop_assert!(cont.is_some(), "METRICS truncated its exposition");
                    let cont = cont.unwrap();
                    prop_assert!(cont.starts_with("vbp_"), "bad exposition line {:?}", cont);
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("ERR ") {
                let code = rest.split_ascii_whitespace().next().unwrap_or("");
                prop_assert!(
                    ErrorCode::from_str_token(code).is_some(),
                    "untyped ERR line {:?}", line
                );
            } else {
                prop_assert!(line.starts_with("OK"), "unframed reply {:?}", line);
                saw_ok_stats |= line.contains("\"submitted\":");
            }
        }
        // The trailing well-formed STATS and METRICS must have survived
        // whatever the byte soup did to the connection state.
        prop_assert!(saw_ok_stats, "no STATS reply in {:?}", text);
        prop_assert!(saw_metrics, "no METRICS reply in {:?}", text);

        let stats = handle.stats_json();
        assert_stats_consistent(&stats, "protocol-props live handler");
        let mut handle = handle;
        handle.shutdown();
    }
}
