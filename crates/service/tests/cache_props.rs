//! Property tests for the dominance cache.
//!
//! The safety property behind cross-run reuse: whatever sequence of
//! inserts, lookups, and evictions the cache has seen, `lookup(v)` may
//! only ever return an entry that is *valid to reuse* for `v` — same
//! dataset, `v.ε ≥ entry.ε`, `v.minpts ≤ entry.minpts` — because the
//! engine will copy that entry's clusters wholesale (Algorithm 3) and an
//! invalid source silently corrupts labels rather than failing loudly.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::Watchdog;
use proptest::prelude::*;
use variantdbscan::Variant;
use vbp_dbscan::{ClusterResult, Labels};
use vbp_service::{result_bytes, DominanceCache};

fn result_of(n: usize) -> Arc<ClusterResult> {
    // Alternating two clusters — content is irrelevant to cache policy,
    // only the byte size matters.
    Arc::new(ClusterResult::from_labels(Labels::from_raw(
        (0..n as u32).map(|i| i % 2).collect(),
    )))
}

fn arb_variant() -> impl Strategy<Value = Variant> {
    (1u32..40, 1usize..10).prop_map(|(e, m)| Variant::new(f64::from(e) * 0.1, m))
}

#[derive(Clone, Debug)]
enum Op {
    Insert(&'static str, Variant, usize),
    Lookup(&'static str, Variant),
}

fn arb_dataset() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("alpha"), Just("beta")]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_dataset(), arb_variant(), 8usize..64).prop_map(|(d, v, n)| Op::Insert(d, v, n)),
        (arb_dataset(), arb_variant()).prop_map(|(d, v)| Op::Lookup(d, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of inserts and lookups: every hit is dominance-
    /// valid for the probe, the byte budget is never exceeded, and the
    /// hit/miss counters account for every lookup.
    #[test]
    fn lookup_only_returns_valid_reuse_sources(
        ops in proptest::collection::vec(arb_op(), 1..60),
        budget_entries in 1usize..8,
    ) {
        let _wd = Watchdog::arm("cache-props-validity", Duration::from_secs(120));
        // Budget in units of a mid-sized entry so evictions actually
        // happen within 60 ops.
        let budget = budget_entries * result_bytes(&result_of(32));
        let mut cache = DominanceCache::new(budget);
        let mut lookups = 0u64;
        for op in &ops {
            match *op {
                Op::Insert(dataset, v, n) => {
                    cache.insert(dataset, v, result_of(n));
                    prop_assert!(cache.stats().bytes <= budget);
                }
                Op::Lookup(dataset, v) => {
                    lookups += 1;
                    if let Some(hit) = cache.lookup(dataset, v) {
                        prop_assert!(
                            v.can_reuse(&hit.variant),
                            "lookup({dataset}, {v}) returned non-dominated {}",
                            hit.variant
                        );
                    }
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, lookups);
        prop_assert!(stats.bytes <= budget);
        // Every insert either landed or was rejected as oversize.
        prop_assert_eq!(
            stats.insertions + stats.rejected_oversize,
            ops.iter().filter(|o| matches!(o, Op::Insert(..))).count() as u64
        );
    }

    /// The hit is not merely valid but *optimal*: no other valid entry of
    /// the same dataset sits strictly closer in parameter space. Verified
    /// against a naive mirror of the cache contents.
    #[test]
    fn lookup_returns_the_nearest_dominated_entry(
        inserts in proptest::collection::vec(arb_variant(), 1..12),
        probe in arb_variant(),
    ) {
        let _wd = Watchdog::arm("cache-props-nearest", Duration::from_secs(120));
        let mut cache = DominanceCache::new(usize::MAX);
        let mut mirror: Vec<Variant> = Vec::new();
        for v in &inserts {
            cache.insert("d", *v, result_of(16));
            if !mirror.contains(v) {
                mirror.push(*v);
            }
        }
        let hit = cache.lookup("d", probe);
        let valid: Vec<Variant> = mirror
            .iter()
            .copied()
            .filter(|s| probe.can_reuse(s))
            .collect();
        match hit {
            None => prop_assert!(valid.is_empty(), "cache missed despite {valid:?}"),
            Some(hit) => {
                // Recompute the cache's own normalization and check no
                // valid candidate beats the returned one.
                let eps_lo = valid.iter().map(|v| v.eps).fold(probe.eps, f64::min);
                let eps_hi = valid.iter().map(|v| v.eps).fold(probe.eps, f64::max);
                let mp_lo = valid.iter().map(|v| v.minpts).fold(probe.minpts, usize::min);
                let mp_hi = valid.iter().map(|v| v.minpts).fold(probe.minpts, usize::max);
                let er = (eps_hi - eps_lo).max(f64::MIN_POSITIVE);
                let mr = (mp_hi - mp_lo).max(1) as f64;
                let got = probe.param_distance(&hit.variant, er, mr);
                for cand in &valid {
                    prop_assert!(
                        probe.param_distance(cand, er, mr) >= got,
                        "{cand} is closer to {probe} than returned {}",
                        hit.variant
                    );
                }
            }
        }
    }

    /// Zero-width candidate neighborhoods — every candidate sharing the
    /// probe's ε, or every candidate sharing one minpts — must produce a
    /// deterministic nearest pick that does not depend on insertion
    /// order (the regression behind the explicit zero-width range guard
    /// in `DominanceCache::lookup`).
    #[test]
    fn zero_width_ranges_pick_deterministically(
        minpts_raw in proptest::collection::vec(2usize..40, 2..7),
        eps_raw in proptest::collection::vec(1u32..60, 2..7),
        seed in any::<u64>(),
    ) {
        let _wd = Watchdog::arm("cache-props-zero-width", Duration::from_secs(120));
        let mut minpts_set = minpts_raw;
        minpts_set.sort_unstable();
        minpts_set.dedup();
        let mut eps_steps = eps_raw;
        eps_steps.sort_unstable();
        eps_steps.dedup();

        // Case A: shared ε (ε spread is exactly 0 across probe and every
        // candidate). The minpts axis alone decides: the smallest
        // dominated minpts is strictly nearest to a probe below the set.
        let mut order = minpts_set.clone();
        shuffle(&mut order, seed);
        let mut cache = DominanceCache::new(usize::MAX);
        for &m in &order {
            cache.insert("d", Variant::new(1.0, m), result_of(16));
        }
        let probe = Variant::new(1.0, 1);
        let hit = cache.lookup("d", probe).expect("all candidates dominated");
        prop_assert_eq!(hit.variant, Variant::new(1.0, minpts_set[0]));

        // Case B: shared minpts (minpts spread 0). The ε axis decides:
        // the largest dominated ε is nearest to a probe above the set.
        let mut eps_order = eps_steps.clone();
        shuffle(&mut eps_order, seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut cache = DominanceCache::new(usize::MAX);
        for &e in &eps_order {
            cache.insert("d", Variant::new(f64::from(e) * 0.05, 4), result_of(16));
        }
        let top = f64::from(*eps_steps.last().unwrap()) * 0.05;
        let probe = Variant::new(top + 0.01, 4);
        let hit = cache.lookup("d", probe).expect("all candidates dominated");
        prop_assert_eq!(hit.variant, Variant::new(top, 4));
    }

    /// Insertion invalidation: after an append, maintenance runs the
    /// service's exact repair criterion — an entry survives only if no
    /// appended point lands within its ε of any pre-existing point
    /// (repaired to the grown length), else it is dropped. Afterwards no
    /// lookup, at any probe, may ever return an entry whose ε-region the
    /// append touched, nor one still sized for the old dataset — either
    /// would hand the engine a stale warm source. Entries of *other*
    /// datasets must ride through maintenance untouched.
    #[test]
    fn append_maintenance_never_leaks_a_touched_entry(
        variants in proptest::collection::vec(arb_variant(), 1..10),
        other in proptest::collection::vec(arb_variant(), 0..4),
        base_n in 8usize..24,
        appended_raw in proptest::collection::vec(0u32..10_000, 1..6),
        probes in proptest::collection::vec(arb_variant(), 1..8),
    ) {
        let _wd = Watchdog::arm("cache-props-append", Duration::from_secs(120));
        // Base points on the integer line [0, base_n); appended points
        // land in [0, ~2·base_n), so each batch straddles touched and
        // untouched regimes depending on the entry's ε.
        let base: Vec<f64> = (0..base_n).map(|i| i as f64).collect();
        let appended: Vec<f64> = appended_raw
            .iter()
            .map(|&r| f64::from(r) / 10_000.0 * 2.0 * base_n as f64)
            .collect();
        let total = base_n + appended.len();
        let touched = |eps: f64| {
            appended
                .iter()
                .any(|a| base.iter().any(|b| (a - b).abs() <= eps))
        };

        let mut cache = DominanceCache::new(usize::MAX);
        for v in &variants {
            cache.insert("alpha", *v, result_of(base_n));
        }
        for v in &other {
            cache.insert("beta", *v, result_of(base_n));
        }
        let mut distinct: Vec<Variant> = Vec::new();
        for v in &variants {
            if !distinct.contains(v) {
                distinct.push(*v);
            }
        }
        let alpha_before = distinct.len();

        let stats = cache.maintain_after_append("alpha", |variant, result| {
            assert_eq!(result.len(), base_n, "judge saw a non-alpha or mutated entry");
            if touched(variant.eps) {
                None
            } else {
                Some(result_of(total))
            }
        });
        prop_assert_eq!(
            stats.repaired + stats.dropped,
            alpha_before,
            "maintenance must visit every entry of the dataset exactly once"
        );

        for probe in &probes {
            if let Some(hit) = cache.lookup("alpha", *probe) {
                prop_assert!(
                    !touched(hit.variant.eps),
                    "lookup returned {} whose ε-region the append touched",
                    hit.variant
                );
                prop_assert_eq!(
                    hit.result.len(),
                    total,
                    "surviving entry {} not repaired to the grown dataset",
                    hit.variant
                );
            }
            if let Some(hit) = cache.lookup("beta", *probe) {
                prop_assert_eq!(
                    hit.result.len(),
                    base_n,
                    "maintenance of alpha mutated beta's entry {}",
                    hit.variant
                );
            }
        }
    }
}

/// Deterministic Fisher–Yates driven by splitmix64 — enough entropy to
/// vary insertion order without pulling in an RNG dependency.
fn shuffle<T>(v: &mut [T], mut state: u64) {
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        v.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// Exact distance ties must fall to the pinned deterministic tie-break
/// (ascending ε, then descending minpts) in every insertion order.
#[test]
fn exact_tie_breaks_by_eps_then_minpts_in_any_order() {
    // probe (1.0, 10): (0.8, 10) is 0.2/0.2 = 1.0 away on ε alone;
    // (1.0, 12) is 2/2 = 1.0 away on minpts alone. Ascending ε wins.
    let probe = Variant::new(1.0, 10);
    let a = Variant::new(0.8, 10);
    let b = Variant::new(1.0, 12);
    for pair in [[a, b], [b, a]] {
        let mut cache = DominanceCache::new(usize::MAX);
        for v in pair {
            cache.insert("d", v, result_of(16));
        }
        let hit = cache.lookup("d", probe).expect("both are dominated");
        assert_eq!(hit.variant, a, "tie must break toward ascending ε");
    }
}
