//! End-to-end loopback smoke test — the `scripts/check.sh` service stage.
//!
//! Starts a real daemon on an ephemeral port with two registered
//! datasets, drives a 20-variant workload through the TCP line protocol,
//! and checks the three properties the service exists for:
//!
//! 1. **Correctness** — every label vector the daemon returns is
//!    label-isomorphic to a direct `Engine::run` over the same points
//!    (and bit-identical for the fully-cold first request per dataset,
//!    where no reuse is possible);
//! 2. **Cross-run reuse** — resubmitting the same workload hits the
//!    dominance cache (`warm=1` replies, `reuse_hits > 0` in `STATS`);
//! 3. **Graceful drain** — `SHUTDOWN` completes in-flight requests,
//!    rejects new ones with the typed `draining` code, and every server
//!    thread joins within a bounded timeout.

mod common;

use std::time::{Duration, Instant};

use common::{assert_isomorphic, brute_core_points, field_u64, start_server, Watchdog};
use variantdbscan::{Engine, RunReport, RunRequest, VariantSet};
use vbp_dbscan::{suggest_eps, ClusterResult, Labels};
use vbp_geom::Point2;
use vbp_rtree::PackedRTree;
use vbp_service::{Client, ErrorCode, HttpClient, JsonValue, ServerHandle, ServiceConfig};

const DATASETS: [&str; 2] = ["cF_10k_5N@600", "SW1@600"];

fn smoke_server(cache_bytes: usize) -> ServerHandle {
    start_server(
        &DATASETS,
        2,
        ServiceConfig {
            cache_bytes,
            batch_window: Duration::ZERO,
            ..ServiceConfig::default()
        },
    )
}

/// One direct single-variant engine run — the per-request oracle.
fn direct_run(engine: &Engine, points: &[vbp_geom::Point2], eps: f64, minpts: usize) -> RunReport {
    let variants = VariantSet::new(vec![variantdbscan::Variant::new(eps, minpts)]);
    engine
        .execute(&RunRequest::new(points, &variants))
        .expect("direct oracle run")
}

/// Ten variants per dataset, scaled off the dataset's k-dist knee so the
/// grid finds real structure at any size.
fn workload(points: &[Point2]) -> Vec<(f64, usize)> {
    let (tree, _) = PackedRTree::build(points, 16);
    let base = suggest_eps(&tree, 4, 1).expect("dataset has a knee");
    let mut variants = Vec::new();
    for scale in [0.8, 1.0, 1.2, 1.5, 2.0] {
        for minpts in [4usize, 8] {
            variants.push((base * scale, minpts));
        }
    }
    variants
}

#[test]
fn twenty_variant_workload_matches_direct_engine_and_reuses_across_runs() {
    let _wd = Watchdog::arm("loopback-workload", Duration::from_secs(240));
    let mut handle = smoke_server(64 << 20);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let listed = client.datasets().unwrap();
    assert_eq!(listed.len(), 2);
    assert!(listed.iter().all(|(_, size)| *size == 600));

    for name in DATASETS {
        let points = vbp_data::DatasetSpec::by_name(name).unwrap().generate();
        let engine = Engine::new(common::engine_config(2));
        let variants = workload(&points);

        // Round 1 — cold cache. Each label vector must be isomorphic to
        // a direct single-variant engine run over the same points; the
        // very first request has an empty cache and a single-variant
        // batch, so it must match the direct run *exactly*.
        for (i, &(eps, minpts)) in variants.iter().enumerate() {
            let reply = client.submit(name, eps, minpts, true).unwrap();
            let direct = direct_run(&engine, &points, eps, minpts);
            let direct_labels = direct.result_in_caller_order(0);
            let served_labels = reply.labels.clone().unwrap();
            assert_eq!(reply.clusters, direct.results[0].num_clusters());
            assert_eq!(reply.noise, direct.results[0].noise_count());
            if i == 0 {
                assert!(!reply.warm, "first request cannot be warm");
                assert_eq!(
                    served_labels, direct_labels,
                    "{name}: cold run must be exact"
                );
            } else {
                let cores = brute_core_points(&points, eps, minpts);
                assert_isomorphic(
                    &ClusterResult::from_labels(Labels::from_raw(direct_labels)),
                    &ClusterResult::from_labels(Labels::from_raw(served_labels)),
                    &cores,
                    &format!("{name} variant {i} ({eps:.3}, {minpts})"),
                );
            }
        }

        // Round 2 — warm cache: every identical resubmission finds its
        // own distance-0 entry and must be answered via reuse.
        for (i, &(eps, minpts)) in variants.iter().enumerate() {
            let reply = client.submit(name, eps, minpts, true).unwrap();
            assert!(reply.warm, "{name} variant {i}: expected a cache hit");
            let cores = brute_core_points(&points, eps, minpts);
            let direct = direct_run(&engine, &points, eps, minpts);
            assert_isomorphic(
                &ClusterResult::from_labels(Labels::from_raw(direct.result_in_caller_order(0))),
                &ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap())),
                &cores,
                &format!("{name} warm variant {i}"),
            );
        }
    }

    let stats = client.stats_json().unwrap();
    assert!(
        field_u64(&stats, "reuse_hits") > 0,
        "no cache reuse in {stats}"
    );
    assert_eq!(field_u64(&stats, "completed"), 40);
    assert_eq!(field_u64(&stats, "failed"), 0);
    common::assert_stats_consistent(&stats, "post-workload");
    let cache_at = stats.find("\"cache\":").unwrap();
    assert!(field_u64(&stats[cache_at..], "hits") > 0);

    // The version-2 METRICS exposition over the same connection: the
    // client saw the version in HELLO, and the counters agree with
    // STATS (only this client drives the daemon, so it is at rest).
    assert!(
        client.protocol_version() >= 2,
        "server must advertise the METRICS-capable protocol"
    );
    let metrics = client.metrics().unwrap();
    common::assert_metrics_match_stats(&metrics, &stats, "post-workload");
    assert!(
        common::metric_u64(&metrics, "vbp_cache_hits_total") > 0,
        "cache hits missing from exposition"
    );
    assert!(
        common::metric_u64(&metrics, "vbp_engine_runs_total") > 0
            && common::metric_u64(
                &metrics,
                "vbp_phase_latency_ns_bucket{phase=\"scratch\",le=\"+Inf\"}"
            ) > 0,
        "engine histograms missing from exposition:\n{metrics}"
    );

    client.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "drain did not bound"
    );
}

/// One `POST /v1/submit` with labels over the HTTP gateway; asserts the
/// embedded engine report is present and returns `(labels, warm)`.
fn http_submit(http: &mut HttpClient, dataset: &str, eps: f64, minpts: usize) -> (Vec<u32>, bool) {
    let body = format!(r#"{{"dataset":"{dataset}","eps":{eps},"minpts":{minpts},"labels":true}}"#);
    let resp = http.post("/v1/submit", &body).unwrap();
    assert_eq!(resp.status, 200, "submit failed: {}", resp.body_str());
    let doc = resp.json().unwrap();
    let warm = doc
        .get("warm")
        .and_then(JsonValue::as_bool)
        .expect("warm flag");
    let labels: Vec<u32> = doc
        .get("labels")
        .and_then(JsonValue::as_array)
        .expect("labels array")
        .iter()
        .map(|v| v.as_f64().expect("numeric label") as u32)
        .collect();
    assert!(
        doc.get("report").and_then(JsonValue::entries).is_some(),
        "response must embed the engine's RunReport"
    );
    (labels, warm)
}

/// The dual-protocol equivalence gate: the same variant grid submitted
/// over HTTP and over the line protocol — cold on one side, resubmitted
/// on the *other* — must be label-isomorphic to the direct engine in
/// both directions, and the resubmission must hit the dominance cache
/// populated by the opposite protocol (one shared cache, two doors).
#[test]
fn http_and_line_protocol_are_label_isomorphic_and_share_the_cache() {
    let _wd = Watchdog::arm("loopback-dual-protocol", Duration::from_secs(240));
    let mut handle = start_server(
        &DATASETS,
        2,
        ServiceConfig {
            cache_bytes: 64 << 20,
            batch_window: Duration::ZERO,
            http_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    );
    let mut line = Client::connect(handle.local_addr()).unwrap();
    let mut http = HttpClient::connect(handle.http_addr().expect("http listener")).unwrap();
    http.set_timeout(Some(Duration::from_secs(120))).unwrap();

    // The two doors list the same catalog.
    let listed = line.datasets().unwrap();
    let datasets_doc = http.get("/v1/datasets").unwrap();
    assert_eq!(datasets_doc.status, 200);
    let via_http = datasets_doc.json().unwrap();
    let via_http = via_http
        .get("datasets")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert_eq!(via_http.len(), listed.len());
    for (name, size) in &listed {
        assert!(
            via_http.iter().any(|d| {
                d.get("name").and_then(JsonValue::as_str) == Some(name)
                    && d.get("points").and_then(JsonValue::as_f64) == Some(*size as f64)
            }),
            "dataset {name} ({size} pts) missing from HTTP listing"
        );
    }

    let name = DATASETS[0];
    let points = vbp_data::DatasetSpec::by_name(name).unwrap().generate();
    let engine = Engine::new(common::engine_config(2));

    for (i, &(eps, minpts)) in workload(&points).iter().enumerate() {
        let cores = brute_core_points(&points, eps, minpts);
        let direct = direct_run(&engine, &points, eps, minpts);
        let direct_result =
            ClusterResult::from_labels(Labels::from_raw(direct.result_in_caller_order(0)));

        // Cold side alternates per variant; the identical resubmission
        // goes through the opposite door and must find the distance-0
        // cache entry the first door populated.
        let (cold_labels, warm_labels, warm_flag) = if i % 2 == 0 {
            let cold = line.submit(name, eps, minpts, true).unwrap();
            let (warm_labels, warm) = http_submit(&mut http, name, eps, minpts);
            (cold.labels.unwrap(), warm_labels, warm)
        } else {
            let (cold_labels, _) = http_submit(&mut http, name, eps, minpts);
            let warm = line.submit(name, eps, minpts, true).unwrap();
            (cold_labels, warm.labels.clone().unwrap(), warm.warm)
        };
        assert!(
            warm_flag,
            "variant {i} ({eps:.3}, {minpts}): resubmission through the other protocol \
             did not hit the shared cache"
        );
        for (which, labels) in [("cold", cold_labels), ("warm", warm_labels)] {
            assert_isomorphic(
                &direct_result,
                &ClusterResult::from_labels(Labels::from_raw(labels)),
                &cores,
                &format!("{name} variant {i} ({eps:.3}, {minpts}) {which} side"),
            );
        }
    }

    // Both doors drove one shared daemon: the counters add up, reuse is
    // visible, and the HTTP Prometheus scrape agrees with line-protocol
    // STATS at rest (the exposition renders under the stats lock).
    let stats = line.stats_json().unwrap();
    common::assert_stats_consistent(&stats, "dual-protocol");
    assert_eq!(field_u64(&stats, "completed"), 20);
    assert!(field_u64(&stats, "reuse_hits") >= 10, "stats: {stats}");
    let scrape = http.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    common::assert_metrics_match_stats(scrape.body_str(), &stats, "dual-protocol scrape");

    // The HTTP stats document satisfies the same admission invariant.
    let http_stats = http.get("/v1/stats").unwrap();
    assert_eq!(http_stats.status, 200);
    common::assert_stats_consistent(http_stats.body_str(), "dual-protocol http stats");

    line.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "drain did not bound"
    );
}

#[test]
fn unknown_dataset_and_bad_requests_get_typed_errors() {
    let _wd = Watchdog::arm("loopback-typed-errors", Duration::from_secs(120));
    let mut handle = smoke_server(1 << 20);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.submit("nonexistent", 1.0, 4, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownDataset));
    // A live connection survives a rejected request.
    assert_eq!(client.datasets().unwrap().len(), 2);
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_and_rejects_new_work() {
    let _wd = Watchdog::arm("loopback-drain", Duration::from_secs(120));
    let mut handle = smoke_server(1 << 20);
    let addr = handle.local_addr();

    // Several writers race the drain; every request must get a definite
    // answer — success or a typed draining/overloaded rejection.
    let writers: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0usize;
                let mut rejected = 0usize;
                for i in 0..4 {
                    let eps = 0.3 + 0.1 * (w * 4 + i) as f64;
                    match client.submit(DATASETS[0], eps, 4, false) {
                        Ok(_) => ok += 1,
                        Err(e) => match e.code() {
                            Some(ErrorCode::Draining) | Some(ErrorCode::Overloaded) => {
                                rejected += 1
                            }
                            other => panic!("unexpected failure {other:?}: {e}"),
                        },
                    }
                }
                (ok, rejected)
            })
        })
        .collect();

    // Let at least one request land, then pull the plug from a separate
    // control connection.
    std::thread::sleep(Duration::from_millis(30));
    let mut control = Client::connect(addr).unwrap();
    control.shutdown().unwrap();

    let mut total_ok = 0;
    let mut total_rejected = 0;
    for w in writers {
        let (ok, rejected) = w.join().unwrap();
        total_ok += ok;
        total_rejected += rejected;
    }
    assert_eq!(total_ok + total_rejected, 12, "a request vanished");

    // New work after the drain began is refused with the typed code; a
    // failed connect means the accept loop is already gone — equally fine.
    if let Ok(mut late) = Client::connect(addr) {
        let err = late.submit(DATASETS[0], 1.0, 4, false).unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::Draining));
    }

    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "drain did not bound"
    );
    common::assert_stats_consistent(&handle.stats_json(), "post-drain");
}
