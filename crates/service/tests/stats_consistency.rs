//! Counter-consistency under racing load — no fault layer, pure loopback.
//!
//! The service counters promise one invariant at *every* observable
//! instant, not just at rest: every admitted job is exactly one of
//! completed, failed, or in-flight (`submitted = completed + failed +
//! in_flight`). A dedicated poller hammers `STATS` while several
//! submitter threads race work through the daemon, so the invariant is
//! observed mid-admission, mid-batch, and mid-completion — where a
//! two-step counter update would be caught red-handed.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{assert_stats_consistent, field_u64, start_server, Watchdog};
use vbp_service::{Client, ErrorCode, ServiceConfig};

const DATASET: &str = "cF_10k_5N@400";

#[test]
fn stats_invariant_holds_at_every_observation_point() {
    let _wd = Watchdog::arm("stats-consistency", Duration::from_secs(240));
    let mut handle = start_server(
        &[DATASET],
        2,
        ServiceConfig {
            queue_cap: 6, // small on purpose: overload rejections must race too
            batch_window: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    // The poller: reads STATS as fast as the daemon answers and checks
    // the invariant on every single observation.
    let poller = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.set_timeout(Some(Duration::from_secs(30))).unwrap();
            let mut observations = 0usize;
            while !done.load(Ordering::Acquire) {
                let stats = client.stats_json().unwrap();
                assert_stats_consistent(&stats, &format!("observation {observations}"));
                observations += 1;
            }
            observations
        })
    };

    // Racing submitters: a spread of variants, some bound to collide in
    // batches, some bound to bounce off the tiny queue.
    let submitters: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let mut accepted = 0u64;
                let mut rejected = 0u64;
                for i in 0..12 {
                    let eps = 0.5 + 0.25 * ((w * 12 + i) % 7) as f64;
                    let minpts = 3 + (i % 3);
                    match client.submit(DATASET, eps, minpts, false) {
                        Ok(_) => accepted += 1,
                        Err(e) if e.code() == Some(ErrorCode::Overloaded) => rejected += 1,
                        Err(e) => panic!("submitter {w}: unexpected failure {e}"),
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();

    let mut total_accepted = 0;
    for s in submitters {
        let (accepted, rejected) = s.join().unwrap();
        total_accepted += accepted;
        assert_eq!(accepted + rejected, 12, "a submission vanished");
    }
    done.store(true, Ordering::Release);
    let observations = poller.join().unwrap();
    assert!(
        observations >= 10,
        "poller only got {observations} observations in — not a race"
    );

    // At rest: everything accepted has landed in `completed`, nothing is
    // in flight, and rejected work never touched the admission counters.
    let stats = handle.stats_json();
    assert_stats_consistent(&stats, "at rest");
    assert_eq!(field_u64(&stats, "submitted"), total_accepted);
    assert_eq!(field_u64(&stats, "completed"), total_accepted);
    assert_eq!(field_u64(&stats, "failed"), 0);
    assert_eq!(field_u64(&stats, "in_flight"), 0);

    handle.shutdown();
    let t0 = Instant::now();
    // `shutdown` joins every thread; bound it like the chaos drains.
    assert!(t0.elapsed() < Duration::from_secs(30));
}
