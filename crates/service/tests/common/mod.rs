//! Helpers shared by the service integration-test binaries (loopback
//! smoke, chaos, stats consistency, protocol properties).
#![allow(dead_code)] // each test binary uses its own subset

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use variantdbscan::{Engine, EngineConfig};
use vbp_dbscan::ClusterResult;
use vbp_geom::{Point2, PointId};
use vbp_service::{Registry, Server, ServerHandle, ServiceConfig};

/// Aborts the whole process if the guarded scope takes longer than its
/// deadline — a deadlocked service test must fail fast and loudly, not
/// hang tier-1 until an outer timeout reaps it. Disarmed on drop.
pub struct Watchdog {
    disarmed: Arc<AtomicBool>,
}

impl Watchdog {
    /// Arms a watchdog; `name` is printed if it fires.
    pub fn arm(name: &'static str, deadline: Duration) -> Watchdog {
        let disarmed = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&disarmed);
        std::thread::Builder::new()
            .name(format!("watchdog-{name}"))
            .spawn(move || {
                // Sleep in slices so a disarmed watchdog thread exits
                // promptly instead of lingering for the full deadline.
                let slice = Duration::from_millis(200);
                let mut left = deadline;
                while !left.is_zero() {
                    let nap = slice.min(left);
                    std::thread::sleep(nap);
                    left -= nap;
                    if flag.load(Ordering::Acquire) {
                        return;
                    }
                }
                eprintln!("watchdog '{name}' fired after {deadline:?}: aborting process");
                std::process::abort();
            })
            .expect("spawn watchdog");
        Watchdog { disarmed }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.disarmed.store(true, Ordering::Release);
    }
}

/// The engine configuration every service test shares.
pub fn engine_config(threads: usize) -> EngineConfig {
    EngineConfig::default().with_threads(threads).with_r(16)
}

/// Starts a daemon over the named catalog datasets.
pub fn start_server(datasets: &[&str], threads: usize, config: ServiceConfig) -> ServerHandle {
    let engine = Engine::new(engine_config(threads));
    let registry = Registry::new();
    for name in datasets {
        registry.load(&engine, name).unwrap();
    }
    Server::start(engine, registry, config).unwrap()
}

/// Core points of `(eps, minpts)` by brute force — the oracle no index
/// backend or execution path can bias.
pub fn brute_core_points(points: &[Point2], eps: f64, minpts: usize) -> Vec<PointId> {
    let eps_sq = eps * eps;
    (0..points.len())
        .filter(|&i| {
            points
                .iter()
                .filter(|q| points[i].dist_sq(q) <= eps_sq)
                .count()
                >= minpts
        })
        .map(|i| i as PointId)
        .collect()
}

/// The metamorphic suite's structural label-isomorphism check: identical
/// noise sets, identical cluster counts, and a core-point cluster
/// bijection (border points may legally differ between execution paths).
pub fn assert_isomorphic(
    direct: &ClusterResult,
    served: &ClusterResult,
    cores: &[PointId],
    ctx: &str,
) {
    assert_eq!(direct.len(), served.len(), "{ctx}: size mismatch");
    for p in 0..direct.len() as PointId {
        assert_eq!(
            direct.labels().is_noise(p),
            served.labels().is_noise(p),
            "{ctx}: noise status of point {p} differs"
        );
    }
    assert_eq!(
        direct.num_clusters(),
        served.num_clusters(),
        "{ctx}: cluster counts differ"
    );
    let mut forward: HashMap<u32, u32> = HashMap::new();
    let mut images: HashSet<u32> = HashSet::new();
    for &p in cores {
        let a = direct
            .labels()
            .cluster(p)
            .unwrap_or_else(|| panic!("{ctx}: core point {p} unclustered in direct run"));
        let b = served
            .labels()
            .cluster(p)
            .unwrap_or_else(|| panic!("{ctx}: core point {p} unclustered in served run"));
        match forward.get(&a) {
            Some(&mapped) => assert_eq!(mapped, b, "{ctx}: cluster {a} split at core {p}"),
            None => {
                assert!(
                    images.insert(b),
                    "{ctx}: clusters merged into {b} at core {p}"
                );
                forward.insert(a, b);
            }
        }
    }
}

/// Pulls one unsigned counter out of a (flat, trusted) JSON line.
pub fn field_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Asserts the service counter invariant on one `STATS` JSON line:
/// every admitted job is exactly one of completed, failed, in-flight.
pub fn assert_stats_consistent(json: &str, ctx: &str) {
    let submitted = field_u64(json, "submitted");
    let completed = field_u64(json, "completed");
    let failed = field_u64(json, "failed");
    let in_flight = field_u64(json, "in_flight");
    assert_eq!(
        submitted,
        completed + failed + in_flight,
        "{ctx}: stats invariant broken in {json}"
    );
    // The streaming twin: every well-formed APPEND is exactly one of
    // applied or rejected (synchronous verb — no in-flight component).
    let appends = field_u64(json, "appends");
    let applied = field_u64(json, "appends_applied");
    let rejected = field_u64(json, "appends_rejected");
    assert_eq!(
        appends,
        applied + rejected,
        "{ctx}: append invariant broken in {json}"
    );
}

/// Pulls one `name value` line out of a Prometheus-style `METRICS`
/// exposition; the name must match exactly up to the separating space
/// (labels included, e.g. `vbp_rejected_total{reason="draining"}`).
pub fn metric_u64(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("no metric {name} in exposition:\n{text}"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not a u64"))
}

/// Asserts the `METRICS` exposition carries the same job counters as a
/// `STATS` JSON line sampled at the same quiescent point, and that the
/// admission invariant (`submitted = completed + failed + in_flight`)
/// holds *inside* the exposition itself.
pub fn assert_metrics_match_stats(metrics: &str, stats: &str, ctx: &str) {
    for (metric_name, json_key) in [
        ("vbp_jobs_submitted_total", "submitted"),
        ("vbp_jobs_completed_total", "completed"),
        ("vbp_jobs_failed_total", "failed"),
        ("vbp_jobs_in_flight", "in_flight"),
        (
            "vbp_rejected_total{reason=\"overloaded\"}",
            "rejected_overloaded",
        ),
        (
            "vbp_rejected_total{reason=\"draining\"}",
            "rejected_draining",
        ),
        ("vbp_unknown_dataset_total", "unknown_dataset"),
        ("vbp_bad_request_total", "bad_request"),
        ("vbp_protocol_errors_total", "protocol_errors"),
        ("vbp_batches_total", "batches"),
        ("vbp_reuse_hits_total", "reuse_hits"),
        ("vbp_in_run_reused_total", "in_run_reused"),
        ("vbp_from_scratch_total", "from_scratch"),
        ("vbp_append_batches_total", "appends"),
        ("vbp_append_applied_total", "appends_applied"),
        ("vbp_append_rejected_total", "appends_rejected"),
        ("vbp_append_points_total", "append_points"),
        ("vbp_watch_subscriptions_total", "watches"),
        ("vbp_watch_deltas_total", "watch_deltas"),
        ("vbp_store_restored", "store_restored"),
        ("vbp_store_restore_failed", "store_restore_failed"),
    ] {
        assert_eq!(
            metric_u64(metrics, metric_name),
            field_u64(stats, json_key),
            "{ctx}: METRICS '{metric_name}' disagrees with STATS '{json_key}'"
        );
    }
    assert_eq!(
        metric_u64(metrics, "vbp_jobs_submitted_total"),
        metric_u64(metrics, "vbp_jobs_completed_total")
            + metric_u64(metrics, "vbp_jobs_failed_total")
            + metric_u64(metrics, "vbp_jobs_in_flight"),
        "{ctx}: admission invariant broken inside METRICS"
    );
}
