//! Chaos suite: seeded fault schedules against a live daemon.
//!
//! Each schedule boots a fresh server, then drives a deterministic,
//! seed-derived mix of hostile traffic at it — garbage lines, oversized
//! lines, torn writes split at arbitrary byte boundaries, requests cut
//! mid-line, connections dropped before the reply — interleaved with
//! healthy `SUBMIT`s, across a cold round and a warm (cache-populated)
//! round. After every schedule three invariants must hold:
//!
//! 1. **Consistent STATS** — the daemon still answers `STATS`, and
//!    `submitted == completed + failed + in_flight` (plus the cache's
//!    structural self-check);
//! 2. **Isomorphic survivors** — every `SUBMIT` that got an `OK` carries
//!    labels label-isomorphic to a direct engine run of that variant;
//! 3. **Bounded drain** — `SHUTDOWN` completes and every server thread
//!    joins under a hard timeout.
//!
//! Schedules replay exactly from their seed: a failure prints
//! `VBP_CHAOS_SEED=0x...`; re-run with that environment variable (and
//! this test's filter) to replay only the failing schedule, in the
//! style of the proptest shim. `VBP_CHAOS_FULL=1` widens the sweep.
//!
//! The engine-boundary fault (a *panicking* clustering job, injected
//! through `variantdbscan::fault`) gets its own test below: the poisoned
//! job must fail with `ERR internal` while the same connection, dataset,
//! and daemon keep serving — and must fail *fast*, not after the old
//! 600 s reply timeout.
//!
//! The *streaming* schedules mix `APPEND` and `WATCH` into the fault
//! soup: healthy appends, torn-write appends (which must apply whole),
//! connections cut mid-`APPEND`-line (which must not mutate at all),
//! appends to unknown datasets, non-finite coordinates, and watchers
//! that vanish with deltas in flight. Afterwards the dataset length must
//! equal exactly the sum of the *acknowledged* appends — a torn or cut
//! line that partially mutated the registry shows up as a length drift —
//! and `appends == appends_applied + appends_rejected` holds alongside
//! the submit invariant. Replay with `VBP_CHAOS_STREAM_SEED=0x...`.
//!
//! The *HTTP* schedules open the daemon's second front door and pour
//! the same fault soup through it — garbage and oversized HTTP heads,
//! requests cut mid-head and mid-body, torn-write submissions —
//! interleaved with healthy clients on *both* protocols against one
//! shared daemon. Every healthy result (either door) must stay
//! label-isomorphic to the direct engine, `submitted == completed +
//! failed + in_flight` must hold under the mixed load, METRICS must
//! equal STATS at rest, and the dataset must not mutate (the HTTP
//! faults include a rejected append). Replay with
//! `VBP_CHAOS_HTTP_SEED=0x...`.
//!
//! The *store* schedules kill and restart the daemon around its
//! warm-state store: a persist-bearing drain, then a doomed incarnation
//! whose work never reaches disk (the SIGKILL emulation — from the
//! store's point of view, a kill and a no-persist exit are the same
//! event), then a restart with `--store` that must restore the persisted
//! generation exactly — label-isomorphic results against a direct engine
//! run over the restored points, warm cache hits included. A corrupted
//! or truncated store file must instead fall back to a cold rebuild,
//! bump `vbp_store_restore_failed`, and still answer correct labels.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use common::{
    assert_isomorphic, assert_metrics_match_stats, assert_stats_consistent, brute_core_points,
    field_u64, metric_u64, Watchdog,
};
use variantdbscan::{Engine, RunRequest, Variant, VariantSet};
use vbp_data::Pcg32;
use vbp_dbscan::{suggest_eps, ClusterResult, Labels};
use vbp_geom::{Point2, PointId};
use vbp_rtree::PackedRTree;
use vbp_service::{
    parse_json, Client, ErrorCode, FaultPlan, FaultTransport, HttpClient, JsonValue, ServerHandle,
    ServiceConfig, TcpTransport, Transport,
};

const DATASET: &str = "cF_10k_5N@300";
const MAX_LINE: usize = 512;

/// Precomputed ground truth for the fixed variant pool: direct engine
/// labels (caller order) and brute-force core sets, computed once for
/// the whole binary.
struct Oracle {
    points: Vec<Point2>,
    pool: Vec<(f64, usize)>,
    direct: Vec<ClusterResult>,
    cores: Vec<Vec<PointId>>,
}

fn oracle() -> &'static Oracle {
    static ORACLE: OnceLock<Oracle> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let points = vbp_data::DatasetSpec::by_name(DATASET).unwrap().generate();
        let (tree, _) = PackedRTree::build(&points, 16);
        let base = suggest_eps(&tree, 4, 1).expect("dataset has a knee");
        let mut pool = Vec::new();
        for scale in [0.9, 1.1, 1.4] {
            for minpts in [4usize, 8] {
                pool.push((base * scale, minpts));
            }
        }
        let engine = Engine::new(common::engine_config(2));
        let mut direct = Vec::new();
        let mut cores = Vec::new();
        for &(eps, minpts) in &pool {
            let variants = VariantSet::new(vec![Variant::new(eps, minpts)]);
            let report = engine
                .execute(&RunRequest::new(&points, &variants))
                .unwrap();
            direct.push(ClusterResult::from_labels(Labels::from_raw(
                report.result_in_caller_order(0),
            )));
            cores.push(brute_core_points(&points, eps, minpts));
        }
        Oracle {
            points,
            pool,
            direct,
            cores,
        }
    })
}

fn chaos_server() -> ServerHandle {
    common::start_server(
        &[DATASET],
        2,
        ServiceConfig {
            queue_cap: 8,
            cache_bytes: 8 << 20,
            batch_window: Duration::ZERO,
            max_line_bytes: MAX_LINE,
            job_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    )
}

/// Submits pool variant `i` over a healthy client and checks the reply
/// against the oracle.
fn healthy_submit(client: &mut Client, i: usize, ctx: &str) -> bool {
    let o = oracle();
    let (eps, minpts) = o.pool[i];
    let reply = client
        .submit(DATASET, eps, minpts, true)
        .unwrap_or_else(|e| panic!("{ctx}: healthy submit failed: {e}"));
    let served = ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap()));
    assert_eq!(served.len(), o.points.len(), "{ctx}: label count");
    assert_isomorphic(&o.direct[i], &served, &o.cores[i], ctx);
    reply.warm
}

/// Writes raw bytes on a fresh connection and reads one reply line
/// (None on EOF/timeout — acceptable for connection-killing payloads).
fn raw_exchange(handle: &ServerHandle, payload: &[u8]) -> Option<String> {
    let stream = TcpStream::connect(handle.local_addr()).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(payload).ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    let line = line.trim_end().to_string();
    (!line.is_empty()).then_some(line)
}

/// Submits pool variant `i` through a torn-write transport (client side
/// split at seeded byte boundaries) and verifies the reply exactly like
/// a healthy submit.
fn torn_submit(handle: &ServerHandle, sub_seed: u64, i: usize, ctx: &str) {
    let o = oracle();
    let (eps, minpts) = o.pool[i];
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = stream.try_clone().unwrap();
    let mut transport =
        FaultTransport::new(TcpTransport::new(stream), FaultPlan::torn_writes(sub_seed));
    transport
        .write_all(format!("SUBMIT {DATASET} {eps} {minpts} LABELS\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(reader);
    let mut head = String::new();
    reader.read_line(&mut head).unwrap();
    assert!(
        head.starts_with("OK clusters="),
        "{ctx}: torn submit answered {head:?}"
    );
    let mut labels_line = String::new();
    reader.read_line(&mut labels_line).unwrap();
    let labels: Vec<u32> = labels_line
        .split_ascii_whitespace()
        .skip(2) // "LABELS <n>"
        .map(|t| t.parse().unwrap())
        .collect();
    let served = ClusterResult::from_labels(Labels::from_raw(labels));
    assert_isomorphic(&o.direct[i], &served, &o.cores[i], ctx);
}

/// One seeded fault schedule: boot, cold round, warm round, invariants,
/// bounded drain.
fn run_schedule(seed: u64) {
    let ctx_seed = format!("schedule 0x{seed:x}");
    let mut rng = Pcg32::seeded(seed);
    let o = oracle();
    let mut handle = chaos_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    for round in ["cold", "warm"] {
        // The anchor submit: pool[0] every round, so the warm round is
        // guaranteed a distance-0 cache entry to hit.
        let warm = healthy_submit(&mut client, 0, &format!("{ctx_seed} {round} anchor"));
        if round == "warm" {
            assert!(warm, "{ctx_seed}: warm-round anchor missed the cache");
        }

        let actions = 5 + rng.below(4) as usize;
        for a in 0..actions {
            let ctx = format!("{ctx_seed} {round} action {a}");
            match rng.below(7) {
                0 => {
                    let i = rng.below(o.pool.len() as u32) as usize;
                    healthy_submit(&mut client, i, &ctx);
                }
                1 => {
                    // Garbage line: random printable-ish bytes.
                    let n = 1 + rng.below(40) as usize;
                    let mut payload: Vec<u8> = (0..n).map(|_| 33 + (rng.below(94) as u8)).collect();
                    payload.push(b'\n');
                    if let Some(reply) = raw_exchange(&handle, &payload) {
                        assert!(reply.starts_with("ERR "), "{ctx}: garbage got {reply:?}");
                    }
                }
                2 => {
                    // Oversized line: blows the byte cap, must get the
                    // typed protocol error and leave the daemon alive.
                    let n = MAX_LINE + 1 + rng.below(2048) as usize;
                    let mut payload = vec![b'x'; n];
                    payload.push(b'\n');
                    let reply = raw_exchange(&handle, &payload)
                        .unwrap_or_else(|| panic!("{ctx}: oversized line got no reply"));
                    assert!(
                        reply.starts_with("ERR protocol"),
                        "{ctx}: oversized line got {reply:?}"
                    );
                }
                3 => {
                    // Truncated request: partial line, then disconnect.
                    // No reply is owed, so write-and-vanish (reading
                    // would only wait out a timeout nobody will break).
                    let (eps, minpts) = o.pool[rng.below(o.pool.len() as u32) as usize];
                    let full = format!("SUBMIT {DATASET} {eps} {minpts}");
                    let cut = 1 + rng.below(full.len() as u32 - 1) as usize;
                    if let Ok(mut s) = TcpStream::connect(handle.local_addr()) {
                        let _ = s.write_all(&full.as_bytes()[..cut]);
                        drop(s);
                    }
                }
                4 => {
                    // Full request, then vanish before the reply: the
                    // job must still be accounted exactly once.
                    let (eps, minpts) = o.pool[rng.below(o.pool.len() as u32) as usize];
                    if let Ok(mut s) = TcpStream::connect(handle.local_addr()) {
                        let _ =
                            s.write_all(format!("SUBMIT {DATASET} {eps} {minpts}\n").as_bytes());
                        drop(s);
                    }
                }
                5 => {
                    let i = rng.below(o.pool.len() as u32) as usize;
                    torn_submit(&handle, rng.next_u64(), i, &ctx);
                }
                _ => {
                    // Embedded NUL / invalid UTF-8 probes on one socket.
                    let payload: &[u8] = if rng.below(2) == 0 {
                        b"SUB\0MIT d 1.0 4\n"
                    } else {
                        b"\xff\xfe garbage \xf0\x28\n"
                    };
                    if let Some(reply) = raw_exchange(&handle, payload) {
                        assert!(reply.starts_with("ERR "), "{ctx}: NUL/UTF-8 got {reply:?}");
                    }
                }
            }
        }

        // Invariant 1 after every round, mid-flight traffic included.
        let stats = client.stats_json().unwrap();
        assert_stats_consistent(&stats, &format!("{ctx_seed} {round}"));
    }

    // Invariant 1 (full): consistent STATS + cache self-check.
    let stats = client.stats_json().unwrap();
    assert_stats_consistent(&stats, &ctx_seed);
    assert_eq!(
        field_u64(&stats, "failed"),
        0,
        "{ctx_seed}: no job may fail"
    );
    handle
        .cache_invariants()
        .unwrap_or_else(|e| panic!("{ctx_seed}: cache invariant broken: {e}"));

    // Invariant 4: the METRICS exposition agrees with STATS at rest.
    // Fire-and-forget submissions (actions 3/4) are admitted by handler
    // threads asynchronously, so "at rest" means: two STATS samples with
    // the METRICS fetch *between* them show the same submitted count and
    // zero in-flight — counters are monotone, so the exposition in the
    // middle must carry exactly those values.
    let mut settled = false;
    for _ in 0..500 {
        let before = client.stats_json().unwrap();
        let metrics = client.metrics().unwrap();
        let after = client.stats_json().unwrap();
        let keys = [
            "submitted",
            "completed",
            "failed",
            "rejected_overloaded",
            "rejected_draining",
            "unknown_dataset",
            "bad_request",
            "protocol_errors",
            "batches",
            "reuse_hits",
            "in_run_reused",
            "from_scratch",
        ];
        let stable = keys
            .iter()
            .all(|k| field_u64(&before, k) == field_u64(&after, k))
            && field_u64(&before, "in_flight") == 0
            && field_u64(&after, "in_flight") == 0;
        if stable {
            assert_metrics_match_stats(&metrics, &before, &ctx_seed);
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(settled, "{ctx_seed}: traffic never quiesced");

    // Invariant 3: bounded full drain with every thread joined.
    client.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "{ctx_seed}: drain did not bound"
    );
}

/// One seeded point; `remote` points land far outside the data's
/// bounding box (cache repair path), near ones inside it (drop path).
fn seeded_point(rng: &mut Pcg32, base: &[Point2], remote: bool) -> Point2 {
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in base {
        lo_x = lo_x.min(p.x);
        hi_x = hi_x.max(p.x);
        lo_y = lo_y.min(p.y);
        hi_y = hi_y.max(p.y);
    }
    let (w, h) = (hi_x - lo_x, hi_y - lo_y);
    let offset = if remote { 50.0 * (w + h + 1.0) } else { 0.0 };
    let fx = rng.below(10_000) as f64 / 10_000.0;
    let fy = rng.below(10_000) as f64 / 10_000.0;
    Point2::new(lo_x + offset + fx * w, lo_y + offset + fy * h)
}

/// Appends one seeded point through a torn-write transport (client-side
/// writes split at seeded byte boundaries). The line arrives whole, so
/// the append must apply whole — torn *writes* are invisible to the
/// request boundary.
fn torn_append(handle: &ServerHandle, sub_seed: u64, p: Point2, total_before: usize, ctx: &str) {
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = stream.try_clone().unwrap();
    let mut transport =
        FaultTransport::new(TcpTransport::new(stream), FaultPlan::torn_writes(sub_seed));
    transport
        .write_all(format!("APPEND {DATASET} {} {}\n", p.x, p.y).as_bytes())
        .unwrap();
    let mut head = String::new();
    BufReader::new(reader).read_line(&mut head).unwrap();
    assert!(
        head.starts_with("OK appended=1 "),
        "{ctx}: torn append answered {head:?}"
    );
    assert!(
        head.contains(&format!("total={}", total_before + 1)),
        "{ctx}: torn append total drifted: {head:?}"
    );
}

/// One seeded *streaming* fault schedule: APPEND/WATCH traffic woven
/// into the hostile mix, with the dataset-length ledger and both counter
/// invariants checked at the end.
fn run_streaming_schedule(seed: u64) {
    let ctx_seed = format!("stream-chaos 0x{seed:x}");
    let mut rng = Pcg32::seeded(seed);
    let o = oracle();
    let mut handle = chaos_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    // The ledger: every acknowledged append bumps it; nothing else may.
    let mut expected_total = o.points.len();
    let (mut applied_local, mut rejected_local) = (0u64, 0u64);
    let mut watchers: Vec<Client> = Vec::new();

    let actions = 10 + rng.below(6) as usize;
    for a in 0..actions {
        let ctx = format!("{ctx_seed} action {a}");
        match rng.below(9) {
            // Healthy submit riding along (no labels — the dataset
            // mutates under this schedule, so the oracle is stale; the
            // equivalence suite owns label checking).
            0 => {
                let (eps, minpts) = o.pool[rng.below(o.pool.len() as u32) as usize];
                client
                    .submit(DATASET, eps, minpts, false)
                    .unwrap_or_else(|e| panic!("{ctx}: submit failed: {e}"));
            }
            // Healthy append of a seeded batch.
            1 | 2 => {
                let k = 1 + rng.below(6) as usize;
                let remote = rng.below(2) == 0;
                let batch: Vec<Point2> = (0..k)
                    .map(|_| seeded_point(&mut rng, &o.points, remote))
                    .collect();
                let reply = client
                    .append(DATASET, &batch)
                    .unwrap_or_else(|e| panic!("{ctx}: append failed: {e}"));
                expected_total += k;
                applied_local += 1;
                assert_eq!(reply.appended, k, "{ctx}");
                assert_eq!(reply.total, expected_total, "{ctx}: append total");
            }
            // Torn-write append: must apply whole.
            3 => {
                let remote = rng.below(2) == 0;
                let p = seeded_point(&mut rng, &o.points, remote);
                torn_append(&handle, rng.next_u64(), p, expected_total, &ctx);
                expected_total += 1;
                applied_local += 1;
            }
            // Connection cut mid-APPEND-line: must not mutate at all
            // (the final ledger check catches any partial apply).
            4 => {
                let full = format!("APPEND {DATASET} 1.25 2.5 3.75 4.125");
                let cut = 1 + rng.below(full.len() as u32 - 1) as usize;
                if let Ok(mut s) = TcpStream::connect(handle.local_addr()) {
                    let _ = s.write_all(&full.as_bytes()[..cut]);
                    drop(s);
                }
            }
            // Append to an unknown dataset: typed rejection, counted.
            5 => {
                let err = client
                    .append("no_such_dataset", &[Point2::new(1.0, 2.0)])
                    .expect_err("append to unknown dataset must fail");
                assert_eq!(err.code(), Some(ErrorCode::UnknownDataset), "{ctx}: {err}");
                rejected_local += 1;
            }
            // Non-finite coordinates die at the parser (a protocol
            // error, not an append) and must not mutate.
            6 => {
                let bad = ["nan", "inf", "-inf"][rng.below(3) as usize];
                let reply =
                    raw_exchange(&handle, format!("APPEND {DATASET} {bad} 1.0\n").as_bytes())
                        .unwrap_or_else(|| panic!("{ctx}: non-finite append got no reply"));
                assert!(
                    reply.starts_with("ERR "),
                    "{ctx}: non-finite append got {reply:?}"
                );
            }
            // Subscribe a watcher — or vanish one with deltas pending.
            7 => {
                if !watchers.is_empty() && rng.below(3) == 0 {
                    drop(watchers.swap_remove(rng.below(watchers.len() as u32) as usize));
                } else {
                    let mut w = Client::connect(handle.local_addr()).unwrap();
                    let (eps, minpts) = o.pool[rng.below(o.pool.len() as u32) as usize];
                    w.watch(DATASET, eps, minpts)
                        .unwrap_or_else(|e| panic!("{ctx}: watch failed: {e}"));
                    watchers.push(w);
                }
            }
            // Classic fault soup: garbage or oversized line.
            _ => {
                if rng.below(2) == 0 {
                    let n = 1 + rng.below(40) as usize;
                    let mut payload: Vec<u8> = (0..n).map(|_| 33 + (rng.below(94) as u8)).collect();
                    payload.push(b'\n');
                    if let Some(reply) = raw_exchange(&handle, &payload) {
                        assert!(reply.starts_with("ERR "), "{ctx}: garbage got {reply:?}");
                    }
                } else {
                    let mut payload = vec![b'x'; MAX_LINE + 1 + rng.below(2048) as usize];
                    payload.push(b'\n');
                    let reply = raw_exchange(&handle, &payload)
                        .unwrap_or_else(|| panic!("{ctx}: oversized line got no reply"));
                    assert!(
                        reply.starts_with("ERR protocol"),
                        "{ctx}: oversized line got {reply:?}"
                    );
                }
            }
        }
    }

    // The ledger: exactly the acknowledged appends mutated the dataset —
    // a cut or torn line that half-applied shows up right here.
    assert_eq!(
        handle.dataset_points(DATASET).unwrap().len(),
        expected_total,
        "{ctx_seed}: dataset length drifted from the append ledger"
    );

    // Both counter invariants, plus exact append accounting.
    let stats = client.stats_json().unwrap();
    assert_stats_consistent(&stats, &ctx_seed);
    assert_eq!(field_u64(&stats, "failed"), 0, "{ctx_seed}: failed jobs");
    assert_eq!(
        field_u64(&stats, "appends_applied"),
        applied_local,
        "{ctx_seed}: applied count in {stats}"
    );
    assert_eq!(
        field_u64(&stats, "appends_rejected"),
        rejected_local,
        "{ctx_seed}: rejected count in {stats}"
    );
    handle
        .cache_invariants()
        .unwrap_or_else(|e| panic!("{ctx_seed}: cache invariant broken: {e}"));

    // METRICS agrees with STATS once the (cut-line) stragglers settle.
    let mut settled = false;
    for _ in 0..500 {
        let before = client.stats_json().unwrap();
        let metrics = client.metrics().unwrap();
        let after = client.stats_json().unwrap();
        let stable = ["submitted", "protocol_errors", "bad_request", "appends"]
            .iter()
            .all(|k| field_u64(&before, k) == field_u64(&after, k))
            && field_u64(&after, "in_flight") == 0;
        if stable {
            assert_metrics_match_stats(&metrics, &before, &ctx_seed);
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(settled, "{ctx_seed}: traffic never quiesced");

    drop(watchers);
    client.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "{ctx_seed}: drain did not bound"
    );
}

/// A chaos daemon with the HTTP door open on an ephemeral port.
fn http_chaos_server() -> ServerHandle {
    common::start_server(
        &[DATASET],
        2,
        ServiceConfig {
            queue_cap: 8,
            cache_bytes: 8 << 20,
            batch_window: Duration::ZERO,
            max_line_bytes: MAX_LINE,
            job_timeout: Duration::from_secs(30),
            http_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    )
}

/// Submits pool variant `i` over a healthy keep-alive HTTP client and
/// checks the labels against the oracle; returns the warm flag.
fn http_healthy_submit(http: &mut HttpClient, i: usize, ctx: &str) -> bool {
    let o = oracle();
    let (eps, minpts) = o.pool[i];
    let body = format!(r#"{{"dataset":"{DATASET}","eps":{eps},"minpts":{minpts},"labels":true}}"#);
    let resp = http
        .post("/v1/submit", &body)
        .unwrap_or_else(|e| panic!("{ctx}: HTTP submit failed: {e}"));
    assert_eq!(resp.status, 200, "{ctx}: {}", resp.body_str());
    let doc = resp.json().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let labels: Vec<u32> = doc
        .get("labels")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("{ctx}: no labels in {}", resp.body_str()))
        .iter()
        .map(|v| v.as_f64().expect("numeric label") as u32)
        .collect();
    let served = ClusterResult::from_labels(Labels::from_raw(labels));
    assert_eq!(served.len(), o.points.len(), "{ctx}: label count");
    assert_isomorphic(&o.direct[i], &served, &o.cores[i], ctx);
    doc.get("warm")
        .and_then(JsonValue::as_bool)
        .unwrap_or_else(|| panic!("{ctx}: no warm flag"))
}

/// Writes raw bytes to the HTTP port on a fresh connection and reads
/// whatever comes back until close or timeout (None when nothing does —
/// acceptable for connection-killing payloads).
fn http_raw_exchange(handle: &ServerHandle, payload: &[u8]) -> Option<Vec<u8>> {
    let mut stream = TcpStream::connect(handle.http_addr().expect("http door")).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).ok()?;
    let mut out = Vec::new();
    let _ = std::io::Read::read_to_end(&mut stream, &mut out);
    (!out.is_empty()).then_some(out)
}

/// The status line of a raw HTTP response capture.
fn http_status_line(raw: &[u8]) -> String {
    let end = raw.iter().position(|&b| b == b'\n').unwrap_or(raw.len());
    String::from_utf8_lossy(&raw[..end]).trim_end().to_string()
}

/// Submits pool variant `i` over HTTP through a torn-write transport
/// (client-side writes split at seeded byte boundaries). The request
/// arrives whole, so the gateway must answer a complete, oracle-correct
/// `200` — torn writes are invisible to the request boundary.
fn torn_http_submit(handle: &ServerHandle, sub_seed: u64, i: usize, ctx: &str) {
    let o = oracle();
    let (eps, minpts) = o.pool[i];
    let body = format!(r#"{{"dataset":"{DATASET}","eps":{eps},"minpts":{minpts},"labels":true}}"#);
    let request = format!(
        "POST /v1/submit HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let stream = TcpStream::connect(handle.http_addr().expect("http door")).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut transport =
        FaultTransport::new(TcpTransport::new(stream), FaultPlan::torn_writes(sub_seed));
    transport.write_all(request.as_bytes()).unwrap();
    let mut out = Vec::new();
    std::io::Read::read_to_end(&mut reader, &mut out)
        .unwrap_or_else(|e| panic!("{ctx}: torn HTTP submit read failed: {e}"));
    let head_end = out
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("{ctx}: unframed response {:?}", http_status_line(&out)))
        + 4;
    assert!(
        out.starts_with(b"HTTP/1.1 200"),
        "{ctx}: torn HTTP submit answered {:?}",
        http_status_line(&out)
    );
    let doc = parse_json(&out[head_end..]).unwrap_or_else(|e| panic!("{ctx}: bad body: {e}"));
    let labels: Vec<u32> = doc
        .get("labels")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("{ctx}: no labels"))
        .iter()
        .map(|v| v.as_f64().expect("numeric label") as u32)
        .collect();
    let served = ClusterResult::from_labels(Labels::from_raw(labels));
    assert_isomorphic(&o.direct[i], &served, &o.cores[i], ctx);
}

/// One seeded *mixed-protocol* fault schedule: hostile and healthy HTTP
/// traffic interleaved with healthy line-protocol clients on one shared
/// daemon, then the full invariant battery.
fn run_http_schedule(seed: u64) {
    let ctx_seed = format!("http-chaos 0x{seed:x}");
    let mut rng = Pcg32::seeded(seed);
    let o = oracle();
    let mut handle = http_chaos_server();
    let mut line = Client::connect(handle.local_addr()).unwrap();
    line.set_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut http = HttpClient::connect(handle.http_addr().expect("http door")).unwrap();
    http.set_timeout(Some(Duration::from_secs(60))).unwrap();

    // Anchors: pool[0] lands cold through the line door, pool[1] cold
    // through the HTTP door, so the post-loop warm checks below prove
    // the cache is shared in both directions under fault load.
    healthy_submit(&mut line, 0, &format!("{ctx_seed} line anchor"));
    http_healthy_submit(&mut http, 1, &format!("{ctx_seed} http anchor"));

    let actions = 8 + rng.below(5) as usize;
    for a in 0..actions {
        let ctx = format!("{ctx_seed} action {a}");
        match rng.below(8) {
            // Healthy line-protocol submit, oracle-checked.
            0 => {
                let i = rng.below(o.pool.len() as u32) as usize;
                healthy_submit(&mut line, i, &ctx);
            }
            // Healthy keep-alive HTTP submit, oracle-checked.
            1 => {
                let i = rng.below(o.pool.len() as u32) as usize;
                http_healthy_submit(&mut http, i, &ctx);
            }
            // Garbage HTTP head: printable soup framed with CRLFCRLF —
            // must come back as a typed 4xx, never a hang or a 200.
            2 => {
                let n = 1 + rng.below(40) as usize;
                let mut payload: Vec<u8> = (0..n).map(|_| 33 + (rng.below(94) as u8)).collect();
                payload.extend_from_slice(b"\r\n\r\n");
                let raw = http_raw_exchange(&handle, &payload)
                    .unwrap_or_else(|| panic!("{ctx}: garbage HTTP head got no reply"));
                assert!(
                    raw.starts_with(b"HTTP/1.1 4"),
                    "{ctx}: garbage HTTP head got {:?}",
                    http_status_line(&raw)
                );
            }
            // Oversized request line, never terminated: the cap must
            // answer 400 on its own, without waiting for framing.
            3 => {
                let n = vbp_service::http::MAX_REQUEST_LINE_BYTES + 3 + rng.below(2048) as usize;
                let payload = vec![b'z'; n];
                let raw = http_raw_exchange(&handle, &payload)
                    .unwrap_or_else(|| panic!("{ctx}: oversized HTTP line got no reply"));
                assert!(
                    raw.starts_with(b"HTTP/1.1 400"),
                    "{ctx}: oversized HTTP line got {:?}",
                    http_status_line(&raw)
                );
            }
            // Request cut mid-head or mid-body, then disconnect: no
            // reply owed, nothing may be admitted.
            4 => {
                let body = format!(r#"{{"dataset":"{DATASET}","eps":1.0,"minpts":4}}"#);
                let full = format!(
                    "POST /v1/submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                let cut = 1 + rng.below(full.len() as u32 - 1) as usize;
                if let Some(addr) = handle.http_addr() {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let _ = s.write_all(&full.as_bytes()[..cut]);
                        drop(s);
                    }
                }
            }
            // Torn-write HTTP submit: must apply whole, oracle-checked.
            5 => {
                let i = rng.below(o.pool.len() as u32) as usize;
                torn_http_submit(&handle, rng.next_u64(), i, &ctx);
            }
            // A malformed append body (trailing garbage after the JSON):
            // typed 400, and the dataset must not mutate (the post-loop
            // length check catches any partial apply).
            6 => {
                let body = format!(r#"{{"dataset":"{DATASET}","points":[[1,2]]}}###"#);
                let payload = format!(
                    "POST /v1/append HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                let raw = http_raw_exchange(&handle, payload.as_bytes())
                    .unwrap_or_else(|| panic!("{ctx}: bad append got no reply"));
                assert!(
                    raw.starts_with(b"HTTP/1.1 400"),
                    "{ctx}: bad append got {:?}",
                    http_status_line(&raw)
                );
            }
            // Classic line-protocol garbage riding along, so the mix is
            // genuinely cross-protocol.
            _ => {
                let n = 1 + rng.below(40) as usize;
                let mut payload: Vec<u8> = (0..n).map(|_| 33 + (rng.below(94) as u8)).collect();
                payload.push(b'\n');
                if let Some(reply) = raw_exchange(&handle, &payload) {
                    assert!(reply.starts_with("ERR "), "{ctx}: garbage got {reply:?}");
                }
            }
        }
    }

    // Shared-cache warm checks across the doors: the line anchor must be
    // warm over HTTP, the HTTP anchor warm over the line protocol.
    assert!(
        http_healthy_submit(&mut http, 0, &format!("{ctx_seed} cross-warm http")),
        "{ctx_seed}: line-protocol anchor not warm through the HTTP door"
    );
    assert!(
        healthy_submit(&mut line, 1, &format!("{ctx_seed} cross-warm line")),
        "{ctx_seed}: HTTP anchor not warm through the line door"
    );

    // Nothing in the fault soup may have mutated the dataset.
    assert_eq!(
        handle.dataset_points(DATASET).unwrap().len(),
        o.points.len(),
        "{ctx_seed}: dataset length drifted under HTTP faults"
    );

    // Counter invariants under mixed-protocol load.
    let stats = line.stats_json().unwrap();
    assert_stats_consistent(&stats, &ctx_seed);
    assert_eq!(field_u64(&stats, "failed"), 0, "{ctx_seed}: failed jobs");
    handle
        .cache_invariants()
        .unwrap_or_else(|e| panic!("{ctx_seed}: cache invariant broken: {e}"));

    // METRICS == STATS at rest, sampled through *both* doors: the HTTP
    // scrape renders under the stats lock, so between two stable STATS
    // samples it must agree exactly.
    let mut settled = false;
    for _ in 0..500 {
        let before = line.stats_json().unwrap();
        let scrape = http.get("/metrics").unwrap();
        assert_eq!(scrape.status, 200);
        let after = line.stats_json().unwrap();
        let stable = ["submitted", "protocol_errors", "bad_request", "appends"]
            .iter()
            .all(|k| field_u64(&before, k) == field_u64(&after, k))
            && field_u64(&before, "in_flight") == 0
            && field_u64(&after, "in_flight") == 0;
        if stable {
            assert_metrics_match_stats(scrape.body_str(), &before, &ctx_seed);
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(settled, "{ctx_seed}: traffic never quiesced");

    // Bounded drain with the HTTP accept loop joined too.
    line.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "{ctx_seed}: drain did not bound"
    );
}

fn http_schedule_seeds() -> Vec<u64> {
    if let Ok(replay) = std::env::var("VBP_CHAOS_HTTP_SEED") {
        let hex = replay.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|_| panic!("VBP_CHAOS_HTTP_SEED={replay} is not hex"));
        return vec![seed];
    }
    let full = matches!(std::env::var("VBP_CHAOS_FULL"), Ok(v) if v != "0" && !v.is_empty());
    let count = if full { 24 } else { 8 };
    (0..count)
        .map(|i: u64| 0x477E_60D0 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

#[test]
fn seeded_http_fault_schedules_preserve_invariants_across_protocols() {
    let _wd = Watchdog::arm("chaos-http-schedules", Duration::from_secs(570));
    for seed in http_schedule_seeds() {
        if let Err(panic) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_http_schedule(seed)))
        {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!(
                "HTTP chaos schedule failed: {msg}\n\
                 replay with: VBP_CHAOS_HTTP_SEED=0x{seed:x} cargo test -p vbp-service --test chaos"
            );
        }
    }
}

fn schedule_seeds() -> Vec<u64> {
    if let Ok(replay) = std::env::var("VBP_CHAOS_SEED") {
        let hex = replay.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|_| panic!("VBP_CHAOS_SEED={replay} is not hex"));
        return vec![seed];
    }
    let full = matches!(std::env::var("VBP_CHAOS_FULL"), Ok(v) if v != "0" && !v.is_empty());
    let count = if full { 96 } else { 24 };
    // Distinct, stable seeds; the constant is the golden-ratio increment
    // so seeds differ in every bit position.
    (0..count)
        .map(|i: u64| 0x5EED_C0DE ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

#[test]
fn seeded_fault_schedules_preserve_all_three_invariants() {
    let _wd = Watchdog::arm("chaos-schedules", Duration::from_secs(570));
    for seed in schedule_seeds() {
        if let Err(panic) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_schedule(seed)))
        {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!(
                "chaos schedule failed: {msg}\n\
                 replay with: VBP_CHAOS_SEED=0x{seed:x} cargo test -p vbp-service --test chaos"
            );
        }
    }
}

fn streaming_schedule_seeds() -> Vec<u64> {
    if let Ok(replay) = std::env::var("VBP_CHAOS_STREAM_SEED") {
        let hex = replay.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|_| panic!("VBP_CHAOS_STREAM_SEED={replay} is not hex"));
        return vec![seed];
    }
    let full = matches!(std::env::var("VBP_CHAOS_FULL"), Ok(v) if v != "0" && !v.is_empty());
    let count = if full { 24 } else { 8 };
    (0..count)
        .map(|i: u64| 0xBEE5_7EAD ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

#[test]
fn seeded_streaming_fault_schedules_preserve_the_append_ledger() {
    let _wd = Watchdog::arm("chaos-streaming-schedules", Duration::from_secs(570));
    for seed in streaming_schedule_seeds() {
        if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_streaming_schedule(seed)
        })) {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!(
                "streaming chaos schedule failed: {msg}\n\
                 replay with: VBP_CHAOS_STREAM_SEED=0x{seed:x} \
                 cargo test -p vbp-service --test chaos"
            );
        }
    }
}

/// The engine-boundary fault: an intentionally panicking variant,
/// injected through `variantdbscan::fault`, must fail *that job* with
/// `ERR internal` — fast — while the dispatcher, cache, and the very
/// same connection keep serving. Also the regression test for the old
/// wedge path, where a panicked job stalled its handler for the full
/// 600 s reply timeout (and killed the dispatcher outright).
#[test]
fn panicking_variant_fails_one_job_and_daemon_keeps_serving() {
    let _wd = Watchdog::arm("chaos-panic-containment", Duration::from_secs(240));
    let o = oracle();
    // Bit-exact poison ε, far outside the oracle pool so concurrent
    // schedules never trip it.
    let poison_eps = 77.625;
    let mut handle = chaos_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    {
        let _armed = variantdbscan::fault::ArmedFault::new(poison_eps);
        let t0 = Instant::now();
        let err = client
            .submit(DATASET, poison_eps, 4, false)
            .expect_err("poisoned job must fail");
        let elapsed = t0.elapsed();
        assert_eq!(err.code(), Some(ErrorCode::Internal), "{err}");
        assert!(
            err.to_string()
                .contains(variantdbscan::fault::INJECTED_PANIC_PREFIX),
            "unexpected failure detail: {err}"
        );
        // Wedge regression: containment answers promptly; the old path
        // killed the dispatcher and left the handler waiting out its
        // 600 s timeout.
        assert!(
            elapsed < Duration::from_secs(20),
            "poisoned job took {elapsed:?} to fail — wedge is back"
        );

        // Same connection, same dataset, same armed seam: healthy
        // variants sail through.
        healthy_submit(&mut client, 0, "containment: healthy after poison");
        healthy_submit(&mut client, 3, "containment: second healthy after poison");
    }

    // Seam disarmed: the previously poisoned ε now completes, isomorphic
    // to its direct run.
    let reply = client.submit(DATASET, poison_eps, 4, true).unwrap();
    let served = ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap()));
    let engine = Engine::new(common::engine_config(2));
    let poison_set = VariantSet::new(vec![Variant::new(poison_eps, 4)]);
    let direct = engine
        .execute(&RunRequest::new(&o.points, &poison_set))
        .unwrap();
    assert_isomorphic(
        &ClusterResult::from_labels(Labels::from_raw(direct.result_in_caller_order(0))),
        &served,
        &brute_core_points(&o.points, poison_eps, 4),
        "containment: disarmed resubmission",
    );

    // Accounting: exactly one failure, invariant intact — and the
    // exposition carries both the same counters and the contained panic.
    let stats = client.stats_json().unwrap();
    assert_eq!(field_u64(&stats, "failed"), 1, "{stats}");
    assert_stats_consistent(&stats, "containment");
    let metrics = client.metrics().unwrap();
    assert_metrics_match_stats(&metrics, &stats, "containment");
    assert!(
        metric_u64(&metrics, "vbp_engine_panics_contained_total") >= 1,
        "contained panic missing from exposition:\n{metrics}"
    );

    client.shutdown().unwrap();
    let t0 = Instant::now();
    handle.wait();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "drain did not bound"
    );
}

/// A fresh, empty store directory under the system temp dir, unique per
/// process and test.
fn fresh_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vbp-chaos-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Boots a store-enabled daemon over [`DATASET`]: restore-or-cold from
/// `dir` at boot, persist back to `dir` on drain.
fn store_server(dir: &std::path::Path) -> ServerHandle {
    let engine = Engine::new(common::engine_config(2));
    let names = vec![DATASET.to_string()];
    let (registry, boot) = vbp_service::boot_from_store(&engine, &names, dir).unwrap();
    vbp_service::Server::start_with_store(
        engine,
        registry,
        ServiceConfig {
            queue_cap: 8,
            cache_bytes: 8 << 20,
            batch_window: Duration::ZERO,
            max_line_bytes: MAX_LINE,
            job_timeout: Duration::from_secs(30),
            store_dir: Some(dir.to_path_buf()),
            ..ServiceConfig::default()
        },
        boot,
    )
    .unwrap()
}

/// Direct engine labels (caller order) for one variant over an explicit
/// point set — the oracle for post-append generations the precomputed
/// [`oracle`] can't cover.
fn direct_result(points: &[Point2], eps: f64, minpts: usize) -> ClusterResult {
    let engine = Engine::new(common::engine_config(2));
    let variants = VariantSet::new(vec![Variant::new(eps, minpts)]);
    let report = engine.execute(&RunRequest::new(points, &variants)).unwrap();
    ClusterResult::from_labels(Labels::from_raw(report.result_in_caller_order(0)))
}

/// Submits one variant with labels and checks it against a direct engine
/// run over `points`; returns the reply's warm flag.
fn submit_vs_direct(
    client: &mut Client,
    points: &[Point2],
    eps: f64,
    minpts: usize,
    ctx: &str,
) -> bool {
    let reply = client
        .submit(DATASET, eps, minpts, true)
        .unwrap_or_else(|e| panic!("{ctx}: submit failed: {e}"));
    let served = ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap()));
    assert_eq!(served.len(), points.len(), "{ctx}: label count");
    assert_isomorphic(
        &direct_result(points, eps, minpts),
        &served,
        &brute_core_points(points, eps, minpts),
        ctx,
    );
    reply.warm
}

/// Kill-and-restart-warm: incarnation A appends (dirtying the index
/// tail) and caches results, then drains — persisting the flushed,
/// remapped generation. Incarnation B (the kill emulation) mutates the
/// same dataset *without* a store and exits, so its work never reaches
/// disk, exactly like a SIGKILL between persists. Incarnation C boots
/// with the store and must resurrect A's generation precisely: same
/// points, warm cache hits for A's variants, and labels isomorphic to a
/// direct engine run over the restored point set.
#[test]
fn kill_and_restart_with_store_restores_warm_and_correct() {
    let _wd = Watchdog::arm("chaos-store-restart", Duration::from_secs(480));
    let o = oracle();
    let dir = fresh_store_dir("warm");
    let mut rng = Pcg32::seeded(0x0005_704E_A11E);
    let ctx = "store-restart";

    // Incarnation A: dirty the index tail, populate the cache, drain.
    let pts_a: Vec<Point2>;
    {
        let mut handle = store_server(&dir);
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let batch: Vec<Point2> = (0..7)
            .map(|_| seeded_point(&mut rng, &o.points, false))
            .collect();
        client.append(DATASET, &batch).unwrap();
        pts_a = handle.dataset_points(DATASET).unwrap();
        assert_eq!(pts_a.len(), o.points.len() + 7, "{ctx}: A's append");
        for k in [0usize, 1] {
            let (eps, minpts) = o.pool[k];
            submit_vs_direct(
                &mut client,
                &pts_a,
                eps,
                minpts,
                &format!("{ctx} A pool[{k}]"),
            );
        }
        let stats = client.stats_json().unwrap();
        assert_eq!(field_u64(&stats, "store_restored"), 0, "{ctx}: A restored");
        client.shutdown().unwrap();
        handle.wait(); // persists: resorts the dirty tail, remaps the cache
    }

    // Incarnation B: same dataset, no store — appends and caches more,
    // then exits. Nothing it did may be visible after the restart.
    {
        let mut handle = chaos_server();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let batch: Vec<Point2> = (0..5)
            .map(|_| seeded_point(&mut rng, &o.points, true))
            .collect();
        client.append(DATASET, &batch).unwrap();
        let (eps, minpts) = o.pool[2];
        client.submit(DATASET, eps, minpts, false).unwrap();
        client.shutdown().unwrap();
        handle.wait();
    }

    // Incarnation C: restore. A's generation, exactly.
    {
        let mut handle = store_server(&dir);
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let pts_c = handle.dataset_points(DATASET).unwrap();
        assert_eq!(
            pts_c, pts_a,
            "{ctx}: restored points differ from A's generation"
        );

        // A's cached variants hit warm; their labels must match a direct
        // engine run over the restored points bit-for-bit in structure.
        for k in [0usize, 1] {
            let (eps, minpts) = o.pool[k];
            let warm = submit_vs_direct(
                &mut client,
                &pts_a,
                eps,
                minpts,
                &format!("{ctx} C pool[{k}]"),
            );
            assert!(warm, "{ctx}: restored cache missed pool[{k}]");
        }
        // An uncached variant still answers correctly on the restored
        // index (it may legally warm-start off a restored dominating
        // entry — correctness is the invariant, not coldness).
        let (eps, minpts) = o.pool[4];
        submit_vs_direct(
            &mut client,
            &pts_a,
            eps,
            minpts,
            &format!("{ctx} C uncached"),
        );

        let stats = client.stats_json().unwrap();
        assert_stats_consistent(&stats, ctx);
        assert_eq!(field_u64(&stats, "store_restored"), 1, "{ctx}: {stats}");
        assert_eq!(
            field_u64(&stats, "store_restore_failed"),
            0,
            "{ctx}: {stats}"
        );
        let metrics = client.metrics().unwrap();
        assert_metrics_match_stats(&metrics, &stats, ctx);
        handle
            .cache_invariants()
            .unwrap_or_else(|e| panic!("{ctx}: cache invariant broken: {e}"));

        client.shutdown().unwrap();
        let t0 = Instant::now();
        handle.wait();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "{ctx}: drain did not bound"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged store file must never restore: every corruption style falls
/// back to a cold rebuild of the catalog dataset, bumps
/// `vbp_store_restore_failed`, and still answers oracle-correct labels.
#[test]
fn corrupt_store_files_fall_back_to_cold_rebuild() {
    let _wd = Watchdog::arm("chaos-store-corrupt", Duration::from_secs(480));
    let o = oracle();
    let dir = fresh_store_dir("corrupt");
    let path = vbp_service::dataset_path(&dir, DATASET);

    // Seed the store with one clean persist.
    {
        let mut handle = store_server(&dir);
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        healthy_submit(&mut client, 0, "store-corrupt seed");
        client.shutdown().unwrap();
        handle.wait();
    }
    let pristine = std::fs::read(&path).unwrap();
    assert!(!pristine.is_empty());

    for style in ["bit-flip", "truncate", "garbage"] {
        let ctx = format!("store-corrupt {style}");
        let mutated = match style {
            "bit-flip" => {
                let mut b = pristine.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x10;
                b
            }
            "truncate" => pristine[..pristine.len() / 3].to_vec(),
            _ => b"VBPSTORE but not really".to_vec(),
        };
        std::fs::write(&path, &mutated).unwrap();

        let mut handle = store_server(&dir);
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        // Cold rebuild: the catalog generation, not whatever the damaged
        // file might have smuggled.
        assert_eq!(
            handle.dataset_points(DATASET).unwrap(),
            o.points,
            "{ctx}: fallback is not the catalog dataset"
        );
        let warm = healthy_submit(&mut client, 0, &ctx);
        assert!(!warm, "{ctx}: a damaged store may not seed the cache");
        let stats = client.stats_json().unwrap();
        assert_stats_consistent(&stats, &ctx);
        assert_eq!(field_u64(&stats, "store_restored"), 0, "{ctx}: {stats}");
        assert_eq!(
            field_u64(&stats, "store_restore_failed"),
            1,
            "{ctx}: {stats}"
        );
        let metrics = client.metrics().unwrap();
        assert_metrics_match_stats(&metrics, &stats, &ctx);
        client.shutdown().unwrap();
        handle.wait(); // re-persists a clean file…
        assert!(
            vbp_service::restore_dataset(&path).is_ok(),
            "{ctx}: drain did not heal the store"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A poisoned variant riding in a *multi-variant batch* must not drag
/// its batch peers down: the dispatcher isolates the batch, retries
/// each variant alone, and only the poisoned jobs answer `ERR internal`.
#[test]
fn poisoned_batch_peer_is_isolated() {
    let _wd = Watchdog::arm("chaos-batch-isolation", Duration::from_secs(240));
    let o = oracle();
    let poison_eps = 88.375; // distinct from the other test's poison
    let mut handle = common::start_server(
        &[DATASET],
        2,
        ServiceConfig {
            queue_cap: 16,
            cache_bytes: 8 << 20,
            // A real batching window, so concurrent submits coalesce
            // into one engine run.
            batch_window: Duration::from_millis(40),
            max_line_bytes: MAX_LINE,
            job_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();

    let _armed = variantdbscan::fault::ArmedFault::new(poison_eps);
    let healthy: Vec<_> = (0..3)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let (eps, minpts) = oracle().pool[k];
                c.submit(DATASET, eps, minpts, true)
            })
        })
        .collect();
    let poisoned = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(60))).unwrap();
        c.submit(DATASET, poison_eps, 4, false)
    });

    let err = poisoned
        .join()
        .unwrap()
        .expect_err("poisoned job must fail");
    assert_eq!(err.code(), Some(ErrorCode::Internal), "{err}");
    for (k, h) in healthy.into_iter().enumerate() {
        let reply = h.join().unwrap().unwrap_or_else(|e| {
            panic!("healthy batch peer {k} dragged down by poisoned variant: {e}")
        });
        let served = ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap()));
        assert_isomorphic(
            &o.direct[k],
            &served,
            &o.cores[k],
            &format!("batch isolation peer {k}"),
        );
    }

    let stats = handle.stats_json();
    assert_stats_consistent(&stats, "batch isolation");
    handle.shutdown();
}
