//! Router equivalence — the scale-out counterpart of `loopback_smoke`.
//!
//! Fronts two (or three) in-process daemons with a consistent-hash
//! router and checks the properties the router exists for:
//!
//! 1. **Correctness through the proxy** — label vectors served via the
//!    router are label-isomorphic to a direct `Engine::run`, and an
//!    identical resubmission is answered warm (placement is sticky, so
//!    the dominance cache on the owning backend keeps paying off);
//! 2. **Deterministic placement** — every request for a dataset lands
//!    on the ring owner [`RouterHandle::placement`] names, observable
//!    as per-backend `STATS` deltas;
//! 3. **Merge semantics** — fanned-out `/v1/stats` and `/metrics`
//!    documents equal the per-backend sums at rest and satisfy the
//!    daemon's own admission invariant;
//! 4. **Quorum health** — `/healthz` degrades and then goes
//!    unavailable as backends die, without lying about who is up.
//!
//! Deployment model: every backend registers the full catalog (the
//! tests cannot pre-compute ephemeral ports into a placement plan), and
//! the ring alone decides who serves what.

mod common;

use std::time::Duration;

use common::{
    assert_isomorphic, assert_stats_consistent, brute_core_points, field_u64, metric_u64,
    start_server, Watchdog,
};
use variantdbscan::{Engine, RunReport, RunRequest, VariantSet};
use vbp_dbscan::{suggest_eps, ClusterResult, Labels};
use vbp_geom::Point2;
use vbp_rtree::PackedRTree;
use vbp_service::{
    DatasetService, HttpClient, JsonValue, Router, RouterConfig, RouterHandle, ServerHandle,
    ServiceConfig,
};

const DATASETS: [&str; 2] = ["cF_10k_5N@600", "SW1@600"];

/// One backend daemon with the full catalog and an HTTP door.
fn backend(datasets: &[&str]) -> ServerHandle {
    start_server(
        datasets,
        2,
        ServiceConfig {
            cache_bytes: 64 << 20,
            batch_window: Duration::ZERO,
            http_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    )
}

/// A router over the given backends' HTTP doors.
fn router_over(backends: &[&ServerHandle]) -> RouterHandle {
    let addrs = backends
        .iter()
        .map(|b| b.http_addr().expect("backend http door").to_string())
        .collect();
    let config = RouterConfig::builder()
        .backends(addrs)
        .build()
        .expect("valid router config");
    Router::start(config).expect("router binds")
}

fn connect(handle: &RouterHandle) -> HttpClient {
    let mut http = HttpClient::connect(handle.http_addr()).expect("connect to router");
    http.set_timeout(Some(Duration::from_secs(120))).unwrap();
    http
}

/// One direct single-variant engine run — the per-request oracle.
fn direct_run(engine: &Engine, points: &[Point2], eps: f64, minpts: usize) -> RunReport {
    let variants = VariantSet::new(vec![variantdbscan::Variant::new(eps, minpts)]);
    engine
        .execute(&RunRequest::new(points, &variants))
        .expect("direct oracle run")
}

/// Variant grid scaled off the dataset's k-dist knee.
fn workload(points: &[Point2]) -> Vec<(f64, usize)> {
    let (tree, _) = PackedRTree::build(points, 16);
    let base = suggest_eps(&tree, 4, 1).expect("dataset has a knee");
    let mut variants = Vec::new();
    for scale in [0.8, 1.0, 1.2, 1.5, 2.0] {
        for minpts in [4usize, 8] {
            variants.push((base * scale, minpts));
        }
    }
    variants
}

#[test]
fn routed_workload_is_label_isomorphic_and_lands_on_the_ring_owner() {
    let _wd = Watchdog::arm("router-equivalence-workload", Duration::from_secs(300));
    let mut backends = [backend(&DATASETS), backend(&DATASETS)];
    let mut router = router_over(&[&backends[0], &backends[1]]);
    let mut http = connect(&router);

    for name in DATASETS {
        let owner = router.placement(name);
        let owner_idx = backends
            .iter()
            .position(|b| b.http_addr().unwrap().to_string() == owner)
            .expect("placement names a configured backend");
        let before: Vec<u64> = backends
            .iter()
            .map(|b| field_u64(&b.stats_json(), "submitted"))
            .collect();

        let points = vbp_data::DatasetSpec::by_name(name).unwrap().generate();
        let engine = Engine::new(common::engine_config(2));
        let variants = workload(&points);

        // Cold round through the router: every reply label-isomorphic
        // to the direct engine over the same points.
        for (i, &(eps, minpts)) in variants.iter().enumerate() {
            let reply = http.submit(name, eps, minpts, true).unwrap();
            let direct = direct_run(&engine, &points, eps, minpts);
            assert_eq!(reply.clusters, direct.results[0].num_clusters());
            assert_eq!(reply.noise, direct.results[0].noise_count());
            let cores = brute_core_points(&points, eps, minpts);
            assert_isomorphic(
                &ClusterResult::from_labels(Labels::from_raw(direct.result_in_caller_order(0))),
                &ClusterResult::from_labels(Labels::from_raw(reply.labels.unwrap())),
                &cores,
                &format!("{name} via router, variant {i} ({eps:.3}, {minpts})"),
            );
        }

        // Sticky placement means the owner's dominance cache answers
        // identical resubmissions warm — through the router too.
        for &(eps, minpts) in variants.iter().take(3) {
            let reply = http.submit(name, eps, minpts, false).unwrap();
            assert!(reply.warm, "{name}: resubmission missed the owner's cache");
        }

        // Every request for this dataset landed on the ring owner and
        // nowhere else.
        for (i, b) in backends.iter().enumerate() {
            let delta = field_u64(&b.stats_json(), "submitted") - before[i];
            let expected = if i == owner_idx {
                variants.len() as u64 + 3
            } else {
                0
            };
            assert_eq!(
                delta, expected,
                "{name}: backend {i} saw {delta} submits (owner is backend {owner_idx})"
            );
        }
    }

    // The router's own ledger balances once it quiesces. The handler
    // thread books end-of-request *after* writing the response bytes,
    // so the client can observe its last reply a beat before the
    // ledger settles — wait out that window, bounded.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let ledger = loop {
        let ledger = router.stats_json();
        if field_u64(&ledger, "in_flight") == 0 {
            break ledger;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "router never quiesced: {ledger}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        field_u64(&ledger, "received"),
        field_u64(&ledger, "answered_ok") + field_u64(&ledger, "answered_err"),
        "router ledger out of balance: {ledger}"
    );

    router.shutdown();
    for b in &mut backends {
        b.shutdown();
    }
}

#[test]
fn fanned_out_stats_and_metrics_equal_per_backend_sums_at_rest() {
    let _wd = Watchdog::arm("router-equivalence-merge", Duration::from_secs(240));
    let mut backends = [backend(&DATASETS), backend(&DATASETS)];
    let mut router = router_over(&[&backends[0], &backends[1]]);
    let mut http = connect(&router);

    // A small mixed workload so both counters move: three variants per
    // dataset plus one append, all through the router.
    for name in DATASETS {
        let points = vbp_data::DatasetSpec::by_name(name).unwrap().generate();
        for &(eps, minpts) in workload(&points).iter().take(3) {
            http.submit(name, eps, minpts, false).unwrap();
        }
    }
    let extra: Vec<Point2> = (0..4)
        .map(|i| Point2::new(0.01 * i as f64, 0.02 * i as f64))
        .collect();
    let before_appends: Vec<u64> = backends
        .iter()
        .map(|b| field_u64(&b.stats_json(), "appends"))
        .collect();
    let reply = http.append(DATASETS[1], &extra).unwrap();
    assert_eq!(reply.appended, 4);
    assert_eq!(reply.total, 604);
    let owner = router.placement(DATASETS[1]);
    for (i, b) in backends.iter().enumerate() {
        let delta = field_u64(&b.stats_json(), "appends") - before_appends[i];
        let expected = u64::from(b.http_addr().unwrap().to_string() == owner);
        assert_eq!(delta, expected, "append landed off the ring owner");
    }

    // At rest: the merged stats document satisfies the daemon's own
    // admission invariant, and its counters are exactly the per-backend
    // sums.
    let backend_stats: Vec<String> = backends.iter().map(|b| b.stats_json()).collect();
    let merged = http.get("/v1/stats").unwrap();
    assert_eq!(merged.status, 200);
    let merged = merged.body_str().to_string();
    assert_stats_consistent(&merged, "merged router stats");
    for field in [
        "submitted",
        "completed",
        "failed",
        "appends",
        "append_points",
    ] {
        let sum: u64 = backend_stats.iter().map(|s| field_u64(s, field)).sum();
        assert_eq!(
            field_u64(&merged, field),
            sum,
            "merged `{field}` is not the per-backend sum"
        );
    }

    // Same for the Prometheus exposition: series sum name-wise, the
    // router appends its own ledger and a per-backend up gauge.
    let backend_metrics: Vec<String> = backends
        .iter()
        .map(|b| {
            let mut direct = HttpClient::connect(b.http_addr().unwrap()).unwrap();
            direct.metrics().unwrap()
        })
        .collect();
    let scrape = http.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let scrape = scrape.body_str();
    for name in [
        "vbp_jobs_submitted_total",
        "vbp_jobs_completed_total",
        "vbp_append_batches_total",
    ] {
        let sum: u64 = backend_metrics.iter().map(|m| metric_u64(m, name)).sum();
        assert_eq!(
            metric_u64(scrape, name),
            sum,
            "merged `{name}` is not the per-backend sum"
        );
    }
    assert!(metric_u64(scrape, "vbp_router_received_total") > 0);
    for b in &backends {
        let gauge = format!("vbp_backend_up{{backend=\"{}\"}}", b.http_addr().unwrap());
        assert_eq!(metric_u64(scrape, &gauge), 1, "live backend reported down");
    }

    // The merged catalog annotates each dataset with its ring owner,
    // and the dataset-scoped GET proxies to that owner.
    let listing = http.get("/v1/datasets").unwrap();
    assert_eq!(listing.status, 200);
    let doc = listing.json().unwrap();
    let entries = doc.get("datasets").and_then(JsonValue::as_array).unwrap();
    assert_eq!(entries.len(), DATASETS.len());
    for entry in entries {
        let name = entry.get("name").and_then(JsonValue::as_str).unwrap();
        assert_eq!(
            entry.get("backend").and_then(JsonValue::as_str).unwrap(),
            router.placement(name),
            "catalog annotation disagrees with the ring"
        );
    }
    let scoped = http.get(&format!("/v1/datasets/{}", DATASETS[1])).unwrap();
    assert_eq!(scoped.status, 200);
    let doc = scoped.json().unwrap();
    assert_eq!(
        doc.get("name").and_then(JsonValue::as_str),
        Some(DATASETS[1])
    );
    assert_eq!(doc.get("points").and_then(JsonValue::as_f64), Some(604.0));
    assert_eq!(
        doc.get("backend").and_then(JsonValue::as_str).unwrap(),
        router.placement(DATASETS[1])
    );
    let missing = http.get("/v1/datasets/not-registered").unwrap();
    assert_eq!(missing.status, 404);
    assert!(
        missing.body_str().contains("unknown-dataset"),
        "404 must carry the typed code: {}",
        missing.body_str()
    );

    router.shutdown();
    for b in &mut backends {
        b.shutdown();
    }
}

#[test]
fn healthz_quorum_degrades_then_goes_unavailable_as_backends_die() {
    let _wd = Watchdog::arm("router-equivalence-quorum", Duration::from_secs(240));
    let mut backends = [
        backend(&DATASETS[..1]),
        backend(&DATASETS[..1]),
        backend(&DATASETS[..1]),
    ];
    let mut router = router_over(&[&backends[0], &backends[1], &backends[2]]);
    let mut http = connect(&router);

    let probe = |http: &mut HttpClient| {
        let resp = http.get("/healthz").unwrap();
        let doc = resp.json().unwrap();
        (
            resp.status,
            doc.get("status")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string(),
            doc.get("backends_up").and_then(JsonValue::as_f64).unwrap() as usize,
        )
    };

    // All three up: ok.
    assert_eq!(probe(&mut http), (200, "ok".into(), 3));

    // Two of three is a strict majority: degraded but still serving.
    backends[2].shutdown();
    assert_eq!(probe(&mut http), (200, "degraded".into(), 2));

    // One of three is below quorum: unavailable, 503.
    backends[1].shutdown();
    assert_eq!(probe(&mut http), (503, "unavailable".into(), 1));

    router.shutdown();
    backends[0].shutdown();
}
