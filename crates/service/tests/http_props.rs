//! HTTP gateway robustness properties (seed-replayable via the proptest
//! shim's `VBP_PROPTEST_SEED`).
//!
//! Mirrors `protocol_props.rs` for the second front door:
//!
//! 1. the live handler is total over byte soup — arbitrary chunked
//!    garbage through [`ServerHandle::serve_http_transport`] never
//!    panics, never wedges, and only ever emits well-formed HTTP/1.1
//!    responses (exact `Content-Length` framing, explicit `Connection`,
//!    JSON error bodies carrying the line protocol's typed codes);
//! 2. truncating a valid request at every byte offset never admits a
//!    partial job and never produces a malformed response;
//! 3. oversized request lines and header blocks come back as typed
//!    `400`/`431` instead of unbounded buffering;
//! 4. submit/append JSON bodies round-trip identically through the
//!    hand-rolled writer and the gateway's parser;
//! 5. mixed valid/garbage keep-alive traffic leaves the daemon's
//!    admission counters consistent.

mod common;

use std::time::Duration;

use common::{assert_stats_consistent, Watchdog};
use proptest::prelude::*;
use proptest::{collection, proptest};
use variantdbscan::{Engine, JsonArray, JsonObject};
use vbp_service::{parse_json, JsonValue, MemTransport, Registry, Server, ServerHandle, Step};

/// Charset for generated dataset tokens (JSON- and protocol-legal).
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_@.-";

fn dataset_name(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|&i| NAME_CHARS[i as usize % NAME_CHARS.len()] as char)
        .collect()
}

/// One parsed response from the captured byte stream.
struct CapturedResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl CapturedResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Parses the raw bytes the handler wrote as a sequence of HTTP/1.1
/// responses, failing on any framing defect: a non-CRLF head, a missing
/// `Content-Length` or `Connection` header (interim `100 Continue`
/// excepted), a body shorter than declared, bytes after a
/// `Connection: close` response, or trailing garbage. This is the
/// "only well-formed HTTP ever leaves the socket" oracle.
fn parse_response_stream(bytes: &[u8]) -> Result<Vec<CapturedResponse>, String> {
    let mut responses = Vec::new();
    let mut i = 0;
    let mut closed = false;
    while i < bytes.len() {
        if closed {
            return Err(format!(
                "bytes written after a Connection: close response at offset {i}"
            ));
        }
        let rest = &bytes[i..];
        let head_len = rest
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or_else(|| format!("unterminated response head at offset {i}"))?
            + 4;
        let head = std::str::from_utf8(&rest[..head_len])
            .map_err(|_| format!("non-UTF-8 response head at offset {i}"))?;
        let mut lines = head.trim_end_matches("\r\n").split("\r\n");
        let status_line = lines.next().ok_or("empty response head")?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if version != "HTTP/1.1" {
            return Err(format!("bad response version in {status_line:?}"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status in {status_line:?}"))?;
        if parts.next().is_none_or(str::is_empty) {
            return Err(format!("missing reason phrase in {status_line:?}"));
        }
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed response header {line:?}"))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        i += head_len;
        let response = CapturedResponse {
            status,
            headers,
            body: Vec::new(),
        };
        if status == 100 {
            // Interim response: no body, no framing headers required.
            responses.push(response);
            continue;
        }
        let content_length: usize = response
            .header("content-length")
            .ok_or_else(|| format!("response {status} lacks Content-Length"))?
            .parse()
            .map_err(|_| format!("response {status} has a non-numeric Content-Length"))?;
        match response.header("connection") {
            Some("keep-alive") => {}
            Some("close") => closed = true,
            other => {
                return Err(format!(
                    "response {status} has Connection {other:?} (must be explicit)"
                ))
            }
        }
        if bytes.len() - i < content_length {
            return Err(format!(
                "response {status} declares {content_length} body bytes, {} remain",
                bytes.len() - i
            ));
        }
        let body = bytes[i..i + content_length].to_vec();
        i += content_length;
        if response
            .header("content-type")
            .is_some_and(|t| t.starts_with("application/json"))
        {
            parse_json(&body)
                .map_err(|e| format!("response {status} JSON body does not parse: {e}"))?;
        }
        if status >= 400 {
            let doc = parse_json(&body).map_err(|e| format!("error body not JSON: {e}"))?;
            let code = doc
                .get("error")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("error body lacks a typed 'error' field: {doc:?}"))?;
            vbp_service::ErrorCode::from_str_token(code)
                .ok_or_else(|| format!("untyped error code {code:?} in a {status} body"))?;
        }
        responses.push(CapturedResponse { body, ..response });
    }
    Ok(responses)
}

fn bare_server() -> ServerHandle {
    let engine = Engine::new(common::engine_config(1));
    Server::start(engine, Registry::new(), Default::default()).unwrap()
}

/// Drives one scripted byte schedule through the live HTTP handler and
/// returns whatever it wrote.
fn drive(handle: &ServerHandle, steps: Vec<Step>) -> Vec<u8> {
    let (transport, out) = MemTransport::new(steps);
    handle.serve_http_transport(transport).join().unwrap();
    let captured = out.lock().unwrap().clone();
    captured
}

/// A canonical well-formed submit request (unknown dataset — the fuzz
/// servers run with an empty registry, so it answers `404`).
fn submit_request() -> Vec<u8> {
    let body = r#"{"dataset":"d","eps":1.5,"minpts":4}"#;
    format!(
        "POST /v1/submit HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Layer 1: the handler is total over byte soup. Any chunking of any
    /// garbage produces only well-formed responses and a terminating
    /// handler, and leaves the counters consistent.
    #[test]
    fn handler_total_on_byte_soup(
        chunks in collection::vec(collection::vec(any::<u8>(), 1..64), 1..6),
        idle_every in 1usize..4,
    ) {
        let _wd = Watchdog::arm("http-props-soup", Duration::from_secs(120));
        let handle = bare_server();
        let mut steps = Vec::new();
        for (i, chunk) in chunks.into_iter().enumerate() {
            if i % idle_every == 0 {
                steps.push(Step::Idle);
            }
            steps.push(Step::Recv(chunk));
        }
        steps.push(Step::Close);
        let out = drive(&handle, steps);
        if let Err(e) = parse_response_stream(&out) {
            prop_assert!(false, "malformed output: {e}\nraw: {:?}", String::from_utf8_lossy(&out));
        }
        assert_stats_consistent(&handle.stats_json(), "http byte soup");
        let mut handle = handle;
        handle.shutdown();
    }

    /// Layer 2: truncation never corrupts. A valid request cut at any
    /// byte offset either produces nothing (torn head/body dropped at
    /// EOF) or a single complete, well-formed response.
    #[test]
    fn truncated_requests_never_admit_partial_work(cut in 0usize..96, chunk_len in 1usize..32) {
        let _wd = Watchdog::arm("http-props-trunc", Duration::from_secs(120));
        let handle = bare_server();
        let full = submit_request();
        let cut = cut.min(full.len());
        let steps: Vec<Step> = full[..cut]
            .chunks(chunk_len)
            .map(|c| Step::Recv(c.to_vec()))
            .chain(std::iter::once(Step::Close))
            .collect();
        let out = drive(&handle, steps);
        match parse_response_stream(&out) {
            Ok(responses) => {
                prop_assert!(responses.len() <= 1, "one request produced {} responses", responses.len());
                if cut < full.len() {
                    // A truncated request must never be answered 200.
                    prop_assert!(responses.iter().all(|r| r.status != 200));
                }
            }
            Err(e) => prop_assert!(false, "malformed output: {e}"),
        }
        let stats = handle.stats_json();
        assert_stats_consistent(&stats, "http truncation");
        // Nothing was ever admitted to the queue: the registry is empty,
        // so even the complete request stops at 404.
        prop_assert_eq!(common::field_u64(&stats, "submitted"), 0);
        let mut handle = handle;
        handle.shutdown();
    }

    /// Layer 4: submit bodies built with the hand-rolled writer parse
    /// back identically through the gateway's JSON parser.
    #[test]
    fn submit_json_roundtrip_is_identity(
        name_idx in collection::vec(any::<u8>(), 1..24),
        eps in 1e-9f64..1e9,
        minpts in 1usize..100_000,
        labels in any::<bool>(),
    ) {
        let dataset = dataset_name(&name_idx);
        let body = JsonObject::new()
            .str("dataset", &dataset)
            .float("eps", eps)
            .uint("minpts", minpts as u64)
            .boolean("labels", labels)
            .finish();
        let doc = parse_json(body.as_bytes()).unwrap();
        prop_assert_eq!(doc.get("dataset").and_then(JsonValue::as_str), Some(dataset.as_str()));
        prop_assert_eq!(doc.get("eps").and_then(JsonValue::as_f64), Some(eps));
        prop_assert_eq!(doc.get("minpts").and_then(JsonValue::as_f64), Some(minpts as f64));
        prop_assert_eq!(doc.get("labels").and_then(JsonValue::as_bool), Some(labels));
    }

    /// Layer 4b: append bodies round-trip every coordinate bit-for-bit,
    /// in order.
    #[test]
    fn append_json_roundtrip_is_identity(
        name_idx in collection::vec(any::<u8>(), 1..24),
        coords in collection::vec((-1e12f64..1e12, -1e12f64..1e12), 1..16),
    ) {
        let dataset = dataset_name(&name_idx);
        let mut points = JsonArray::new();
        for &(x, y) in &coords {
            let mut pair = JsonArray::new();
            pair.push_float(x);
            pair.push_float(y);
            points.push_raw(&pair.finish());
        }
        let body = JsonObject::new()
            .str("dataset", &dataset)
            .raw("points", &points.finish())
            .finish();
        let doc = parse_json(body.as_bytes()).unwrap();
        let parsed = doc.get("points").and_then(JsonValue::as_array).unwrap();
        prop_assert_eq!(parsed.len(), coords.len());
        for (item, &(x, y)) in parsed.iter().zip(&coords) {
            let pair = item.as_array().unwrap();
            prop_assert_eq!(pair[0].as_f64(), Some(x));
            prop_assert_eq!(pair[1].as_f64(), Some(y));
        }
    }

    /// Layer 5: keep-alive streams mixing well-formed requests with one
    /// trailing garbage line still produce only well-formed responses,
    /// answer every complete request before the poison, and leave the
    /// counters consistent.
    #[test]
    fn keepalive_with_trailing_garbage_stays_framed(
        healthy in 1usize..6,
        garbage in collection::vec(any::<u8>(), 1..48),
        chunk_len in 1usize..64,
    ) {
        let _wd = Watchdog::arm("http-props-keepalive", Duration::from_secs(120));
        let handle = bare_server();
        let mut bytes = Vec::new();
        for _ in 0..healthy {
            bytes.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        }
        // A garbage "request line" (sanitized of newlines so it stays
        // one line) followed by CRLFCRLF frames as a head and must be
        // rejected as exactly one typed 400.
        let mut poison: Vec<u8> = garbage
            .into_iter()
            .filter(|&b| b != b'\n' && b != b'\r')
            .collect();
        poison.push(b'!'); // never empty, never a valid method
        bytes.extend_from_slice(&poison);
        bytes.extend_from_slice(b"\r\n\r\n");
        let steps: Vec<Step> = bytes
            .chunks(chunk_len)
            .map(|c| Step::Recv(c.to_vec()))
            .chain(std::iter::once(Step::Close))
            .collect();
        let out = drive(&handle, steps);
        match parse_response_stream(&out) {
            Ok(responses) => {
                prop_assert_eq!(responses.len(), healthy + 1, "each request answered exactly once");
                for r in &responses[..healthy] {
                    prop_assert_eq!(r.status, 200);
                    prop_assert_eq!(r.header("connection"), Some("keep-alive"));
                }
                let last = &responses[healthy];
                prop_assert_eq!(last.status, 400);
                prop_assert_eq!(last.header("connection"), Some("close"));
            }
            Err(e) => prop_assert!(false, "malformed output: {e}"),
        }
        let stats = handle.stats_json();
        assert_stats_consistent(&stats, "http keepalive garbage");
        prop_assert_eq!(common::field_u64(&stats, "protocol_errors"), 1);
        let mut handle = handle;
        handle.shutdown();
    }
}

#[test]
fn oversized_request_line_answers_400_without_buffering() {
    let _wd = Watchdog::arm("http-oversized-line", Duration::from_secs(60));
    let handle = bare_server();
    // A request "line" far over the cap, never newline-terminated: the
    // handler must reject from the cap alone, not wait for framing.
    let steps = vec![
        Step::Recv(vec![b'A'; vbp_service::http::MAX_REQUEST_LINE_BYTES + 64]),
        Step::Close,
    ];
    let out = drive(&handle, steps);
    let responses = parse_response_stream(&out).unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, 400);
    assert_eq!(responses[0].header("connection"), Some("close"));
    assert_eq!(
        common::field_u64(&handle.stats_json(), "protocol_errors"),
        1
    );
    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn oversized_header_block_answers_431_without_buffering() {
    let _wd = Watchdog::arm("http-oversized-headers", Duration::from_secs(60));
    let handle = bare_server();
    // A valid request line followed by an endless header stream: the
    // total-head cap must fire before the blank line ever arrives.
    let mut bytes = b"GET /healthz HTTP/1.1\r\n".to_vec();
    while bytes.len()
        < vbp_service::http::MAX_REQUEST_LINE_BYTES + vbp_service::http::MAX_HEADER_BYTES + 64
    {
        bytes.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    let out = drive(&handle, vec![Step::Recv(bytes), Step::Close]);
    let responses = parse_response_stream(&out).unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, 431);
    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn too_many_headers_answers_431() {
    let _wd = Watchdog::arm("http-many-headers", Duration::from_secs(60));
    let handle = bare_server();
    let mut bytes = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..(vbp_service::http::MAX_HEADERS + 1) {
        bytes.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
    }
    bytes.extend_from_slice(b"\r\n");
    let out = drive(&handle, vec![Step::Recv(bytes), Step::Close]);
    let responses = parse_response_stream(&out).unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, 431);
    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn oversized_declared_body_answers_413() {
    let _wd = Watchdog::arm("http-oversized-body", Duration::from_secs(60));
    let handle = bare_server();
    let head = format!(
        "POST /v1/submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        vbp_service::http::MAX_BODY_BYTES + 1
    );
    let out = drive(&handle, vec![Step::Recv(head.into_bytes()), Step::Close]);
    let responses = parse_response_stream(&out).unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, 413);
    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn routes_answer_their_documented_statuses() {
    let _wd = Watchdog::arm("http-routes", Duration::from_secs(60));
    let handle = bare_server();
    let exchanges: &[(&str, u16)] = &[
        ("GET /healthz HTTP/1.1\r\n\r\n", 200),
        ("GET /v1/datasets HTTP/1.1\r\n\r\n", 200),
        ("GET /v1/stats HTTP/1.1\r\n\r\n", 200),
        ("GET /metrics HTTP/1.1\r\n\r\n", 200),
        ("DELETE /healthz HTTP/1.1\r\n\r\n", 405),
        ("GET /v1/submit HTTP/1.1\r\n\r\n", 405),
        ("GET /nope HTTP/1.1\r\n\r\n", 404),
        (
            "POST /v1/submit HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json",
            400,
        ),
        (
            "POST /v1/submit HTTP/1.1\r\nContent-Length: 36\r\n\r\n{\"dataset\":\"d\",\"eps\":1.5,\"minpts\":4}",
            404,
        ),
        (
            "POST /v1/append HTTP/1.1\r\nContent-Length: 37\r\n\r\n{\"dataset\":\"d\",\"points\":[[1.0,2.0]]}_",
            400,
        ),
    ];
    for &(request, want) in exchanges {
        let out = drive(
            &handle,
            vec![Step::Recv(request.as_bytes().to_vec()), Step::Close],
        );
        let responses = parse_response_stream(&out).unwrap_or_else(|e| panic!("{request:?}: {e}"));
        assert_eq!(responses.len(), 1, "{request:?}");
        assert_eq!(responses[0].status, want, "{request:?}");
        if request.starts_with("GET /healthz") {
            let doc = parse_json(&responses[0].body).unwrap();
            assert_eq!(
                doc.get("status").and_then(JsonValue::as_str),
                Some("ok"),
                "{request:?}"
            );
        }
    }
    assert_stats_consistent(&handle.stats_json(), "http routes");
    let mut handle = handle;
    handle.shutdown();
}

/// Regression corpus: adversarial requests that once panicked the
/// handler or exploited header-parsing laxity. Each must come back as
/// exactly one typed response — never a dropped connection.
#[test]
fn adversarial_corpus_answers_typed_responses() {
    let _wd = Watchdog::arm("http-adversarial-corpus", Duration::from_secs(60));
    let handle = bare_server();
    let submit_with_body = |body: &str| {
        format!(
            "POST /v1/submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let exchanges: Vec<(String, u16)> = vec![
        // `\u` + 1 hex digit + a 4-byte char: hex4 once sliced the &str
        // at byte i+4, a non-char boundary, and panicked the handler.
        (submit_with_body("{\"dataset\":\"\\u0\u{10348}\"}"), 400),
        (submit_with_body("{\"dataset\":\"\\u\u{e9}99\"}"), 400),
        (
            submit_with_body("{\"dataset\":\"\\ud800\\u\u{10348}1\"}"),
            400,
        ),
        // Content-Length is DIGIT only (usize::from_str accepts "+5").
        (
            "POST /v1/submit HTTP/1.1\r\nContent-Length: +5\r\n\r\n".into(),
            400,
        ),
        // Whitespace before the colon on a framing header (RFC 9112 §5.1).
        (
            "POST /v1/submit HTTP/1.1\r\nContent-Length : 5\r\n\r\nhello".into(),
            400,
        ),
    ];
    for (request, want) in exchanges {
        let out = drive(
            &handle,
            vec![Step::Recv(request.as_bytes().to_vec()), Step::Close],
        );
        let responses = parse_response_stream(&out).unwrap_or_else(|e| panic!("{request:?}: {e}"));
        assert_eq!(responses.len(), 1, "{request:?}");
        assert_eq!(responses[0].status, want, "{request:?}");
    }
    let stats = handle.stats_json();
    assert_stats_consistent(&stats, "http adversarial corpus");
    // Three well-framed-but-bad JSON bodies; two unframeable heads.
    assert_eq!(common::field_u64(&stats, "bad_request"), 3);
    assert_eq!(common::field_u64(&stats, "protocol_errors"), 2);
    let mut handle = handle;
    handle.shutdown();
}
