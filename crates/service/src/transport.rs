//! Connection I/O behind a seam: the [`Transport`] trait and the line
//! framing the daemon speaks over it.
//!
//! Production connections are [`TcpTransport`] (a thin `TcpStream`
//! wrapper); tests substitute the scripted and fault-injecting
//! transports from [`crate::fault`] to drive the exact same handler
//! code through partial reads, garbage bytes, timeouts, and
//! disconnects — deterministically, without a socket in the loop.
//!
//! [`LineIo`] replaces `BufRead::read_line` with framing the daemon can
//! defend: a hard per-line byte cap (overflow yields a typed event and
//! a resync that discards until the next newline instead of buffering
//! without bound), UTF-8 validation per line (bad bytes poison one
//! line, not the connection), and timeout-as-event so the handler can
//! poll its stop flag.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Byte-stream I/O for one connection, as the connection handler sees
/// it. Deliberately tiny: one reader, one writer, a read timeout, and a
/// hard close — everything else (framing, parsing, faults) layers on
/// top.
pub trait Transport: Send {
    /// Reads up to `buf.len()` bytes. `Ok(0)` is end-of-stream;
    /// `WouldBlock`/`TimedOut` means the read timeout elapsed.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes the whole buffer or fails.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Bounds how long [`Transport::read`] may block.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;

    /// Tears the connection down (both directions, best effort).
    fn close(&mut self);
}

/// The production transport: a connected `TcpStream`.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps an accepted (or connected) stream.
    pub fn new(stream: TcpStream) -> TcpTransport {
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.stream, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.stream, buf)
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// One framing event from [`LineIo::next_event`]. I/O errors other than
/// timeouts surface as the `Result`'s `Err`; everything a handler must
/// answer or survive is an event.
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line (newline stripped, trailing `\r` tolerated).
    Line(String),
    /// The line under construction exceeded the byte cap. The framing
    /// has already switched to resync mode: input is discarded until
    /// the next newline, then normal framing resumes.
    Overflow,
    /// A complete line arrived but was not valid UTF-8; it was dropped.
    InvalidUtf8,
    /// The read timeout elapsed with no new bytes — poll your stop flag
    /// and call again.
    Timeout,
    /// The peer closed the stream. A partial unterminated line is
    /// dropped, never parsed.
    Eof,
}

/// Bounded line framing over any [`Transport`].
pub struct LineIo<T> {
    transport: T,
    /// Bytes received but not yet framed into a line.
    buf: Vec<u8>,
    max_line_bytes: usize,
    /// Overflow resync: drop everything up to the next newline.
    discarding: bool,
}

impl<T: Transport> LineIo<T> {
    /// Frames `transport` with a hard per-line cap of `max_line_bytes`
    /// (newline excluded).
    pub fn new(transport: T, max_line_bytes: usize) -> LineIo<T> {
        LineIo {
            transport,
            buf: Vec::new(),
            max_line_bytes: max_line_bytes.max(1),
            discarding: false,
        }
    }

    /// The underlying transport, for writes and teardown.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Writes one response line (appends the newline).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut out = Vec::with_capacity(line.len() + 1);
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
        self.transport.write_all(&out)
    }

    /// Produces the next framing event, reading from the transport as
    /// needed.
    pub fn next_event(&mut self) -> io::Result<LineEvent> {
        loop {
            // Frame whatever is already buffered before reading more.
            while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                if self.discarding {
                    // The newline ends the oversized line; resume
                    // normal framing on the bytes that follow.
                    self.buf.drain(..=nl);
                    self.discarding = false;
                    continue;
                }
                // The cap applies to line *content*: a trailing `\r`
                // is framing, not payload, so a CRLF client gets the
                // same budget as an LF client.
                let mut end = nl;
                if end > 0 && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                if end > self.max_line_bytes {
                    // The whole oversized line (newline included) is
                    // already buffered: discard it in one step.
                    self.buf.drain(..=nl);
                    return Ok(LineEvent::Overflow);
                }
                let line: Vec<u8> = self.buf.drain(..=nl).take(end).collect();
                return Ok(match String::from_utf8(line) {
                    Ok(s) => LineEvent::Line(s),
                    Err(_) => LineEvent::InvalidUtf8,
                });
            }
            if self.discarding {
                // Still inside the oversized line: drop what we have.
                self.buf.clear();
            } else if self.buf.len() > self.max_line_bytes + 1 {
                // One byte of slack: a buffered cap-length line plus a
                // `\r` awaiting its `\n` is still within budget. At
                // cap + 2 the content exceeds the cap no matter what
                // the final byte turns out to be.
                self.buf.clear();
                self.discarding = true;
                return Ok(LineEvent::Overflow);
            }

            let mut chunk = [0u8; 4096];
            match self.transport.read(&mut chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Timeout);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{MemTransport, Step};

    fn events(io: &mut LineIo<MemTransport>) -> Vec<LineEvent> {
        let mut out = Vec::new();
        loop {
            let ev = io.next_event().unwrap();
            let done = ev == LineEvent::Eof;
            out.push(ev);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn frames_split_lines_and_strips_cr() {
        let (mem, _out) = MemTransport::new(vec![
            Step::Recv(b"HEL".to_vec()),
            Step::Recv(b"LO\r\nSTA".to_vec()),
            Step::Recv(b"TS\n".to_vec()),
        ]);
        let mut io = LineIo::new(mem, 64);
        assert_eq!(
            events(&mut io),
            vec![
                LineEvent::Line("HELLO".into()),
                LineEvent::Line("STATS".into()),
                LineEvent::Eof,
            ]
        );
    }

    #[test]
    fn oversized_line_overflows_once_then_resyncs() {
        let mut bytes = vec![b'x'; 100];
        bytes.extend_from_slice(b" tail of the long line\nHELLO\n");
        let (mem, _out) = MemTransport::new(vec![Step::Recv(bytes)]);
        let mut io = LineIo::new(mem, 16);
        assert_eq!(
            events(&mut io),
            vec![
                LineEvent::Overflow,
                LineEvent::Line("HELLO".into()),
                LineEvent::Eof,
            ]
        );
    }

    #[test]
    fn crlf_line_at_exact_cap_is_not_overflow() {
        // A line whose *content* is exactly the cap must frame whether
        // the client terminates with LF or CRLF; one byte over the cap
        // must overflow in both terminations.
        let cap = 16;
        let at_cap = vec![b'a'; cap];
        let over = vec![b'b'; cap + 1];
        for terminator in [&b"\n"[..], &b"\r\n"[..]] {
            let mut bytes = at_cap.clone();
            bytes.extend_from_slice(terminator);
            bytes.extend_from_slice(&over);
            bytes.extend_from_slice(terminator);
            bytes.extend_from_slice(b"HELLO");
            bytes.extend_from_slice(terminator);
            let (mem, _out) = MemTransport::new(vec![Step::Recv(bytes)]);
            let mut io = LineIo::new(mem, cap);
            assert_eq!(
                events(&mut io),
                vec![
                    LineEvent::Line(String::from_utf8(at_cap.clone()).unwrap()),
                    LineEvent::Overflow,
                    LineEvent::Line("HELLO".into()),
                    LineEvent::Eof,
                ],
                "terminator {terminator:?}"
            );
        }
    }

    #[test]
    fn crlf_line_at_exact_cap_frames_across_partial_reads() {
        // The buffered-bytes guard must tolerate a cap-length line
        // whose `\r` has arrived but whose `\n` has not.
        let cap = 8;
        let (mem, _out) = MemTransport::new(vec![
            Step::Recv(b"exactly8\r".to_vec()),
            Step::Idle,
            Step::Recv(b"\nHELLO\r\n".to_vec()),
        ]);
        let mut io = LineIo::new(mem, cap);
        assert_eq!(io.next_event().unwrap(), LineEvent::Timeout);
        assert_eq!(io.next_event().unwrap(), LineEvent::Line("exactly8".into()));
        assert_eq!(io.next_event().unwrap(), LineEvent::Line("HELLO".into()));
        assert_eq!(io.next_event().unwrap(), LineEvent::Eof);
    }

    #[test]
    fn invalid_utf8_poisons_one_line_only() {
        let (mem, _out) = MemTransport::new(vec![Step::Recv(b"\xff\xfe\nHELLO\n".to_vec())]);
        let mut io = LineIo::new(mem, 64);
        assert_eq!(
            events(&mut io),
            vec![
                LineEvent::InvalidUtf8,
                LineEvent::Line("HELLO".into()),
                LineEvent::Eof,
            ]
        );
    }

    #[test]
    fn timeout_surfaces_between_partial_reads() {
        let (mem, _out) = MemTransport::new(vec![
            Step::Recv(b"HEL".to_vec()),
            Step::Idle,
            Step::Recv(b"LO\n".to_vec()),
        ]);
        let mut io = LineIo::new(mem, 64);
        assert_eq!(io.next_event().unwrap(), LineEvent::Timeout);
        assert_eq!(io.next_event().unwrap(), LineEvent::Line("HELLO".into()));
    }

    #[test]
    fn eof_drops_partial_line() {
        let (mem, _out) = MemTransport::new(vec![Step::Recv(b"SUBMIT trunca".to_vec())]);
        let mut io = LineIo::new(mem, 64);
        assert_eq!(io.next_event().unwrap(), LineEvent::Eof);
    }
}
