//! Warm-state persistence for the daemon: one checksummed
//! [`vbp_store`] container file per registered dataset.
//!
//! On graceful drain (and on the wire `SHUTDOWN`), a store-enabled
//! server writes every dataset's prepared index plus its surviving
//! dominance-cache entries under the store directory. On the next boot,
//! [`boot_from_store`] restores each requested dataset from its file —
//! skipping the bin sort and the `r` auto-tune entirely (both packed
//! trees are re-derived from the stored order in O(n)) — and falls
//! back to a cold [`Registry::load`] rebuild for
//! any file that is missing, truncated, corrupt, version-mismatched, or
//! inconsistent with its own index. Fallbacks are logged and counted
//! (`vbp_store_restore_failed` in `METRICS`); they are never allowed to
//! surface wrong labels, because nothing a failed validation touched is
//! ever installed.
//!
//! Writes are crash-safe per file: the container is written to a
//! `.tmp` sibling and atomically renamed over the final name, so a kill
//! mid-persist leaves either the previous complete file or none — never
//! a torn one (and a torn `.tmp` is ignored by restore and overwritten
//! by the next persist).

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use variantdbscan::{Engine, PreparedIndex, Variant};
use vbp_dbscan::ClusterResult;
use vbp_store::{CacheRecord, DatasetMeta, DatasetSnapshot, StoreError, MAX_FILE_BYTES};

use crate::registry::{DatasetEntry, Registry};

/// File extension of one dataset's warm-state container.
pub const STORE_EXT: &str = "vbpstore";

/// The store file a dataset persists to. Dataset names are already
/// restricted to filename-safe characters (`[A-Za-z0-9_@.-]`, enforced
/// by the container's own metadata validation), so the name maps
/// directly. The checksummed *in-file* name is authoritative on
/// restore; the file name is only a locator.
pub fn dataset_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.{STORE_EXT}"))
}

/// Serializes one dataset's warm state and writes it crash-safely
/// (temp file + rename) under `dir`, creating the directory if needed.
pub fn persist_dataset(
    dir: &Path,
    entry: &DatasetEntry,
    cache: &[(Variant, Arc<ClusterResult>)],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let records: Vec<CacheRecord> = cache
        .iter()
        .map(|(v, r)| CacheRecord {
            eps: v.eps,
            minpts: v.minpts as u64,
            labels: r.labels().iter_raw().collect(),
        })
        .collect();
    let snapshot = DatasetSnapshot {
        meta: DatasetMeta {
            name: entry.name.clone(),
            suggested_eps: entry.suggested_eps,
        },
        index: entry.index.to_snapshot(),
        cache: records,
    };
    let path = dataset_path(dir, &entry.name);
    let tmp = path.with_extension(format!("{STORE_EXT}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&snapshot.encode())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)
}

/// One dataset restored from its store file, validated end to end.
pub struct RestoredDataset {
    /// The registry entry, its index rebuilt without any bin sort, tree
    /// build, or tune sweep.
    pub entry: DatasetEntry,
    /// The dataset's surviving cache entries, tree-order results.
    pub cache: Vec<(Variant, Arc<ClusterResult>)>,
}

/// Reads and fully validates one dataset's store file.
///
/// Total on arbitrary file contents: every container checksum, section
/// length, permutation, and label invariant is checked, and
/// any violation — including a cache entry whose label vector does not
/// cover the restored index — comes back as a typed [`StoreError`].
pub fn restore_dataset(path: &Path) -> Result<RestoredDataset, StoreError> {
    let f = std::fs::File::open(path).map_err(|e| StoreError::Io(e.to_string()))?;
    let mut bytes = Vec::new();
    f.take(MAX_FILE_BYTES + 1)
        .read_to_end(&mut bytes)
        .map_err(|e| StoreError::Io(e.to_string()))?;
    let snapshot = DatasetSnapshot::decode(&bytes)?;
    let index = PreparedIndex::from_snapshot(snapshot.index)?;
    let points = index.caller_points();
    let mut cache = Vec::with_capacity(snapshot.cache.len());
    for rec in &snapshot.cache {
        if rec.labels.len() != index.len() {
            return Err(StoreError::Malformed {
                section: vbp_store::section_id::CACHE,
                reason: format!(
                    "cache entry covers {} points, index has {}",
                    rec.labels.len(),
                    index.len()
                ),
            });
        }
        // `decode` proved ε finite ≥ 0 and minpts ≥ 1 — Variant::new
        // cannot panic here — and proved the labels finished and dense.
        cache.push((
            Variant::new(rec.eps, rec.minpts as usize),
            Arc::new(rec.to_result()),
        ));
    }
    Ok(RestoredDataset {
        entry: DatasetEntry {
            name: snapshot.meta.name,
            points,
            index,
            suggested_eps: snapshot.meta.suggested_eps,
        },
        cache,
    })
}

/// What [`boot_from_store`] hands to
/// [`Server::start_with_store`](crate::server::Server::start_with_store):
/// the cache entries to seed and the restore counters to expose.
#[derive(Default)]
pub struct StoreBoot {
    /// `(dataset, variant, tree-order result)` triples to seed the
    /// dominance cache with, validated against the restored indexes.
    pub cache_seed: Vec<(String, Variant, Arc<ClusterResult>)>,
    /// Datasets restored warm from the store.
    pub restored: u64,
    /// Datasets that fell back to a cold rebuild (missing, corrupt,
    /// truncated, or version-mismatched files).
    pub restore_failed: u64,
}

/// Boots a registry for `names`, restoring each dataset from its store
/// file under `dir` when possible and falling back to a cold
/// [`Registry::load`] rebuild otherwise. A restored file whose in-file
/// dataset name disagrees with the requested name is treated as
/// corrupt. Returns the registry plus the [`StoreBoot`] seed; cold
///-rebuild *load* errors (unknown catalog name) are returned as `Err`
/// exactly like a storeless boot would.
pub fn boot_from_store(
    engine: &Engine,
    names: &[String],
    dir: &Path,
) -> Result<(Registry, StoreBoot), String> {
    let registry = Registry::new();
    let mut boot = StoreBoot::default();
    for name in names {
        let path = dataset_path(dir, name);
        match restore_dataset(&path) {
            Ok(restored) if restored.entry.name == *name => {
                for (variant, result) in restored.cache {
                    boot.cache_seed.push((name.clone(), variant, result));
                }
                registry.swap(Arc::new(restored.entry));
                boot.restored += 1;
                continue;
            }
            Ok(restored) => {
                eprintln!(
                    "vbp-store: {} names dataset '{}', expected '{name}'; rebuilding cold",
                    path.display(),
                    restored.entry.name
                );
            }
            Err(StoreError::Io(_)) if !path.exists() => {
                // A first boot with an empty store directory is not a
                // failure — there is simply nothing to restore yet.
            }
            Err(e) => {
                eprintln!(
                    "vbp-store: {} failed validation ({e}); rebuilding cold",
                    path.display()
                );
            }
        }
        if path.exists() {
            boot.restore_failed += 1;
        }
        registry.load(engine, name)?;
    }
    Ok((registry, boot))
}

/// Persists every registered dataset (plus its share of `cache`) under
/// `dir`. Returns the number of datasets written; the first I/O error
/// aborts the sweep.
pub fn persist_all(
    dir: &Path,
    registry: &Registry,
    cache: &[(String, Variant, Arc<ClusterResult>)],
) -> std::io::Result<usize> {
    let mut written = 0;
    for entry in registry.entries() {
        let own: Vec<(Variant, Arc<ClusterResult>)> = cache
            .iter()
            .filter(|(d, _, _)| *d == entry.name)
            .map(|(_, v, r)| (*v, Arc::clone(r)))
            .collect();
        persist_dataset(dir, &entry, &own)?;
        written += 1;
    }
    Ok(written)
}

/// Validates every `*.vbpstore` file under `dir`, returning
/// `(file name, Ok(dataset summary) | Err(description))` per file in
/// name order — the backing of `vbp store verify`.
pub fn verify_dir(dir: &Path) -> std::io::Result<Vec<(String, Result<String, String>)>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == STORE_EXT))
        .collect();
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let verdict = match restore_dataset(&path) {
            Ok(r) => Ok(format!(
                "dataset '{}': {} points, r={}, {} cache entries",
                r.entry.name,
                r.entry.index.len(),
                r.entry.index.chosen_r(),
                r.cache.len()
            )),
            Err(e) => Err(e.to_string()),
        };
        out.push((file, verdict));
    }
    Ok(out)
}
