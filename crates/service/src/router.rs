//! `vbp route` — a consistent-hash router for many-daemon scale-out.
//!
//! One daemon's warm state (prepared indexes, dominance cache) is the
//! whole point of the service tier, and it does not shard itself: a
//! dataset's requests must keep landing on the daemon holding that
//! dataset's investment. The router is the thin process that makes a
//! fleet of daemons look like one: it speaks the exact HTTP surface of
//! the gateway ([`crate::http`]), hashes the `dataset` of every
//! dataset-scoped request onto a static consistent-hash ring
//! ([`HashRing`]) of backend daemons, and proxies the exchange over a
//! bounded per-backend connection pool ([`BackendPool`]).
//!
//! # Route classes
//!
//! | route                       | behaviour                               |
//! |-----------------------------|-----------------------------------------|
//! | `POST /v1/submit`           | parse → hash `dataset` → proxy to owner |
//! | `POST /v1/append`           | parse → hash `dataset` → proxy to owner |
//! | `GET /v1/datasets/<name>`   | hash `<name>` → ask the owner           |
//! | `GET /v1/datasets`          | fan out, merge (owner's entry wins)     |
//! | `GET /v1/stats`             | fan out, sum counters + router section  |
//! | `GET /metrics`              | fan out, sum series + `vbp_backend_*`   |
//! | `GET /healthz`              | probe all, answer by quorum             |
//!
//! Bodies are parsed *at the router* with the gateway's own parsers, so
//! a malformed submit costs a local `400` and never touches a backend.
//! Proxied replies are re-rendered from the typed
//! [`DatasetService`](crate::api::DatasetService) reply; the one field
//! that does not survive the hop is the submit `report` embed (the
//! trait reply does not carry it — scrape a backend directly when you
//! want its RunReport).
//!
//! # Degradation
//!
//! A dead backend takes down *its* datasets only: their requests answer
//! a typed `503 {"error":"unavailable"}` with a `Retry-After` header
//! (a code no daemon ever emits, so callers can tell "my dataset's
//! shard is down" from "the shard is overloaded/draining"). The ring is
//! static — ownership never migrates at runtime, because the survivors
//! never registered the dead backend's datasets and a silent remap
//! would fork append streams. Fan-out reads skip dead backends and say
//! so (`"up": false` in `/v1/stats`, `vbp_backend_up 0` in `/metrics`,
//! quorum in `/healthz`).
//!
//! # Counters
//!
//! The router keeps its own admission ledger under one lock with the
//! same shape the daemon pins in its test suite:
//! `received == answered_ok + answered_err + in_flight`, with framing
//! violations counted separately as `protocol_errors`. Summed backend
//! counters stay internally consistent too: each backend snapshot
//! satisfies the admission invariant on its own, so any sum of
//! snapshots does as well — which is why the merged `/v1/stats`
//! document passes the exact invariant check the per-daemon stats do.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use variantdbscan::{JsonArray, JsonObject};

use crate::api::{DatasetService, Health};
use crate::client::ClientError;
use crate::http::{
    parse_append_body, parse_json, parse_submit_body, status_for, write_error, write_response,
    HttpClient, HttpIo, JsonValue, ReadOutcome,
};
use crate::pool::{BackendPool, PoolError, PooledService};
use crate::protocol::ErrorCode;
use crate::ring::HashRing;
use crate::transport::{TcpTransport, Transport};

/// Router configuration; build one with
/// [`RouterConfig::builder`](crate::config::RouterConfigBuilder).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address of the router's HTTP door; port 0 for ephemeral.
    pub http_addr: String,
    /// Backend daemon HTTP (gateway) addresses. Order is placement-
    /// relevant only through the vnode hashes, but keep it stable
    /// across restarts anyway — it is part of the deployment's
    /// identity.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the ring (spread granularity).
    pub virtual_nodes: usize,
    /// Connection-pool cap per backend.
    pub pool_per_backend: usize,
    /// Handler read-timeout; bounds how fast connections notice a
    /// shutdown.
    pub poll_interval: Duration,
    /// Socket write timeout toward router clients.
    pub write_timeout: Duration,
    /// Read timeout on backend connections — bounds one proxied
    /// exchange, so it must cover a full engine run (the daemon's own
    /// job timeout is 600s by default).
    pub backend_timeout: Duration,
    /// How long a handler waits for a pooled backend connection before
    /// answering `503 overloaded`.
    pub checkout_timeout: Duration,
    /// Consecutive failed connect-sequences before a backend's breaker
    /// opens.
    pub breaker_threshold: u32,
    /// How long an open breaker fast-fails before probing again.
    pub breaker_cooldown: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            http_addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            virtual_nodes: 64,
            pool_per_backend: 8,
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(30),
            backend_timeout: Duration::from_secs(600),
            checkout_timeout: Duration::from_secs(5),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
        }
    }
}

/// The router's own admission ledger, kept under one lock so the
/// invariant `received == answered_ok + answered_err + in_flight` is
/// never observably violated.
#[derive(Clone, Copy, Debug, Default)]
struct RouterStats {
    received: u64,
    answered_ok: u64,
    answered_err: u64,
    in_flight: u64,
    protocol_errors: u64,
    proxied: u64,
    fanouts: u64,
}

pub(crate) struct RouterShared {
    ring: HashRing,
    /// One pool per backend, parallel to `ring.backends()`.
    pools: Vec<BackendPool>,
    stats: Mutex<RouterStats>,
    started: Instant,
    poll_interval: Duration,
    draining: AtomicBool,
}

impl RouterShared {
    fn new(config: &RouterConfig) -> RouterShared {
        let ring = HashRing::new(&config.backends, config.virtual_nodes);
        let pools = config
            .backends
            .iter()
            .map(|addr| {
                let dial_addr = addr.clone();
                let backend_timeout = config.backend_timeout;
                BackendPool::new(
                    addr.clone(),
                    config.pool_per_backend,
                    config.checkout_timeout,
                    config.breaker_threshold,
                    config.breaker_cooldown,
                    Box::new(move || {
                        let mut client = HttpClient::connect(dial_addr.as_str())?;
                        client.set_timeout(Some(backend_timeout))?;
                        Ok(Box::new(client) as PooledService)
                    }),
                )
            })
            .collect();
        RouterShared {
            ring,
            pools,
            stats: Mutex::new(RouterStats::default()),
            started: Instant::now(),
            poll_interval: config.poll_interval,
            draining: AtomicBool::new(false),
        }
    }

    fn owner_pool(&self, dataset: &str) -> &BackendPool {
        &self.pools[self.ring.owner_index(dataset)]
    }

    fn begin_request(&self) {
        let mut s = self.stats.lock().expect("router stats lock poisoned");
        s.received += 1;
        s.in_flight += 1;
    }

    fn end_request(&self, ok: bool) {
        let mut s = self.stats.lock().expect("router stats lock poisoned");
        s.in_flight -= 1;
        if ok {
            s.answered_ok += 1;
        } else {
            s.answered_err += 1;
        }
    }

    fn note_protocol_error(&self) {
        self.stats
            .lock()
            .expect("router stats lock poisoned")
            .protocol_errors += 1;
    }

    fn note_proxied(&self) {
        self.stats
            .lock()
            .expect("router stats lock poisoned")
            .proxied += 1;
    }

    fn note_fanout(&self) {
        self.stats
            .lock()
            .expect("router stats lock poisoned")
            .fanouts += 1;
    }

    /// The `"router"` object embedded in `/v1/stats`: the admission
    /// ledger plus per-backend pool counters.
    fn router_json(&self) -> String {
        let s = *self.stats.lock().expect("router stats lock poisoned");
        let mut backends = JsonArray::new();
        for pool in &self.pools {
            let c = pool.counters();
            backends.push_raw(
                &JsonObject::new()
                    .str("backend", pool.addr())
                    .boolean("breaker_open", pool.breaker_open())
                    .uint("connects", c.connects)
                    .uint("connect_failures", c.connect_failures)
                    .uint("checkouts", c.checkouts)
                    .uint("busy_timeouts", c.busy_timeouts)
                    .uint("breaker_trips", c.breaker_trips)
                    .uint("breaker_fast_fails", c.breaker_fast_fails)
                    .uint("dropped_conns", c.dropped)
                    .finish(),
            );
        }
        JsonObject::new()
            .uint("received", s.received)
            .uint("answered_ok", s.answered_ok)
            .uint("answered_err", s.answered_err)
            .uint("in_flight", s.in_flight)
            .uint("protocol_errors", s.protocol_errors)
            .uint("proxied", s.proxied)
            .uint("fanouts", s.fanouts)
            .raw("pools", &backends.finish())
            .finish()
    }

    /// Fans one closure out to every backend, answering
    /// `(addr, Some(result))` for live ones and `(addr, None)` for
    /// unreachable ones. Serial on purpose: the fleet sizes this
    /// router targets (a handful of daemons) do not justify a thread
    /// per probe, and a dead backend costs at most one bounded
    /// connect-timeout (then its breaker fast-fails).
    fn fan_out<R>(
        &self,
        mut f: impl FnMut(&mut dyn DatasetService) -> Result<R, ClientError>,
    ) -> Vec<(String, Option<R>)> {
        self.note_fanout();
        self.pools
            .iter()
            .map(|pool| {
                let got = pool.with_conn(&mut f).ok();
                (pool.addr().to_string(), got)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Merging
// ---------------------------------------------------------------------------

/// One merged metric sample: integer counters sum exactly; anything
/// that ever carried a decimal point sums as a float.
#[derive(Clone, Copy, Debug, PartialEq)]
enum MetricValue {
    Uint(u64),
    Float(f64),
}

impl MetricValue {
    fn add(&mut self, other: MetricValue) {
        *self = match (*self, other) {
            (MetricValue::Uint(a), MetricValue::Uint(b)) => MetricValue::Uint(a + b),
            (a, b) => MetricValue::Float(a.as_f64() + b.as_f64()),
        };
    }

    fn as_f64(self) -> f64 {
        match self {
            MetricValue::Uint(v) => v as f64,
            MetricValue::Float(v) => v,
        }
    }
}

/// Sums expositions line-wise: `name{labels} value` series with the
/// same name sum across backends; first-seen order is kept so the
/// merged document reads like a daemon's. Unparseable lines are
/// dropped (the daemon never emits any; a torn scrape already failed
/// at the pool layer).
fn merge_metric_texts<'a>(texts: impl Iterator<Item = &'a str>) -> Vec<(String, MetricValue)> {
    let mut order: Vec<String> = Vec::new();
    let mut merged: HashMap<String, MetricValue> = HashMap::new();
    for text in texts {
        for line in text.lines() {
            let Some((name, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let parsed = if value.contains(['.', 'e', 'E']) {
                value.parse::<f64>().ok().map(MetricValue::Float)
            } else {
                value.parse::<u64>().ok().map(MetricValue::Uint)
            };
            let Some(parsed) = parsed else { continue };
            match merged.get_mut(name) {
                Some(v) => v.add(parsed),
                None => {
                    order.push(name.to_string());
                    merged.insert(name.to_string(), parsed);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|name| {
            let v = merged[&name];
            (name, v)
        })
        .collect()
}

/// The daemon stats counters the router sums across backends, in the
/// daemon's own field order. `max_batch` takes the max instead — a
/// fleet's widest batch, not a meaningless sum of widths.
const SUMMED_STATS_FIELDS: &[&str] = &[
    "submitted",
    "completed",
    "failed",
    "in_flight",
    "rejected_overloaded",
    "rejected_draining",
    "unknown_dataset",
    "bad_request",
    "protocol_errors",
    "batches",
    "max_batch",
    "reuse_hits",
    "in_run_reused",
    "from_scratch",
    "appends",
    "appends_applied",
    "appends_rejected",
    "append_points",
    "watches",
    "watch_deltas",
    "store_restored",
    "store_restore_failed",
];

/// The quorum rule `/healthz` answers by: all up is `ok`, a strict
/// majority is `degraded` (still `200` — the fleet is serving), and
/// anything below quorum is `unavailable` with `503`.
fn quorum_status(up: usize, total: usize) -> (&'static str, u16) {
    let quorum = total / 2 + 1;
    if up == total {
        ("ok", 200)
    } else if up >= quorum {
        ("degraded", 200)
    } else {
        ("unavailable", 503)
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// Per-connection request loop of the router, over any [`Transport`] —
/// the same framing discipline as the gateway's handler, including the
/// typed `400`/`431`/`413` answers and the keep-alive rules.
pub(crate) fn handle_router_connection<T: Transport>(
    mut transport: T,
    shared: &RouterShared,
    stop: &AtomicBool,
) {
    let _ = transport.set_read_timeout(Some(shared.poll_interval));
    let mut io = HttpIo::new(transport);
    loop {
        match io.read_request(stop) {
            ReadOutcome::Request(req) => {
                if req.expect_continue
                    && req.content_length > 0
                    && io.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
                {
                    break;
                }
                let body = match io.read_body(req.content_length, stop) {
                    Ok(body) => body,
                    Err(_) => break,
                };
                let keep_alive = req.keep_alive && !stop.load(Ordering::Acquire);
                shared.begin_request();
                let answered = respond_router(
                    &mut io,
                    shared,
                    req.method.as_str(),
                    req.target.as_str(),
                    &body,
                    keep_alive,
                );
                match answered {
                    Ok(status) => shared.end_request(status < 400),
                    Err(_) => {
                        // The write failed — the answer never reached
                        // the client, but the request was handled.
                        shared.end_request(false);
                        break;
                    }
                }
                if !keep_alive {
                    break;
                }
            }
            ReadOutcome::Malformed { status, message } => {
                shared.note_protocol_error();
                let _ = write_error(&mut io, status, ErrorCode::Protocol, &message, false, &[]);
                break;
            }
            ReadOutcome::Closed | ReadOutcome::Stopped => break,
        }
    }
    io.close();
}

/// Routes one request; `Ok(status)` is what was answered, `Err(())`
/// means the response write failed.
fn respond_router<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &RouterShared,
    method: &str,
    target: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<u16, ()> {
    match (method, target) {
        ("GET", "/healthz") => respond_healthz(io, shared, keep_alive),
        ("GET", "/v1/datasets") => respond_datasets(io, shared, keep_alive),
        ("GET", "/v1/stats") => {
            let body = router_stats_json(shared);
            write_status(io, 200, "application/json", body.as_bytes(), keep_alive)
        }
        ("GET", "/metrics") => {
            let body = router_metrics_text(shared);
            write_status(
                io,
                200,
                "text/plain; version=0.0.4",
                body.as_bytes(),
                keep_alive,
            )
        }
        ("POST", "/v1/submit") => respond_proxy_submit(io, shared, body, keep_alive),
        ("POST", "/v1/append") => respond_proxy_append(io, shared, body, keep_alive),
        ("GET", _)
            if target
                .strip_prefix("/v1/datasets/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            respond_dataset_scoped(io, shared, &target["/v1/datasets/".len()..], keep_alive)
        }
        (_, "/healthz" | "/v1/datasets" | "/v1/stats" | "/metrics") => write_typed(
            io,
            405,
            ErrorCode::BadRequest,
            &format!("{target} only supports GET"),
            keep_alive,
            &[("Allow", "GET")],
        ),
        (_, "/v1/submit" | "/v1/append") => write_typed(
            io,
            405,
            ErrorCode::BadRequest,
            &format!("{target} only supports POST"),
            keep_alive,
            &[("Allow", "POST")],
        ),
        (_, _)
            if target
                .strip_prefix("/v1/datasets/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            write_typed(
                io,
                405,
                ErrorCode::BadRequest,
                &format!("{target} only supports GET"),
                keep_alive,
                &[("Allow", "GET")],
            )
        }
        _ => write_typed(
            io,
            404,
            ErrorCode::BadRequest,
            &format!("no route for {target}"),
            keep_alive,
            &[],
        ),
    }
}

fn write_status<T: Transport>(
    io: &mut HttpIo<T>,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<u16, ()> {
    write_response(io, status, content_type, body, keep_alive, &[])
        .map(|()| status)
        .map_err(|_| ())
}

fn write_typed<T: Transport>(
    io: &mut HttpIo<T>,
    status: u16,
    code: ErrorCode,
    message: &str,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> Result<u16, ()> {
    write_error(io, status, code, message, keep_alive, extra)
        .map(|()| status)
        .map_err(|_| ())
}

/// Maps a failed proxied exchange onto the wire: every shape lands on
/// a typed JSON error with the right status, and everything
/// retryable-later carries a `Retry-After`.
fn write_pool_error<T: Transport>(
    io: &mut HttpIo<T>,
    e: PoolError,
    keep_alive: bool,
) -> Result<u16, ()> {
    match e {
        PoolError::Busy => write_typed(
            io,
            503,
            ErrorCode::Overloaded,
            "retry-after=1 router connection pool busy",
            keep_alive,
            &[("Retry-After", "1")],
        ),
        PoolError::Unavailable { message } => write_typed(
            io,
            503,
            ErrorCode::Unavailable,
            &format!("retry-after=1 {message}"),
            keep_alive,
            &[("Retry-After", "1")],
        ),
        PoolError::Service(ClientError::Overloaded {
            retry_after,
            message,
        }) => {
            let secs = retry_after.map(|d| d.as_secs().max(1)).unwrap_or(1);
            let header = secs.to_string();
            write_typed(
                io,
                503,
                ErrorCode::Overloaded,
                &message,
                keep_alive,
                &[("Retry-After", header.as_str())],
            )
        }
        PoolError::Service(ClientError::Rejected { code, message }) => {
            write_typed(io, status_for(code), code, &message, keep_alive, &[])
        }
        // with_conn never surfaces Io/Protocol as Service, but the
        // types allow it; treat it as the backend having died.
        PoolError::Service(e) => write_typed(
            io,
            503,
            ErrorCode::Unavailable,
            &format!("retry-after=1 backend failed: {e}"),
            keep_alive,
            &[("Retry-After", "1")],
        ),
    }
}

fn respond_proxy_submit<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &RouterShared,
    body: &[u8],
    keep_alive: bool,
) -> Result<u16, ()> {
    let (dataset, eps, minpts, labels) = match parse_submit_body(body) {
        Ok(parsed) => parsed,
        Err(msg) => return write_typed(io, 400, ErrorCode::BadRequest, &msg, keep_alive, &[]),
    };
    shared.note_proxied();
    let pool = shared.owner_pool(&dataset);
    match pool.with_conn(|svc| svc.submit(&dataset, eps, minpts, labels)) {
        Ok(reply) => {
            let mut obj = JsonObject::new()
                .uint("clusters", reply.clusters as u64)
                .uint("noise", reply.noise as u64)
                .boolean("warm", reply.warm)
                .boolean("reused", reply.reused)
                .float("ms", reply.ms);
            if let Some(labels) = reply.labels {
                let mut arr = JsonArray::new();
                for l in labels {
                    arr.push_uint(l as u64);
                }
                obj = obj.raw("labels", &arr.finish());
            }
            write_status(
                io,
                200,
                "application/json",
                obj.finish().as_bytes(),
                keep_alive,
            )
        }
        Err(e) => write_pool_error(io, e, keep_alive),
    }
}

fn respond_proxy_append<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &RouterShared,
    body: &[u8],
    keep_alive: bool,
) -> Result<u16, ()> {
    let (dataset, points) = match parse_append_body(body) {
        Ok(parsed) => parsed,
        Err(msg) => return write_typed(io, 400, ErrorCode::BadRequest, &msg, keep_alive, &[]),
    };
    shared.note_proxied();
    let pool = shared.owner_pool(&dataset);
    match pool.with_conn(|svc| svc.append(&dataset, &points)) {
        Ok(reply) => {
            let body = JsonObject::new()
                .uint("appended", reply.appended as u64)
                .uint("total", reply.total as u64)
                .uint("repaired", reply.repaired as u64)
                .uint("dropped", reply.dropped as u64)
                .float("ms", reply.ms)
                .finish();
            write_status(io, 200, "application/json", body.as_bytes(), keep_alive)
        }
        Err(e) => write_pool_error(io, e, keep_alive),
    }
}

fn respond_dataset_scoped<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &RouterShared,
    name: &str,
    keep_alive: bool,
) -> Result<u16, ()> {
    shared.note_proxied();
    let pool = shared.owner_pool(name);
    match pool.with_conn(|svc| svc.datasets()) {
        Ok(list) => match list.iter().find(|(n, _)| n == name) {
            Some((_, points)) => {
                let body = JsonObject::new()
                    .str("name", name)
                    .uint("points", *points as u64)
                    .str("backend", pool.addr())
                    .finish();
                write_status(io, 200, "application/json", body.as_bytes(), keep_alive)
            }
            None => write_typed(
                io,
                404,
                ErrorCode::UnknownDataset,
                &format!("dataset '{name}' is not registered on its shard"),
                keep_alive,
                &[],
            ),
        },
        Err(e) => write_pool_error(io, e, keep_alive),
    }
}

fn respond_healthz<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &RouterShared,
    keep_alive: bool,
) -> Result<u16, ()> {
    let probes = shared.fan_out(|svc| svc.healthz());
    let up = probes.iter().filter(|(_, h)| h.is_some()).count();
    let (status_word, status) = quorum_status(up, probes.len());
    let mut backends = JsonArray::new();
    for (addr, health) in &probes {
        backends.push_raw(
            &JsonObject::new()
                .str("backend", addr)
                .boolean("up", health.is_some())
                .boolean(
                    "draining",
                    matches!(health, Some(Health { draining: true, .. })),
                )
                .finish(),
        );
    }
    let body = JsonObject::new()
        .str("status", status_word)
        .boolean("draining", shared.draining.load(Ordering::Acquire))
        .uint("backends_up", up as u64)
        .uint("backends_total", probes.len() as u64)
        .raw("backends", &backends.finish())
        .finish();
    write_status(io, status, "application/json", body.as_bytes(), keep_alive)
}

fn respond_datasets<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &RouterShared,
    keep_alive: bool,
) -> Result<u16, ()> {
    let listings = shared.fan_out(|svc| svc.datasets());
    // Dedupe by name. Backends may all register the same catalog (the
    // superset deployment the tests use); the entry that wins is the
    // ring owner's, because that is where the router sends traffic.
    let mut merged: Vec<(String, usize)> = Vec::new();
    for (addr, listing) in listings.into_iter() {
        let Some(listing) = listing else { continue };
        for (name, points) in listing {
            let owner_is_this = shared.ring.owner(&name) == addr;
            match merged.iter_mut().find(|(n, _)| *n == name) {
                Some(entry) => {
                    if owner_is_this {
                        entry.1 = points;
                    }
                }
                None => merged.push((name, points)),
            }
        }
    }
    let mut arr = JsonArray::new();
    for (name, points) in &merged {
        arr.push_raw(
            &JsonObject::new()
                .str("name", name)
                .uint("points", *points as u64)
                .str("backend", shared.ring.owner(name))
                .finish(),
        );
    }
    let body = JsonObject::new().raw("datasets", &arr.finish()).finish();
    write_status(io, 200, "application/json", body.as_bytes(), keep_alive)
}

/// The merged `/v1/stats` document: summed daemon counters (the sum of
/// internally-consistent snapshots is itself consistent), per-backend
/// raw embeds, and the router's own ledger.
fn router_stats_json(shared: &RouterShared) -> String {
    let replies = shared.fan_out(|svc| svc.stats_json());
    let mut sums: HashMap<&str, u64> = HashMap::new();
    let mut engine_busy_ms = 0.0f64;
    let mut backends = JsonArray::new();
    for (addr, raw) in &replies {
        let parsed = raw.as_deref().and_then(|r| parse_json(r.as_bytes()).ok());
        let up = parsed.is_some();
        let mut entry = JsonObject::new().str("backend", addr).boolean("up", up);
        if let Some(doc) = parsed {
            for &field in SUMMED_STATS_FIELDS {
                let v = doc.get(field).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
                let slot = sums.entry(field).or_insert(0);
                if field == "max_batch" {
                    *slot = (*slot).max(v);
                } else {
                    *slot += v;
                }
            }
            engine_busy_ms += doc
                .get("engine_busy_ms")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            if let Some(raw) = raw {
                entry = entry.raw("stats", raw);
            }
        }
        backends.push_raw(&entry.finish());
    }
    let mut obj = JsonObject::new()
        .uint("uptime_ms", shared.started.elapsed().as_millis() as u64)
        .boolean("draining", shared.draining.load(Ordering::Acquire));
    for &field in SUMMED_STATS_FIELDS {
        obj = obj.uint(field, sums.get(field).copied().unwrap_or(0));
        if field == "from_scratch" {
            // Keep the daemon's field order: engine_busy_ms follows
            // the engine counters.
            obj = obj.float("engine_busy_ms", engine_busy_ms);
        }
    }
    obj.raw("router", &shared.router_json())
        .raw("backends", &backends.finish())
        .finish()
}

/// The merged `/metrics` exposition: backend series summed name-wise,
/// then the router's own `vbp_router_*` ledger and per-backend
/// `vbp_backend_*` series.
fn router_metrics_text(shared: &RouterShared) -> String {
    use std::fmt::Write as _;
    let replies = shared.fan_out(|svc| svc.metrics());
    let merged = merge_metric_texts(replies.iter().filter_map(|(_, text)| text.as_deref()));
    let mut out = String::with_capacity(4096);
    for (name, value) in merged {
        match value {
            MetricValue::Uint(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Float(v) => {
                let _ = writeln!(out, "{name} {v:.6}");
            }
        }
    }
    let s = *shared.stats.lock().expect("router stats lock poisoned");
    let _ = writeln!(out, "vbp_router_received_total {}", s.received);
    let _ = writeln!(out, "vbp_router_answered_ok_total {}", s.answered_ok);
    let _ = writeln!(out, "vbp_router_answered_err_total {}", s.answered_err);
    let _ = writeln!(out, "vbp_router_in_flight {}", s.in_flight);
    let _ = writeln!(
        out,
        "vbp_router_protocol_errors_total {}",
        s.protocol_errors
    );
    let _ = writeln!(out, "vbp_router_proxied_total {}", s.proxied);
    let _ = writeln!(out, "vbp_router_fanouts_total {}", s.fanouts);
    let _ = writeln!(
        out,
        "vbp_router_uptime_seconds {:.3}",
        shared.started.elapsed().as_secs_f64()
    );
    for pool in &shared.pools {
        let c = pool.counters();
        let addr = pool.addr();
        let _ = writeln!(
            out,
            "vbp_backend_up{{backend=\"{addr}\"}} {}",
            if pool.breaker_open() { 0 } else { 1 }
        );
        let _ = writeln!(
            out,
            "vbp_backend_connects_total{{backend=\"{addr}\"}} {}",
            c.connects
        );
        let _ = writeln!(
            out,
            "vbp_backend_connect_failures_total{{backend=\"{addr}\"}} {}",
            c.connect_failures
        );
        let _ = writeln!(
            out,
            "vbp_backend_checkouts_total{{backend=\"{addr}\"}} {}",
            c.checkouts
        );
        let _ = writeln!(
            out,
            "vbp_backend_busy_timeouts_total{{backend=\"{addr}\"}} {}",
            c.busy_timeouts
        );
        let _ = writeln!(
            out,
            "vbp_backend_breaker_trips_total{{backend=\"{addr}\"}} {}",
            c.breaker_trips
        );
        let _ = writeln!(
            out,
            "vbp_backend_breaker_fast_fails_total{{backend=\"{addr}\"}} {}",
            c.breaker_fast_fails
        );
        let _ = writeln!(
            out,
            "vbp_backend_dropped_conns_total{{backend=\"{addr}\"}} {}",
            c.dropped
        );
    }
    out
}

// ---------------------------------------------------------------------------
// The router process
// ---------------------------------------------------------------------------

/// Entry point: [`Router::start`] binds and serves.
pub struct Router;

/// A running router: bound address, counters, and shutdown.
pub struct RouterHandle {
    http_addr: SocketAddr,
    shared: Arc<RouterShared>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds the router's HTTP door and spawns the accept loop.
    pub fn start(config: RouterConfig) -> io::Result<RouterHandle> {
        let listener = TcpListener::bind(&config.http_addr)?;
        let http_addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared::new(&config));
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let write_timeout = config.write_timeout;
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("vbp-route-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_write_timeout(Some(write_timeout));
                        let shared = Arc::clone(&shared);
                        let stop = Arc::clone(&stop);
                        let handle = std::thread::Builder::new()
                            .name("vbp-route-conn".into())
                            .spawn(move || {
                                handle_router_connection(TcpTransport::new(stream), &shared, &stop);
                            });
                        let mut hs = handlers.lock().unwrap();
                        // Reap finished handlers, like the daemon's
                        // accept loop, so the registry tracks live
                        // connections only.
                        let mut i = 0;
                        while i < hs.len() {
                            if hs[i].is_finished() {
                                let _ = hs.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        if let Ok(handle) = handle {
                            hs.push(handle);
                        }
                    }
                })?
        };
        Ok(RouterHandle {
            http_addr,
            shared,
            stop,
            accept: Some(accept),
            handlers,
        })
    }
}

impl RouterHandle {
    /// The bound HTTP address (resolves port 0).
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// Which backend owns this dataset on the ring.
    pub fn placement(&self, dataset: &str) -> String {
        self.shared.ring.owner(dataset).to_string()
    }

    /// The router's own STATS document (what `GET /v1/stats` embeds
    /// under `"router"`).
    pub fn stats_json(&self) -> String {
        self.shared.router_json()
    }

    /// The full merged exposition, as `GET /metrics` would answer it.
    pub fn metrics_text(&self) -> String {
        router_metrics_text(&self.shared)
    }

    /// Runs the router's connection handler over an arbitrary
    /// [`Transport`] — the fault-injection entry point, mirroring
    /// [`ServerHandle::serve_transport`](crate::server::ServerHandle::serve_transport).
    /// The caller owns the join.
    pub fn serve_transport<T: Transport + 'static>(&self, transport: T) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop);
        std::thread::Builder::new()
            .name("vbp-route-conn-test".into())
            .spawn(move || handle_router_connection(transport, &shared, &stop))
            .expect("spawn router transport handler")
    }

    /// Stops accepting (idempotent); established connections finish
    /// their current exchange and close.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.http_addr);
    }

    /// Joins the accept loop and every connection handler. Blocks
    /// until a shutdown has begun (via [`Self::begin_shutdown`] or a
    /// process signal killing the listener) — `vbp route` parks here
    /// for the router's whole life.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
    }

    /// [`Self::begin_shutdown`] + [`Self::wait`].
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        self.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_merge_sums_uints_exactly_and_floats_loosely() {
        let a = "vbp_jobs_submitted_total 10\nvbp_engine_busy_seconds_total 1.500000\n";
        let b = "vbp_jobs_submitted_total 32\nvbp_engine_busy_seconds_total 0.250000\n";
        let merged = merge_metric_texts([a, b].into_iter());
        assert_eq!(merged[0].0, "vbp_jobs_submitted_total");
        assert_eq!(merged[0].1, MetricValue::Uint(42));
        assert_eq!(merged[1].0, "vbp_engine_busy_seconds_total");
        match merged[1].1 {
            MetricValue::Float(v) => assert!((v - 1.75).abs() < 1e-9),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn metric_merge_keeps_labelled_series_distinct_and_ordered() {
        let a = "vbp_rejected_total{reason=\"overloaded\"} 1\nvbp_rejected_total{reason=\"draining\"} 2\n";
        let b = "vbp_rejected_total{reason=\"overloaded\"} 3\n";
        let merged = merge_metric_texts([a, b].into_iter());
        assert_eq!(
            merged,
            vec![
                (
                    "vbp_rejected_total{reason=\"overloaded\"}".to_string(),
                    MetricValue::Uint(4)
                ),
                (
                    "vbp_rejected_total{reason=\"draining\"}".to_string(),
                    MetricValue::Uint(2)
                ),
            ]
        );
    }

    #[test]
    fn quorum_rule_matches_the_documented_table() {
        assert_eq!(quorum_status(2, 2), ("ok", 200));
        assert_eq!(quorum_status(3, 3), ("ok", 200));
        assert_eq!(quorum_status(2, 3), ("degraded", 200));
        assert_eq!(quorum_status(1, 2), ("unavailable", 503));
        assert_eq!(quorum_status(1, 3), ("unavailable", 503));
        assert_eq!(quorum_status(0, 1), ("unavailable", 503));
        assert_eq!(quorum_status(1, 1), ("ok", 200));
    }

    #[test]
    fn router_stats_ledger_holds_its_invariant_under_churn() {
        let shared = RouterShared::new(&RouterConfig {
            backends: vec!["127.0.0.1:1".into()],
            ..RouterConfig::default()
        });
        for i in 0..50u64 {
            shared.begin_request();
            if i % 3 == 0 {
                shared.end_request(false);
            } else {
                shared.end_request(true);
            }
        }
        shared.begin_request(); // one left in flight
        let s = *shared.stats.lock().unwrap();
        assert_eq!(s.received, 51);
        assert_eq!(s.received, s.answered_ok + s.answered_err + s.in_flight);
        assert_eq!(s.in_flight, 1);
    }
}
