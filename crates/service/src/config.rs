//! Validated configuration builders with typed errors.
//!
//! [`ServiceConfig`] grew a field per PR (ten by now) and was always
//! built with struct-literal update syntax — nothing checked that
//! `queue_cap: 0` or a zero poll interval did not wedge the daemon
//! until runtime. The builders here are the one place those invariants
//! live: every `vbp serve` flag maps 1:1 onto a setter, `build()`
//! answers a typed [`ConfigError`] instead of a late panic, and the
//! router's [`RouterConfig`](crate::router::RouterConfig) reuses the
//! same error taxonomy so the CLI renders both identically.
//!
//! The raw structs stay public and `Default`-constructible — tests and
//! embedders that want a literal keep it — but the CLI goes through the
//! builders exclusively.

use std::fmt;
use std::time::Duration;

use crate::router::RouterConfig;
use crate::server::ServiceConfig;

/// The smallest request-line cap a daemon can run with: a minimal
/// `SUBMIT <ds> <eps> <minpts>` must fit, or every request costs an
/// `ERR protocol`.
pub const MIN_LINE_BYTES: usize = 64;

/// Why a configuration was rejected. Every variant names the offending
/// field so the CLI can point at the flag that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A bind or backend address is empty.
    EmptyAddr {
        /// Which field held the empty address.
        field: &'static str,
    },
    /// The line-protocol and HTTP doors were given the same concrete
    /// address — the second bind would fail at startup. (Port `:0`
    /// twice is fine: the kernel hands out distinct ephemeral ports.)
    SameBind(String),
    /// `queue_cap` of 0 admits nothing; every submit would be
    /// `overloaded`.
    ZeroQueueCap,
    /// `max_line_bytes` below [`MIN_LINE_BYTES`] cannot frame a minimal
    /// request.
    LineCapTooSmall {
        /// The rejected cap.
        got: usize,
    },
    /// A duration that must be positive was zero.
    ZeroDuration {
        /// Which duration field was zero.
        field: &'static str,
    },
    /// The batching linger exceeds the job timeout, so every batched
    /// job could time out before the dispatcher even ran it.
    BatchWindowExceedsJobTimeout,
    /// A router needs at least one backend.
    NoBackends,
    /// The same backend address was listed twice; the ring would hash
    /// the duplicate onto itself and halve its effective capacity.
    DuplicateBackend(String),
    /// `virtual_nodes` of 0 leaves every backend off the ring.
    ZeroVirtualNodes,
    /// `pool_per_backend` of 0 can never check out a connection.
    ZeroPoolCap,
    /// A breaker that trips after 0 failures fast-fails everything.
    ZeroBreakerThreshold,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyAddr { field } => write!(f, "{field} must not be empty"),
            ConfigError::SameBind(addr) => {
                write!(f, "line and HTTP doors both bind '{addr}'")
            }
            ConfigError::ZeroQueueCap => write!(f, "queue_cap must be at least 1"),
            ConfigError::LineCapTooSmall { got } => write!(
                f,
                "max_line_bytes {got} is below the minimum {MIN_LINE_BYTES}"
            ),
            ConfigError::ZeroDuration { field } => write!(f, "{field} must be positive"),
            ConfigError::BatchWindowExceedsJobTimeout => {
                write!(f, "batch_window must not exceed job_timeout")
            }
            ConfigError::NoBackends => write!(f, "at least one --backends address is required"),
            ConfigError::DuplicateBackend(addr) => {
                write!(f, "backend '{addr}' is listed more than once")
            }
            ConfigError::ZeroVirtualNodes => write!(f, "vnodes must be at least 1"),
            ConfigError::ZeroPoolCap => write!(f, "pool must be at least 1"),
            ConfigError::ZeroBreakerThreshold => {
                write!(f, "breaker threshold must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ServiceConfig {
    /// Starts a validated builder seeded with the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }
}

/// Builder for [`ServiceConfig`]; `vbp serve` flags map 1:1 onto these
/// setters and [`ServiceConfigBuilder::build`] validates the result.
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Bind address for the line protocol (`--addr`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Optional second bind address for the HTTP gateway (`--http`).
    pub fn http_addr(mut self, addr: Option<String>) -> Self {
        self.config.http_addr = addr;
        self
    }

    /// Admission queue capacity (`--queue`).
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.config.queue_cap = cap;
        self
    }

    /// Reuse cache budget in bytes, 0 disables (`--cache-mb`).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.config.cache_bytes = bytes;
        self
    }

    /// Dispatcher batching linger (`--batch-ms`).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Handler read-timeout / drain-notice bound (`--poll-ms`).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.config.poll_interval = interval;
        self
    }

    /// Request-line byte cap (`--max-line`).
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.config.max_line_bytes = bytes;
        self
    }

    /// Engine-reply wait bound (`--job-timeout-s`).
    pub fn job_timeout(mut self, timeout: Duration) -> Self {
        self.config.job_timeout = timeout;
        self
    }

    /// Socket write timeout (`--write-timeout-s`).
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Intra-variant shard count, 0/1 keeps variant-parallel
    /// (`--shards`).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Warm-state store directory (`--store`).
    pub fn store_dir(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.config.store_dir = dir;
        self
    }

    /// Validates and finishes the configuration.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        let c = self.config;
        if c.addr.is_empty() {
            return Err(ConfigError::EmptyAddr { field: "addr" });
        }
        if let Some(http) = &c.http_addr {
            if http.is_empty() {
                return Err(ConfigError::EmptyAddr { field: "http_addr" });
            }
            // Identical concrete addresses collide; two `:0` binds get
            // distinct ephemeral ports and are fine.
            if *http == c.addr && !c.addr.ends_with(":0") {
                return Err(ConfigError::SameBind(c.addr));
            }
        }
        if c.queue_cap == 0 {
            return Err(ConfigError::ZeroQueueCap);
        }
        if c.max_line_bytes < MIN_LINE_BYTES {
            return Err(ConfigError::LineCapTooSmall {
                got: c.max_line_bytes,
            });
        }
        for (field, d) in [
            ("poll_interval", c.poll_interval),
            ("job_timeout", c.job_timeout),
            ("write_timeout", c.write_timeout),
        ] {
            if d.is_zero() {
                return Err(ConfigError::ZeroDuration { field });
            }
        }
        // batch_window MAY be zero (no linger), but not longer than the
        // job timeout.
        if c.batch_window > c.job_timeout {
            return Err(ConfigError::BatchWindowExceedsJobTimeout);
        }
        Ok(c)
    }
}

impl RouterConfig {
    /// Starts a validated builder seeded with the defaults.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder {
            config: RouterConfig::default(),
        }
    }
}

/// Builder for [`RouterConfig`]; `vbp route` flags map 1:1 onto these
/// setters. Shares [`ConfigError`] with the daemon builder.
#[derive(Clone, Debug)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// Bind address for the router's HTTP door (`--http`).
    pub fn http_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.http_addr = addr.into();
        self
    }

    /// Backend daemon HTTP addresses (`--backends host:port,...`).
    pub fn backends(mut self, backends: Vec<String>) -> Self {
        self.config.backends = backends;
        self
    }

    /// Virtual nodes per backend on the hash ring (`--vnodes`).
    pub fn virtual_nodes(mut self, vnodes: usize) -> Self {
        self.config.virtual_nodes = vnodes;
        self
    }

    /// Connection-pool cap per backend (`--pool`).
    pub fn pool_per_backend(mut self, cap: usize) -> Self {
        self.config.pool_per_backend = cap;
        self
    }

    /// Router handler read-timeout / drain-notice bound.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.config.poll_interval = interval;
        self
    }

    /// Socket write timeout toward router clients.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// How long one proxied exchange may wait for its backend.
    pub fn backend_timeout(mut self, timeout: Duration) -> Self {
        self.config.backend_timeout = timeout;
        self
    }

    /// How long a handler waits for a pooled connection before
    /// answering `overloaded`.
    pub fn checkout_timeout(mut self, timeout: Duration) -> Self {
        self.config.checkout_timeout = timeout;
        self
    }

    /// Consecutive connect failures before the breaker opens.
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.config.breaker_threshold = threshold;
        self
    }

    /// How long an open breaker fast-fails before probing again.
    pub fn breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Validates and finishes the configuration.
    pub fn build(self) -> Result<RouterConfig, ConfigError> {
        let c = self.config;
        if c.http_addr.is_empty() {
            return Err(ConfigError::EmptyAddr { field: "http_addr" });
        }
        if c.backends.is_empty() {
            return Err(ConfigError::NoBackends);
        }
        for (i, backend) in c.backends.iter().enumerate() {
            if backend.is_empty() {
                return Err(ConfigError::EmptyAddr { field: "backends" });
            }
            if c.backends[..i].contains(backend) {
                return Err(ConfigError::DuplicateBackend(backend.clone()));
            }
        }
        if c.virtual_nodes == 0 {
            return Err(ConfigError::ZeroVirtualNodes);
        }
        if c.pool_per_backend == 0 {
            return Err(ConfigError::ZeroPoolCap);
        }
        if c.breaker_threshold == 0 {
            return Err(ConfigError::ZeroBreakerThreshold);
        }
        for (field, d) in [
            ("poll_interval", c.poll_interval),
            ("write_timeout", c.write_timeout),
            ("backend_timeout", c.backend_timeout),
            ("checkout_timeout", c.checkout_timeout),
            ("breaker_cooldown", c.breaker_cooldown),
        ] {
            if d.is_zero() {
                return Err(ConfigError::ZeroDuration { field });
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_builder_defaults_validate_and_flags_map() {
        let c = ServiceConfig::builder().build().unwrap();
        assert_eq!(c.addr, ServiceConfig::default().addr);

        let c = ServiceConfig::builder()
            .addr("127.0.0.1:7070")
            .http_addr(Some("127.0.0.1:7071".into()))
            .queue_cap(8)
            .cache_bytes(1 << 20)
            .batch_window(Duration::from_millis(1))
            .shards(4)
            .build()
            .unwrap();
        assert_eq!(c.queue_cap, 8);
        assert_eq!(c.shards, 4);
        assert_eq!(c.http_addr.as_deref(), Some("127.0.0.1:7071"));
    }

    #[test]
    fn service_builder_rejects_each_invalid_field_with_a_typed_error() {
        assert_eq!(
            ServiceConfig::builder().addr("").build().unwrap_err(),
            ConfigError::EmptyAddr { field: "addr" }
        );
        assert_eq!(
            ServiceConfig::builder().queue_cap(0).build().unwrap_err(),
            ConfigError::ZeroQueueCap
        );
        assert_eq!(
            ServiceConfig::builder()
                .max_line_bytes(8)
                .build()
                .unwrap_err(),
            ConfigError::LineCapTooSmall { got: 8 }
        );
        assert_eq!(
            ServiceConfig::builder()
                .poll_interval(Duration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDuration {
                field: "poll_interval"
            }
        );
        assert_eq!(
            ServiceConfig::builder()
                .job_timeout(Duration::from_millis(1))
                .batch_window(Duration::from_secs(2))
                .build()
                .unwrap_err(),
            ConfigError::BatchWindowExceedsJobTimeout
        );
        assert_eq!(
            ServiceConfig::builder()
                .addr("127.0.0.1:7070")
                .http_addr(Some("127.0.0.1:7070".into()))
                .build()
                .unwrap_err(),
            ConfigError::SameBind("127.0.0.1:7070".into())
        );
        // Two ephemeral binds never collide.
        assert!(ServiceConfig::builder()
            .addr("127.0.0.1:0")
            .http_addr(Some("127.0.0.1:0".into()))
            .build()
            .is_ok());
    }

    #[test]
    fn router_builder_validates_backends_and_knobs() {
        assert_eq!(
            RouterConfig::builder().build().unwrap_err(),
            ConfigError::NoBackends
        );
        assert_eq!(
            RouterConfig::builder()
                .backends(vec!["a:1".into(), "b:2".into(), "a:1".into()])
                .build()
                .unwrap_err(),
            ConfigError::DuplicateBackend("a:1".into())
        );
        assert_eq!(
            RouterConfig::builder()
                .backends(vec!["a:1".into()])
                .virtual_nodes(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroVirtualNodes
        );
        assert_eq!(
            RouterConfig::builder()
                .backends(vec!["a:1".into()])
                .pool_per_backend(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroPoolCap
        );
        assert_eq!(
            RouterConfig::builder()
                .backends(vec!["a:1".into()])
                .breaker_threshold(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBreakerThreshold
        );
        let c = RouterConfig::builder()
            .backends(vec!["a:1".into(), "b:2".into()])
            .virtual_nodes(16)
            .pool_per_backend(2)
            .build()
            .unwrap();
        assert_eq!(c.backends.len(), 2);
        assert_eq!(c.virtual_nodes, 16);
    }
}
