//! Consistent-hash ring: deterministic dataset → backend placement.
//!
//! The router shards by *dataset*, because a dataset is the unit of
//! state a daemon accumulates (prepared index, dominance cache, watch
//! subscriptions): every request for one dataset must land on the same
//! backend or the cache-reuse economics of the paper (§IV-B) evaporate
//! at the fleet level.
//!
//! # Placement, exactly
//!
//! The ring is the textbook consistent-hash construction, pinned here
//! so operators can predict (and tests can re-derive) placement:
//!
//! 1. Hash function: **FNV-1a, 64-bit** (offset basis
//!    `0xcbf29ce484222325`, prime `0x100000001b3`) over UTF-8 bytes,
//!    then the **splitmix64 finalizer** (`h ^= h >> 30; h *=
//!    0xbf58476d1ce4e5b9; h ^= h >> 27; h *= 0x94d049bb133111eb;
//!    h ^= h >> 31`). Hand-rolled because the build is offline; both
//!    stages are endian-free and stable across platforms, so a
//!    placement computed on one machine holds on any other. The
//!    finalizer is load-bearing: raw FNV-1a barely avalanches its
//!    trailing bytes, so sequentially-named datasets (`run@300`,
//!    `run@301`, …) hash into one sliver of the ring and pile onto a
//!    single backend — the mixer spreads exactly that common case.
//! 2. Each backend address `a` contributes `virtual_nodes` points at
//!    `place_hash("{a}#{i}")` for `i` in `0..virtual_nodes`.
//! 3. A dataset named `d` hashes to `h = place_hash(d)` (the raw name,
//!    no suffix) and is owned by the backend of the **first vnode
//!    clockwise**: the smallest vnode hash `>= h`, wrapping to the
//!    ring's smallest hash when none is.
//! 4. Vnode hash collisions (astronomically unlikely at 64 bits) are
//!    broken by backend address order, lexicographically — still
//!    deterministic.
//!
//! The ring is **static**: built once from the configured backend list
//! and never rebalanced at runtime. A dead backend keeps its arcs and
//! its datasets answer typed `503 unavailable` until it returns —
//! remapping them to survivors would land requests on daemons that
//! never registered the dataset and (worse) silently fork append
//! streams. Scale-out is a config change and a restart, which is when
//! placement is allowed to move.

/// 64-bit FNV-1a over raw bytes. Stable, dependency-free, and fast
/// enough to hash a dataset name per request without showing up in a
/// profile.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 finalizer: full-width avalanche over a 64-bit state.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The ring's point hash: `mix64(fnv1a64(key))`. FNV-1a alone leaves
/// trailing-byte differences nearly adjacent on the ring (a one-digit
/// name change moves the hash by roughly one multiple of the FNV
/// prime), which defeats vnode spreading for sequentially-named
/// datasets; the finalizer restores uniformity.
pub fn place_hash(key: &str) -> u64 {
    mix64(fnv1a64(key.as_bytes()))
}

/// The static consistent-hash ring over backend addresses.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Backend addresses in configuration order.
    backends: Vec<String>,
    /// `(vnode hash, backend index)`, sorted by hash then index.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring: `virtual_nodes` points per backend, placed at
    /// `fnv1a64("{addr}#{replica}")`. Callers guarantee a non-empty,
    /// duplicate-free backend list and `virtual_nodes >= 1` (the
    /// [`RouterConfigBuilder`](crate::config::RouterConfigBuilder)
    /// enforces both).
    pub fn new(backends: &[String], virtual_nodes: usize) -> HashRing {
        assert!(!backends.is_empty(), "ring needs at least one backend");
        assert!(virtual_nodes >= 1, "ring needs at least one vnode");
        let mut points = Vec::with_capacity(backends.len() * virtual_nodes);
        for (index, addr) in backends.iter().enumerate() {
            for replica in 0..virtual_nodes {
                points.push((place_hash(&format!("{addr}#{replica}")), index));
            }
        }
        // Ties (same vnode hash) break by backend order — deterministic
        // either way.
        points.sort_unstable();
        HashRing {
            backends: backends.to_vec(),
            points,
        }
    }

    /// The backend addresses, in configuration order.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Index (into [`HashRing::backends`]) of the backend owning this
    /// dataset: first vnode clockwise from `fnv1a64(dataset)`.
    pub fn owner_index(&self, dataset: &str) -> usize {
        let h = place_hash(dataset);
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, index) = self.points[if at == self.points.len() { 0 } else { at }];
        index
    }

    /// Address of the backend owning this dataset.
    pub fn owner(&self, dataset: &str) -> &str {
        &self.backends[self.owner_index(dataset)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7071")).collect()
    }

    #[test]
    fn fnv1a64_matches_the_published_vectors() {
        // Reference values for the canonical 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn place_hash_is_pinned() {
        // The documented two-stage construction, frozen: operators
        // re-derive placement from these numbers.
        assert_eq!(place_hash(""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(place_hash("foobar"), 0x404d_a9e3_b740_78c2);
        assert_eq!(place_hash("SW1@600"), 0x4f4c_87a7_7a3b_ba7c);
    }

    #[test]
    fn sequentially_named_datasets_spread_across_backends() {
        // Raw FNV-1a leaves `name@300`..`name@315` nearly adjacent on
        // the ring (trailing bytes barely avalanche), piling all of
        // them onto one backend; the finalizer must spread them.
        let ring = HashRing::new(&addrs(2), 64);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for i in 0..16 {
            *counts
                .entry(ring.owner(&format!("SW1@{}", 300 + i)))
                .or_default() += 1;
        }
        assert_eq!(
            counts.len(),
            2,
            "sequential names all landed on one backend: {counts:?}"
        );
    }

    #[test]
    fn placement_is_deterministic_across_constructions() {
        let a = HashRing::new(&addrs(3), 64);
        let b = HashRing::new(&addrs(3), 64);
        for i in 0..200 {
            let ds = format!("dataset-{i}");
            assert_eq!(a.owner(&ds), b.owner(&ds));
        }
    }

    #[test]
    fn vnodes_spread_ownership_across_backends() {
        let ring = HashRing::new(&addrs(3), 64);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for i in 0..3000 {
            *counts.entry(ring.owner(&format!("ds-{i}"))).or_default() += 1;
        }
        assert_eq!(counts.len(), 3, "every backend owns something");
        // With 64 vnodes the split is coarse but nobody should hold
        // almost everything or almost nothing.
        for (&addr, &n) in &counts {
            assert!(
                (300..=2000).contains(&n),
                "{addr} owns {n} of 3000 — vnode spread is broken"
            );
        }
    }

    #[test]
    fn removing_one_backend_only_remaps_its_own_datasets() {
        // The consistency property that justifies the construction: a
        // 3-backend ring and the 2-backend ring with the third removed
        // agree on every dataset the removed backend did not own.
        let three = HashRing::new(&addrs(3), 64);
        let removed = &addrs(3)[2];
        let two = HashRing::new(&addrs(2), 64);
        let mut moved = 0usize;
        for i in 0..2000 {
            let ds = format!("ds-{i}");
            if three.owner(&ds) == removed {
                moved += 1;
            } else {
                assert_eq!(three.owner(&ds), two.owner(&ds), "{ds} moved needlessly");
            }
        }
        assert!(moved > 0, "the removed backend owned nothing — bad spread");
    }

    #[test]
    fn owner_wraps_past_the_largest_vnode() {
        // A single backend with a single vnode owns everything,
        // including datasets hashing above its vnode point.
        let ring = HashRing::new(&["only:1".to_string()], 1);
        for ds in ["a", "zzz", "SW1@600", "cF_10k_5N@600"] {
            assert_eq!(ring.owner(ds), "only:1");
        }
    }
}
