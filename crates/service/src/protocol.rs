//! The `vbp-service` line protocol.
//!
//! The build environment is offline, so the wire format is deliberately
//! something `std::net::TcpStream` + `BufRead::read_line` can speak with
//! no external crates: UTF-8 lines, space-separated tokens, one request
//! per line, one response line per request (plus an optional `LABELS`
//! continuation line).
//!
//! # Grammar
//!
//! ```text
//! request  = "HELLO"
//!          | "DATASETS"
//!          | "SUBMIT" SP dataset SP eps SP minpts [SP "LABELS"]
//!          | "APPEND" SP dataset SP x1 SP y1 [SP x2 SP y2 …]
//!          | "WATCH" SP dataset SP eps SP minpts
//!          | "STATS"
//!          | "METRICS"
//!          | "SHUTDOWN"
//!          | "QUIT"
//! response = "OK" [SP payload]
//!          | "ERR" SP code SP message
//! push     = "DELTA" SP dataset SP eps SP minpts SP "appended=" k
//!            SP "new=" n SP "absorbed=" m SP "promoted=" p
//!            SP "clusters=" C SP "noise=" N
//! code     = "bad-request" | "unknown-dataset" | "overloaded"
//!          | "draining" | "internal" | "protocol"
//! ```
//!
//! `HELLO` answers `OK vbp-service <protocol-version>`; the version is an
//! integer clients use for capability detection ([`PROTOCOL_VERSION`] —
//! version 2 added `METRICS`, version 3 added `APPEND`/`WATCH`). `SUBMIT`
//! answers `OK clusters=<n> noise=<n> warm=<0|1> reused=<0|1>
//! ms=<float>`; with the `LABELS` flag the next line is `LABELS <n> <l_0>
//! … <l_{n-1}>` in the submitter's point order (noise is `u32::MAX`).
//! `APPEND` inserts a batch of points into a registered dataset (every
//! coordinate must be finite; an odd coordinate count or an empty batch
//! is `ERR bad-request`) and answers `OK appended=<k> total=<n>
//! repaired=<r> dropped=<d> ms=<float>` — appended points take caller
//! ids continuing the dataset's existing numbering. A torn `APPEND` line
//! (connection cut mid-line) mutates nothing: the framer only delivers
//! complete lines. `WATCH` subscribes this connection to cluster deltas
//! of one `(dataset, ε, minpts)` stream; it answers `OK watching
//! <dataset> <eps> <minpts> clusters=<C> noise=<N>` (the census at
//! subscription time) and thereafter the server pushes one `DELTA` line
//! per applied APPEND batch, interleaved between (never inside)
//! request/response exchanges on the connection. `new`/`absorbed` count
//! cluster births and merge-absorptions so `census + Σnew − Σabsorbed`
//! replays to the final cluster count; `promoted` counts points promoted
//! to core status by the batch. `STATS` answers `OK <json>` with a
//! single-line JSON document. `METRICS` answers `OK <n>` followed by `n`
//! continuation lines of Prometheus-style text exposition (counters and
//! `_bucket{le=…}` histograms derived from the same counters `STATS`
//! reports). `SHUTDOWN` flips the server into draining mode: queued and
//! in-flight requests complete, new `SUBMIT`s/`APPEND`s get `ERR
//! draining`.

use std::fmt;

use vbp_geom::Point2;

/// The protocol version `HELLO` advertises. History: 1 = the original
/// verb set; 2 = added `METRICS`; 3 = added `APPEND`/`WATCH` streaming
/// mutation. Clients gate version-dependent calls on the number they saw
/// at connect time.
pub const PROTOCOL_VERSION: u32 = 3;

/// Typed rejection codes carried in `ERR` responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse.
    BadRequest,
    /// `SUBMIT` named a dataset the registry does not hold.
    UnknownDataset,
    /// Admission control: the bounded queue is full.
    Overloaded,
    /// The server is shutting down and no longer admits work.
    Draining,
    /// The request failed inside the engine (should not happen).
    Internal,
    /// The byte stream itself broke framing rules (oversized line,
    /// invalid UTF-8) — the offending line was discarded and the
    /// connection resynchronized at the next newline.
    Protocol,
    /// A proxy (the router) could not reach the backend that owns the
    /// named dataset. Never emitted by a daemon itself; carried in the
    /// router's `503 + Retry-After` answers so callers can tell "the
    /// owner is down" apart from "the owner is overloaded".
    Unavailable,
}

impl ErrorCode {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownDataset => "unknown-dataset",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Unavailable => "unavailable",
        }
    }

    /// Parses a wire token.
    pub fn from_str_token(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-request" => ErrorCode::BadRequest,
            "unknown-dataset" => ErrorCode::UnknownDataset,
            "overloaded" => ErrorCode::Overloaded,
            "draining" => ErrorCode::Draining,
            "internal" => ErrorCode::Internal,
            "protocol" => ErrorCode::Protocol,
            "unavailable" => ErrorCode::Unavailable,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Protocol handshake; answers the service name and version.
    Hello,
    /// Lists registered datasets.
    Datasets,
    /// Clusters one variant on a named dataset.
    Submit {
        /// Registry key.
        dataset: String,
        /// Variant ε.
        eps: f64,
        /// Variant minpts.
        minpts: usize,
        /// Ask for the full label vector as a continuation line.
        labels: bool,
    },
    /// Inserts a batch of points into a registered dataset (protocol
    /// version ≥ 3). Coordinates are interleaved `x y` pairs; every
    /// value must be finite.
    Append {
        /// Registry key.
        dataset: String,
        /// The batch, in append order.
        points: Vec<Point2>,
    },
    /// Subscribes this connection to cluster-delta pushes for one
    /// `(dataset, ε, minpts)` stream (protocol version ≥ 3).
    Watch {
        /// Registry key.
        dataset: String,
        /// Variant ε.
        eps: f64,
        /// Variant minpts.
        minpts: usize,
    },
    /// Service counters as one JSON line.
    Stats,
    /// Prometheus-style text exposition of service counters and latency
    /// histograms (`OK <n>` + `n` continuation lines). Protocol
    /// version ≥ 2.
    Metrics,
    /// Begin graceful drain.
    Shutdown,
    /// Close this connection.
    Quit,
}

impl Request {
    /// Renders the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello => "HELLO".into(),
            Request::Datasets => "DATASETS".into(),
            Request::Submit {
                dataset,
                eps,
                minpts,
                labels,
            } => {
                let mut s = format!("SUBMIT {dataset} {eps} {minpts}");
                if *labels {
                    s.push_str(" LABELS");
                }
                s
            }
            Request::Append { dataset, points } => {
                let mut s = format!("APPEND {dataset}");
                for p in points {
                    s.push_str(&format!(" {} {}", p.x, p.y));
                }
                s
            }
            Request::Watch {
                dataset,
                eps,
                minpts,
            } => format!("WATCH {dataset} {eps} {minpts}"),
            Request::Stats => "STATS".into(),
            Request::Metrics => "METRICS".into(),
            Request::Shutdown => "SHUTDOWN".into(),
            Request::Quit => "QUIT".into(),
        }
    }
}

/// Parses one request line (without its newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or("empty request")?;
    let req = match verb {
        "HELLO" => Request::Hello,
        "DATASETS" => Request::Datasets,
        "STATS" => Request::Stats,
        "METRICS" => Request::Metrics,
        "SHUTDOWN" => Request::Shutdown,
        "QUIT" => Request::Quit,
        "SUBMIT" => {
            let dataset = tokens.next().ok_or("SUBMIT: missing dataset")?.to_string();
            let eps: f64 = tokens
                .next()
                .ok_or("SUBMIT: missing eps")?
                .parse()
                .map_err(|_| "SUBMIT: eps is not a number")?;
            if !eps.is_finite() || eps <= 0.0 {
                return Err("SUBMIT: eps must be finite and positive".into());
            }
            let minpts: usize = tokens
                .next()
                .ok_or("SUBMIT: missing minpts")?
                .parse()
                .map_err(|_| "SUBMIT: minpts is not an integer")?;
            if minpts == 0 {
                return Err("SUBMIT: minpts must be at least 1".into());
            }
            let labels = match tokens.next() {
                None => false,
                Some("LABELS") => true,
                Some(t) => return Err(format!("SUBMIT: unexpected token '{t}'")),
            };
            Request::Submit {
                dataset,
                eps,
                minpts,
                labels,
            }
        }
        "APPEND" => {
            let dataset = tokens.next().ok_or("APPEND: missing dataset")?.to_string();
            let mut coords = Vec::new();
            for t in tokens.by_ref() {
                let c: f64 = t
                    .parse()
                    .map_err(|_| format!("APPEND: '{t}' is not a number"))?;
                if !c.is_finite() {
                    return Err("APPEND: coordinates must be finite".into());
                }
                coords.push(c);
            }
            if coords.is_empty() {
                return Err("APPEND: missing points".into());
            }
            if coords.len() % 2 != 0 {
                return Err("APPEND: odd coordinate count (need x y pairs)".into());
            }
            let points = coords
                .chunks_exact(2)
                .map(|c| Point2::new(c[0], c[1]))
                .collect();
            Request::Append { dataset, points }
        }
        "WATCH" => {
            let dataset = tokens.next().ok_or("WATCH: missing dataset")?.to_string();
            let eps: f64 = tokens
                .next()
                .ok_or("WATCH: missing eps")?
                .parse()
                .map_err(|_| "WATCH: eps is not a number")?;
            if !eps.is_finite() || eps <= 0.0 {
                return Err("WATCH: eps must be finite and positive".into());
            }
            let minpts: usize = tokens
                .next()
                .ok_or("WATCH: missing minpts")?
                .parse()
                .map_err(|_| "WATCH: minpts is not an integer")?;
            if minpts == 0 {
                return Err("WATCH: minpts must be at least 1".into());
            }
            Request::Watch {
                dataset,
                eps,
                minpts,
            }
        }
        other => return Err(format!("unknown verb '{other}'")),
    };
    if tokens.next().is_some() {
        return Err(format!("{verb}: trailing tokens"));
    }
    Ok(req)
}

/// Renders an `ERR` response line.
pub fn err_line(code: ErrorCode, message: &str) -> String {
    // Keep the message single-line so the framing survives.
    let clean: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {code} {clean}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrips() {
        let req = Request::Submit {
            dataset: "SW1@2000".into(),
            eps: 1.5,
            minpts: 4,
            labels: true,
        };
        assert_eq!(req.encode(), "SUBMIT SW1@2000 1.5 4 LABELS");
        assert_eq!(parse_request(&req.encode()).unwrap(), req);
        let plain = Request::Submit {
            dataset: "d".into(),
            eps: 0.25,
            minpts: 10,
            labels: false,
        };
        assert_eq!(parse_request(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn keywords_roundtrip() {
        for req in [
            Request::Hello,
            Request::Datasets,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Quit,
        ] {
            assert_eq!(parse_request(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn append_and_watch_roundtrip() {
        let req = Request::Append {
            dataset: "SW1@2000".into(),
            points: vec![Point2::new(1.5, -2.25), Point2::new(0.0, 1e9)],
        };
        assert_eq!(req.encode(), "APPEND SW1@2000 1.5 -2.25 0 1000000000");
        assert_eq!(parse_request(&req.encode()).unwrap(), req);

        let watch = Request::Watch {
            dataset: "d".into(),
            eps: 0.75,
            minpts: 4,
        };
        assert_eq!(watch.encode(), "WATCH d 0.75 4");
        assert_eq!(parse_request(&watch.encode()).unwrap(), watch);
    }

    #[test]
    fn append_and_watch_reject_malformed_lines() {
        for bad in [
            "APPEND",
            "APPEND d",
            "APPEND d 1.0",
            "APPEND d 1.0 2.0 3.0",
            "APPEND d 1.0 x",
            "APPEND d nan 2.0",
            "APPEND d inf 2.0",
            "APPEND d 1.0 -inf",
            "WATCH",
            "WATCH d",
            "WATCH d 1.0",
            "WATCH d 0 4",
            "WATCH d nan 4",
            "WATCH d 1.0 0",
            "WATCH d 1.0 x",
            "WATCH d 1.0 4 EXTRA",
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn metrics_rejects_arguments() {
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert!(parse_request("METRICS all").is_err());
        assert!(parse_request("METRICS 1").is_err());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "   ",
            "NOPE",
            "SUBMIT",
            "SUBMIT d",
            "SUBMIT d x 4",
            "SUBMIT d 1.0 x",
            "SUBMIT d 0 4",
            "SUBMIT d -1 4",
            "SUBMIT d inf 4",
            "SUBMIT d 1.0 0",
            "SUBMIT d 1.0 4 EXTRA",
            "SUBMIT d 1.0 4 LABELS extra",
            "HELLO there",
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn err_line_stays_single_line() {
        let line = err_line(ErrorCode::Overloaded, "queue\nfull");
        assert_eq!(line, "ERR overloaded queue full");
        assert_eq!(
            ErrorCode::from_str_token("overloaded"),
            Some(ErrorCode::Overloaded)
        );
    }
}
