//! Named datasets with prebuilt indexes.
//!
//! The daemon's whole reason to stay resident is that index construction
//! and `r` tuning are paid once per dataset, not once per request: each
//! registered dataset keeps its points plus a [`PreparedIndex`] (the
//! `T_low`/`T_high` pair of the paper's §IV-A) alive for the process
//! lifetime. Requests then run through
//! [`Engine::run_prepared_warm`](variantdbscan::Engine) against the
//! stored handle.
//!
//! Datasets are addressed by their Table I catalog names
//! ([`DatasetSpec::by_name`]), including `@size` scaling —
//! `"SW2@5000"` is the SW2 distribution at 5 000 points.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use variantdbscan::{Engine, PreparedIndex};
use vbp_data::DatasetSpec;
use vbp_dbscan::suggest_eps;
use vbp_geom::Point2;
use vbp_rtree::PackedRTree;

/// The k-dist knee is estimated at this minpts (the DBSCAN paper's
/// recommended default neighborhood size).
const SUGGEST_MINPTS: usize = 4;

/// One registered dataset.
#[derive(Debug)]
pub struct DatasetEntry {
    /// Registry key (the catalog name it was loaded under).
    pub name: String,
    /// The points, in caller order.
    pub points: Vec<Point2>,
    /// Prebuilt `T_low`/`T_high`, shared by every request.
    pub index: PreparedIndex,
    /// k-dist-estimated representative ε (fed to the auto-tuner and
    /// reported by `DATASETS`).
    pub suggested_eps: Option<f64>,
}

/// Name → dataset map owned by the server.
///
/// Entries are immutable snapshots behind `Arc`s: a streaming APPEND
/// never mutates a live [`DatasetEntry`] — it builds a successor entry
/// and [`Registry::swap`]s the map pointer, so in-flight batches keep
/// clustering against the snapshot they resolved (copy-on-write). The
/// map itself sits behind an `RwLock`; readers (`get`, `list`) never
/// block each other, and the write lock is held only for the pointer
/// swap, never during index construction.
#[derive(Debug, Default)]
pub struct Registry {
    datasets: RwLock<BTreeMap<String, Arc<DatasetEntry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a catalog dataset by name (`"cF_10k_5N"`, `"SW1@2000"`, …)
    /// and prebuilds its indexes with `engine`'s configuration.
    pub fn load(&self, engine: &Engine, name: &str) -> Result<(), String> {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| format!("unknown dataset '{name}' (try `vbp datasets`)"))?;
        let points = spec.generate();
        self.register(engine, name, points)
    }

    /// Registers an arbitrary point set under `name`, prebuilding its
    /// indexes. A representative ε is estimated from the k-dist plot so
    /// [`RChoice::Auto`](variantdbscan::RChoice) tunes against realistic
    /// query radii even before the first request arrives.
    pub fn register(&self, engine: &Engine, name: &str, points: Vec<Point2>) -> Result<(), String> {
        let suggested_eps = representative_eps(&points);
        let index = engine
            .prepare(&points, suggested_eps)
            .map_err(|e| format!("dataset '{name}': {e}"))?;
        self.swap(Arc::new(DatasetEntry {
            name: name.to_string(),
            points,
            index,
            suggested_eps,
        }));
        Ok(())
    }

    /// Installs `entry` under its own name, replacing any previous
    /// snapshot. The write lock is held only for the map operation.
    pub fn swap(&self, entry: Arc<DatasetEntry>) {
        self.datasets
            .write()
            .expect("registry lock poisoned")
            .insert(entry.name.clone(), entry);
    }

    /// Looks a dataset up by registry key, returning the current
    /// snapshot.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.datasets
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// The registered entries in name order — the soak bench uses this
    /// to spread load across every dataset without re-resolving names
    /// per request.
    pub fn entries(&self) -> Vec<Arc<DatasetEntry>> {
        self.datasets
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Registered names with sizes, in name order.
    pub fn list(&self) -> Vec<(String, usize)> {
        self.datasets
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.points.len()))
            .collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.read().expect("registry lock poisoned").len()
    }

    /// Returns `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Estimates a representative ε for auto-tuning: the k-dist knee over a
/// throwaway coarse index, sampled with a stride that caps the estimate
/// at a few thousand queries.
fn representative_eps(points: &[Point2]) -> Option<f64> {
    if points.len() < SUGGEST_MINPTS + 1 {
        return None;
    }
    let (tree, _) = PackedRTree::build(points, 80);
    let stride = (points.len() / 2_000).max(1);
    suggest_eps(&tree, SUGGEST_MINPTS, stride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use variantdbscan::EngineConfig;

    #[test]
    fn load_by_catalog_name_prebuilds_index() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
        let reg = Registry::new();
        reg.load(&engine, "cF_10k_5N@500").unwrap();
        let entry = reg.get("cF_10k_5N@500").unwrap();
        assert_eq!(entry.points.len(), 500);
        assert_eq!(entry.index.len(), 500);
        assert!(entry.suggested_eps.is_some());
        assert_eq!(reg.list(), vec![("cF_10k_5N@500".to_string(), 500)]);
    }

    #[test]
    fn swap_is_copy_on_write() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
        let reg = Registry::new();
        reg.register(
            &engine,
            "s",
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)],
        )
        .unwrap();
        let before = reg.get("s").unwrap();
        let mut points = before.points.clone();
        points.push(Point2::new(2.0, 2.0));
        let (index, _) = engine
            .append_to_prepared(&before.index, &points[2..])
            .unwrap();
        reg.swap(Arc::new(DatasetEntry {
            name: "s".into(),
            points,
            index,
            suggested_eps: before.suggested_eps,
        }));
        // The old snapshot is untouched — in-flight batches holding it
        // keep clustering against a consistent (points, index) pair.
        assert_eq!(before.points.len(), 2);
        assert_eq!(before.index.len(), 2);
        let after = reg.get("s").unwrap();
        assert_eq!(after.points.len(), 3);
        assert_eq!(after.index.len(), 3);
        assert_eq!(reg.list(), vec![("s".to_string(), 3)]);
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
        let reg = Registry::new();
        let err = reg.load(&engine, "no_such_dataset").unwrap_err();
        assert!(err.contains("unknown dataset"));
        assert!(reg.is_empty());
    }
}
