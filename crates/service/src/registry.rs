//! Named datasets with prebuilt indexes.
//!
//! The daemon's whole reason to stay resident is that index construction
//! and `r` tuning are paid once per dataset, not once per request: each
//! registered dataset keeps its points plus a [`PreparedIndex`] (the
//! `T_low`/`T_high` pair of the paper's §IV-A) alive for the process
//! lifetime. Requests then run through
//! [`Engine::run_prepared_warm`](variantdbscan::Engine) against the
//! stored handle.
//!
//! Datasets are addressed by their Table I catalog names
//! ([`DatasetSpec::by_name`]), including `@size` scaling —
//! `"SW2@5000"` is the SW2 distribution at 5 000 points.

use std::collections::BTreeMap;
use std::sync::Arc;

use variantdbscan::{Engine, PreparedIndex};
use vbp_data::DatasetSpec;
use vbp_dbscan::suggest_eps;
use vbp_geom::Point2;
use vbp_rtree::PackedRTree;

/// The k-dist knee is estimated at this minpts (the DBSCAN paper's
/// recommended default neighborhood size).
const SUGGEST_MINPTS: usize = 4;

/// One registered dataset.
#[derive(Debug)]
pub struct DatasetEntry {
    /// Registry key (the catalog name it was loaded under).
    pub name: String,
    /// The points, in caller order.
    pub points: Vec<Point2>,
    /// Prebuilt `T_low`/`T_high`, shared by every request.
    pub index: PreparedIndex,
    /// k-dist-estimated representative ε (fed to the auto-tuner and
    /// reported by `DATASETS`).
    pub suggested_eps: Option<f64>,
}

/// Name → dataset map owned by the server.
#[derive(Debug, Default)]
pub struct Registry {
    datasets: BTreeMap<String, Arc<DatasetEntry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a catalog dataset by name (`"cF_10k_5N"`, `"SW1@2000"`, …)
    /// and prebuilds its indexes with `engine`'s configuration.
    pub fn load(&mut self, engine: &Engine, name: &str) -> Result<(), String> {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| format!("unknown dataset '{name}' (try `vbp datasets`)"))?;
        let points = spec.generate();
        self.register(engine, name, points)
    }

    /// Registers an arbitrary point set under `name`, prebuilding its
    /// indexes. A representative ε is estimated from the k-dist plot so
    /// [`RChoice::Auto`](variantdbscan::RChoice) tunes against realistic
    /// query radii even before the first request arrives.
    pub fn register(
        &mut self,
        engine: &Engine,
        name: &str,
        points: Vec<Point2>,
    ) -> Result<(), String> {
        let suggested_eps = representative_eps(&points);
        let index = engine
            .prepare(&points, suggested_eps)
            .map_err(|e| format!("dataset '{name}': {e}"))?;
        self.datasets.insert(
            name.to_string(),
            Arc::new(DatasetEntry {
                name: name.to_string(),
                points,
                index,
                suggested_eps,
            }),
        );
        Ok(())
    }

    /// Looks a dataset up by registry key.
    pub fn get(&self, name: &str) -> Option<&Arc<DatasetEntry>> {
        self.datasets.get(name)
    }

    /// Iterates over the registered entries in name order — the soak
    /// bench uses this to spread load across every dataset without
    /// re-resolving names per request.
    pub fn entries(&self) -> impl Iterator<Item = &Arc<DatasetEntry>> {
        self.datasets.values()
    }

    /// Registered names with sizes, in name order.
    pub fn list(&self) -> Vec<(String, usize)> {
        self.datasets
            .iter()
            .map(|(k, v)| (k.clone(), v.points.len()))
            .collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Returns `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }
}

/// Estimates a representative ε for auto-tuning: the k-dist knee over a
/// throwaway coarse index, sampled with a stride that caps the estimate
/// at a few thousand queries.
fn representative_eps(points: &[Point2]) -> Option<f64> {
    if points.len() < SUGGEST_MINPTS + 1 {
        return None;
    }
    let (tree, _) = PackedRTree::build(points, 80);
    let stride = (points.len() / 2_000).max(1);
    suggest_eps(&tree, SUGGEST_MINPTS, stride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use variantdbscan::EngineConfig;

    #[test]
    fn load_by_catalog_name_prebuilds_index() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
        let mut reg = Registry::new();
        reg.load(&engine, "cF_10k_5N@500").unwrap();
        let entry = reg.get("cF_10k_5N@500").unwrap();
        assert_eq!(entry.points.len(), 500);
        assert_eq!(entry.index.len(), 500);
        assert!(entry.suggested_eps.is_some());
        assert_eq!(reg.list(), vec![("cF_10k_5N@500".to_string(), 500)]);
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(16));
        let mut reg = Registry::new();
        let err = reg.load(&engine, "no_such_dataset").unwrap_err();
        assert!(err.contains("unknown dataset"));
        assert!(reg.is_empty());
    }
}
