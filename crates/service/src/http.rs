//! The HTTP/1.1 gateway: a second front door to the same daemon.
//!
//! ROADMAP item 1 asks for an HTTP surface so ordinary tooling (curl,
//! load balancers, Prometheus scrapers) can reach the variant engine
//! without speaking the line protocol. The build environment is
//! offline, so this is a hand-rolled `std`-only implementation layered
//! on the same [`Transport`] seam the line protocol uses — which means
//! the whole fault battery (scripted byte schedules, torn writes,
//! mid-stream cuts) drives this handler too.
//!
//! # Framing posture
//!
//! Request framing is bounded everywhere, mirroring [`LineIo`]'s
//! posture (`LineIo` itself is line-oriented and cannot frame a binary
//! body, so the gateway reads the [`Transport`] directly with the same
//! chunked-read/timeout-as-event discipline):
//!
//! - request line over [`MAX_REQUEST_LINE_BYTES`] ⇒ `400` and close;
//! - header block over [`MAX_HEADER_BYTES`] or more than
//!   [`MAX_HEADERS`] headers ⇒ `431` and close;
//! - declared body over [`MAX_BODY_BYTES`] ⇒ `413` and close;
//! - anything unframeable (no CRLF discipline required — bare `LF`
//!   line endings are tolerated) ⇒ a typed status and close, never
//!   unbounded buffering and never a hung handler.
//!
//! Every framing violation counts one `protocol_errors` tick and a
//! `ProtocolError` trace event — the same accounting a garbage line
//! costs the line protocol.
//!
//! # Admission mapping
//!
//! `POST /v1/submit` builds the *same* [`Job`](crate::server) the line
//! protocol's `SUBMIT` builds and funnels it through the same bounded
//! queue and batching dispatcher, so an HTTP submission's labels are
//! identical to the line protocol's for the same `(dataset, ε,
//! minpts)`. The status-code contract:
//!
//! | condition                  | line protocol      | HTTP              |
//! |----------------------------|--------------------|-------------------|
//! | malformed framing          | `ERR protocol`     | `400`/`431`/`413` |
//! | bad JSON / bad params      | `ERR bad-request`  | `400`             |
//! | unknown dataset            | `ERR unknown-dataset` | `404`          |
//! | queue full                 | `ERR overloaded`   | `503` + `Retry-After: 1` |
//! | draining                   | `ERR draining`     | `503`             |
//! | engine failure / timeout   | `ERR internal`     | `500`             |
//!
//! Error bodies are JSON `{"error": <wire token>, "message": …}` using
//! the exact [`ErrorCode`] tokens of the line protocol.
//!
//! `GET /metrics` renders the Prometheus exposition from one
//! [`ServiceStats`](crate::server) copy under the stats lock — the
//! admission invariant (`submitted == completed + failed + in_flight`)
//! holds inside any single scrape, exactly as it does for the line
//! protocol's `METRICS` verb.
//!
//! # JSON
//!
//! Responses are built with the engine's hand-rolled writer
//! ([`JsonObject`]/[`JsonArray`]); requests are parsed with
//! [`parse_json`], a total recursive-descent parser (depth-capped,
//! surrogate-aware, trailing-garbage rejecting) written here because no
//! serialization crate exists in the build environment.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use variantdbscan::{JsonArray, JsonObject, Variant};
use vbp_geom::Point2;

use crate::api::{DatasetService, Health};
use crate::client::{AppendReply, ClientError, SubmitReply};
use crate::protocol::ErrorCode;
use crate::server::{apply_append, Job, Shared};
use crate::transport::Transport;

/// Hard cap on the request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE_BYTES: usize = 4096;
/// Hard cap on the header block (request line excluded), bytes.
pub const MAX_HEADER_BYTES: usize = 8192;
/// Hard cap on the number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on a declared request body, bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Cap on a response body the bundled [`HttpClient`] will accept, bytes.
/// Deliberately larger than [`MAX_BODY_BYTES`]: a `labels=true` submit
/// reply (labels array + embedded RunReport) legitimately exceeds the
/// request-side cap on large datasets.
pub const MAX_CLIENT_RESPONSE_BYTES: usize = 64 << 20;

// ---------------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — the grammar cannot spell NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are kept; lookups
    /// answer the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, `None` for non-objects.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Maximum nesting depth [`parse_json`] accepts; deeper documents are
/// rejected instead of recursing toward a stack overflow.
const MAX_JSON_DEPTH: usize = 64;

/// Parses one complete JSON document. Total: every input answers
/// `Ok` or a descriptive `Err` — no panic, no unbounded recursion
/// (depth-capped at [`MAX_JSON_DEPTH`]), trailing non-whitespace
/// rejected.
pub fn parse_json(bytes: &[u8]) -> Result<JsonValue, String> {
    let s = std::str::from_utf8(bytes).map_err(|_| "body is not valid UTF-8".to_string())?;
    let mut p = JsonParser { s, i: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(value)
}

struct JsonParser<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn bytes(&self) -> &[u8] {
        self.s.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.i))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.s[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(format!("unexpected byte at {}", self.i)),
            None => Err("unexpected end of document".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            // Copy the longest run free of escapes, terminators, and
            // control bytes in one slice (multi-byte UTF-8 included —
            // the input is a validated &str and the scan only stops at
            // ASCII bytes, so the slice boundary is a char boundary).
            while let Some(b) = self.peek() {
                match b {
                    b'"' | b'\\' => break,
                    0x00..=0x1f => return Err(format!("control byte in string at {}", self.i)),
                    _ => self.i += 1,
                }
            }
            out.push_str(&self.s[start..self.i]);
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let Some(b) = self.peek() else {
            return Err("unterminated escape".into());
        };
        self.i += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..=0xDBFF).contains(&hi) {
                    // High surrogate: a \uDC00-\uDFFF low half must
                    // follow to form one scalar value.
                    if self.peek() != Some(b'\\') {
                        return Err("lone high surrogate".into());
                    }
                    self.i += 1;
                    if self.peek() != Some(b'u') {
                        return Err("lone high surrogate".into());
                    }
                    self.i += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err("invalid low surrogate".into());
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or("invalid surrogate pair")?
                } else if (0xDC00..=0xDFFF).contains(&hi) {
                    return Err("lone low surrogate".into());
                } else {
                    char::from_u32(hi).ok_or("invalid \\u escape")?
                };
                out.push(c);
            }
            _ => return Err(format!("bad escape '\\{}'", char::from(b))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // Slice the byte view, not the &str: `i + 4` may land inside a
        // multi-byte character and str indexing would panic there.
        let end = self.i.checked_add(4).filter(|&e| e <= self.s.len());
        let hex: [u8; 4] = match end.and_then(|e| self.bytes().get(self.i..e)) {
            Some(h) => h.try_into().expect("4-byte slice"),
            None => return Err("truncated \\u escape".into()),
        };
        if !hex.iter().all(|b| b.is_ascii_hexdigit()) {
            return Err("non-hex \\u escape".into());
        }
        self.i += 4;
        let hex = std::str::from_utf8(&hex).expect("validated ASCII hex");
        Ok(u32::from_str_radix(hex, 16).expect("validated hex"))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let int_start = self.i;
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if int_digits > 1 && self.bytes()[int_start] == b'0' {
            // JSON forbids leading zeros: "01" is two tokens, not one.
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if self.digits() == 0 {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if self.digits() == 0 {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let n: f64 = self.s[start..self.i]
            .parse()
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("number overflows f64 at byte {start}"));
        }
        Ok(JsonValue::Num(n))
    }

    fn digits(&mut self) -> usize {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        self.i - start
    }
}

// ---------------------------------------------------------------------------
// Request framing
// ---------------------------------------------------------------------------

/// One framed request head.
pub(crate) struct HttpRequest {
    pub(crate) method: String,
    pub(crate) target: String,
    pub(crate) keep_alive: bool,
    pub(crate) expect_continue: bool,
    pub(crate) content_length: usize,
}

/// What reading one request produced.
pub(crate) enum ReadOutcome {
    /// A well-framed head; the body (if any) is read separately.
    Request(HttpRequest),
    /// A framing violation: answer `status` once, then close.
    Malformed { status: u16, message: String },
    /// EOF (clean between requests, or torn mid-head — either way the
    /// connection is over; a partial head is dropped, never parsed).
    Closed,
    /// The stop flag was observed at a read-timeout poll.
    Stopped,
}

/// Bounded HTTP framing over any [`Transport`], plus response writes.
pub(crate) struct HttpIo<T> {
    transport: T,
    /// Received but unconsumed bytes (keep-alive pipelining leftover).
    buf: Vec<u8>,
}

impl<T: Transport> HttpIo<T> {
    pub(crate) fn new(transport: T) -> HttpIo<T> {
        HttpIo {
            transport,
            buf: Vec::new(),
        }
    }

    /// Reads until `self.buf` satisfies `ready` (which answers how many
    /// bytes are consumable) or a cap/EOF/stop intervenes.
    fn fill_until(
        &mut self,
        stop: &AtomicBool,
        ready: impl Fn(&[u8]) -> Option<usize>,
        over_cap: impl Fn(&[u8]) -> Option<(u16, String)>,
    ) -> Result<usize, ReadOutcome> {
        loop {
            if let Some(n) = ready(&self.buf) {
                return Ok(n);
            }
            if let Some((status, message)) = over_cap(&self.buf) {
                return Err(ReadOutcome::Malformed { status, message });
            }
            let mut chunk = [0u8; 4096];
            match self.transport.read(&mut chunk) {
                Ok(0) => return Err(ReadOutcome::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Acquire) {
                        return Err(ReadOutcome::Stopped);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(ReadOutcome::Closed),
            }
        }
    }

    /// Frames one request head. Leading blank lines (a tolerated client
    /// sloppiness after a previous body) are skipped.
    pub(crate) fn read_request(&mut self, stop: &AtomicBool) -> ReadOutcome {
        // Drop blank lines before the request line so `curl`-style
        // keep-alive reuse with stray CRLFs still frames.
        loop {
            match self.buf.first() {
                Some(b'\r') if self.buf.get(1) == Some(&b'\n') => {
                    self.buf.drain(..2);
                }
                Some(b'\n') => {
                    self.buf.drain(..1);
                }
                Some(b'\r') if self.buf.len() == 1 => {
                    // Need one more byte to decide; fall through to the
                    // head read below (a lone CR is never a valid head
                    // start, the parser rejects it).
                    break;
                }
                _ => break,
            }
        }
        let head_end = match self.fill_until(stop, find_head_end, |buf| {
            let line_done = buf.contains(&b'\n');
            if !line_done && buf.len() > MAX_REQUEST_LINE_BYTES + 2 {
                Some((
                    400,
                    format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                ))
            } else if buf.len() > MAX_REQUEST_LINE_BYTES + MAX_HEADER_BYTES {
                Some((
                    431,
                    format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
                ))
            } else {
                None
            }
        }) {
            Ok(n) => n,
            Err(outcome) => {
                // Between requests, a clean EOF is just the peer
                // hanging up; distinguish it from a torn head so the
                // caller does not count it as a violation.
                return outcome;
            }
        };
        let head: Vec<u8> = self.buf.drain(..head_end).collect();
        parse_head(&head)
    }

    /// Reads exactly `len` body bytes (the head's `Content-Length`).
    pub(crate) fn read_body(
        &mut self,
        len: usize,
        stop: &AtomicBool,
    ) -> Result<Vec<u8>, ReadOutcome> {
        let got = self.fill_until(stop, |buf| (buf.len() >= len).then_some(len), |_| None)?;
        Ok(self.buf.drain(..got).collect())
    }

    pub(crate) fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.transport.write_all(bytes)
    }

    pub(crate) fn close(&mut self) {
        self.transport.close();
    }
}

/// Index one past the blank line ending the head, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while let Some(rel) = buf[i..].iter().position(|&b| b == b'\n') {
        let nl = i + rel;
        let mut line_end = nl;
        if line_end > i && buf[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        if i > 0 && line_end == i {
            return Some(nl + 1);
        }
        i = nl + 1;
    }
    None
}

/// Parses a complete head (request line + headers + blank line).
fn parse_head(head: &[u8]) -> ReadOutcome {
    let malformed = |status: u16, _reason: &'static str, message: String| ReadOutcome::Malformed {
        status,
        message,
    };
    let Ok(text) = std::str::from_utf8(head) else {
        return malformed(400, "Bad Request", "head is not valid UTF-8".into());
    };
    let mut lines = text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.is_empty());
    let Some(request_line) = lines.next() else {
        return malformed(400, "Bad Request", "empty request head".into());
    };
    if request_line.len() > MAX_REQUEST_LINE_BYTES {
        return malformed(
            400,
            "Bad Request",
            format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
        );
    }
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return malformed(400, "Bad Request", "malformed request line".into());
    };
    if !version.starts_with("HTTP/1.") {
        return malformed(
            400,
            "Bad Request",
            format!("unsupported protocol '{version}'"),
        );
    }
    // HTTP/1.0 defaults to close, HTTP/1.1 to keep-alive.
    let mut keep_alive = version != "HTTP/1.0";
    let mut expect_continue = false;
    let mut content_length: Option<usize> = None;
    let mut header_count = 0usize;
    let mut header_bytes = 0usize;
    for line in lines {
        header_count += 1;
        header_bytes += line.len() + 2;
        if header_count > MAX_HEADERS {
            return malformed(
                431,
                "Request Header Fields Too Large",
                format!("more than {MAX_HEADERS} header fields"),
            );
        }
        if header_bytes > MAX_HEADER_BYTES {
            return malformed(
                431,
                "Request Header Fields Too Large",
                format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
            );
        }
        let Some((name, value)) = line.split_once(':') else {
            return malformed(400, "Bad Request", format!("malformed header '{line}'"));
        };
        // RFC 9112 §5.1: whitespace between the field name and colon must
        // be rejected — intermediaries disagree on how to parse it, which
        // turns "Content-Length : 5" into a request-smuggling vector.
        if name.ends_with([' ', '\t']) {
            return malformed(400, "Bad Request", format!("malformed header '{line}'"));
        }
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name.is_empty() || name.contains(' ') {
            return malformed(400, "Bad Request", format!("malformed header '{line}'"));
        }
        match name.as_str() {
            "content-length" => {
                // RFC 9110 limits Content-Length to DIGIT only; usize's
                // FromStr also accepts "+5", which a fronting proxy may
                // frame differently (smuggling vector).
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return malformed(400, "Bad Request", format!("bad content-length '{value}'"));
                }
                let Ok(n) = value.parse::<usize>() else {
                    return malformed(400, "Bad Request", format!("bad content-length '{value}'"));
                };
                if content_length.is_some_and(|prev| prev != n) {
                    return malformed(400, "Bad Request", "conflicting content-length".into());
                }
                if n > MAX_BODY_BYTES {
                    return malformed(
                        413,
                        "Content Too Large",
                        format!("body exceeds {MAX_BODY_BYTES} bytes"),
                    );
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                // Chunked bodies are unbounded-by-construction; the
                // gateway only frames declared lengths.
                return malformed(
                    400,
                    "Bad Request",
                    "transfer-encoding is not supported".into(),
                );
            }
            "connection" => {
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => keep_alive = false,
                        "keep-alive" => keep_alive = true,
                        _ => {}
                    }
                }
            }
            "expect" => {
                if value.eq_ignore_ascii_case("100-continue") {
                    expect_continue = true;
                } else {
                    return malformed(400, "Bad Request", format!("unsupported expect '{value}'"));
                }
            }
            _ => {}
        }
    }
    ReadOutcome::Request(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        keep_alive,
        expect_continue,
        content_length: content_length.unwrap_or(0),
    })
}

// ---------------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------------

/// The status code a typed [`ErrorCode`] travels under, the inverse of
/// the admission-mapping table in the module docs. The router reuses
/// this when relaying a backend's typed rejection to its own caller,
/// so a rejection crosses the proxy hop without losing its status.
pub(crate) fn status_for(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::BadRequest | ErrorCode::Protocol => 400,
        ErrorCode::UnknownDataset => 404,
        ErrorCode::Overloaded | ErrorCode::Draining | ErrorCode::Unavailable => 503,
        ErrorCode::Internal => 500,
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one complete response (status line, headers, body) in a
/// single `write_all`. Every response carries an exact
/// `Content-Length` and an explicit `Connection` header, so clients
/// (and the fuzz validator) can frame it without sniffing.
pub(crate) fn write_response<T: Transport>(
    io: &mut HttpIo<T>,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(128);
    let _ = write!(head, "HTTP/1.1 {status} {}\r\n", reason_for(status));
    let _ = write!(head, "Content-Type: {content_type}\r\n");
    let _ = write!(head, "Content-Length: {}\r\n", body.len());
    let _ = write!(
        head,
        "Connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    io.write_all(&out)
}

/// `{"error": <wire token>, "message": …}` with the line protocol's
/// exact [`ErrorCode`] tokens.
pub(crate) fn error_json(code: ErrorCode, message: &str) -> String {
    JsonObject::new()
        .str("error", code.as_str())
        .str("message", message)
        .finish()
}

pub(crate) fn write_error<T: Transport>(
    io: &mut HttpIo<T>,
    status: u16,
    code: ErrorCode,
    message: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write_response(
        io,
        status,
        "application/json",
        error_json(code, message).as_bytes(),
        keep_alive,
        extra_headers,
    )
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

/// Per-connection request loop of the HTTP gateway, over any
/// [`Transport`]. Keep-alive: well-formed exchanges loop; a framing
/// violation answers one typed status and closes; EOF, a fatal I/O
/// error, or the stop flag end the loop.
pub(crate) fn handle_http_connection<T: Transport>(
    mut transport: T,
    shared: &Shared,
    stop: &AtomicBool,
) {
    let _ = transport.set_read_timeout(Some(shared.poll_interval()));
    let mut io = HttpIo::new(transport);
    loop {
        match io.read_request(stop) {
            ReadOutcome::Request(req) => {
                if req.expect_continue
                    && req.content_length > 0
                    && io.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
                {
                    break;
                }
                let body = match io.read_body(req.content_length, stop) {
                    Ok(body) => body,
                    Err(_) => break, // torn mid-body: nothing was admitted
                };
                // A drain observed now makes this exchange the last on
                // the connection, like the line handler's stop poll.
                let keep_alive = req.keep_alive && !stop.load(Ordering::Acquire);
                if respond_http(&mut io, shared, &req, &body, keep_alive).is_err() {
                    break;
                }
                if !keep_alive {
                    break;
                }
            }
            ReadOutcome::Malformed { status, message } => {
                shared.note_protocol_error();
                let _ = write_error(&mut io, status, ErrorCode::Protocol, &message, false, &[]);
                break;
            }
            ReadOutcome::Closed | ReadOutcome::Stopped => break,
        }
    }
    io.close();
}

/// Routes one well-framed request; `Err(())` means the write failed and
/// the connection is over.
fn respond_http<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &Shared,
    req: &HttpRequest,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), ()> {
    let written = match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => {
            let draining = shared.is_draining();
            let body = JsonObject::new()
                .str("status", if draining { "draining" } else { "ok" })
                .boolean("draining", draining)
                .finish();
            write_response(
                io,
                200,
                "application/json",
                body.as_bytes(),
                keep_alive,
                &[],
            )
        }
        ("GET", "/v1/datasets") => {
            let mut datasets = JsonArray::new();
            for (name, size) in shared.registry().list() {
                datasets.push_raw(
                    &JsonObject::new()
                        .str("name", &name)
                        .uint("points", size as u64)
                        .finish(),
                );
            }
            let body = JsonObject::new()
                .raw("datasets", &datasets.finish())
                .finish();
            write_response(
                io,
                200,
                "application/json",
                body.as_bytes(),
                keep_alive,
                &[],
            )
        }
        ("GET", "/v1/stats") => write_response(
            io,
            200,
            "application/json",
            shared.stats_json().as_bytes(),
            keep_alive,
            &[],
        ),
        ("GET", "/metrics") => write_response(
            io,
            200,
            "text/plain; version=0.0.4",
            shared.metrics_text().as_bytes(),
            keep_alive,
            &[],
        ),
        ("POST", "/v1/submit") => respond_submit(io, shared, body, keep_alive),
        ("POST", "/v1/append") => respond_append(io, shared, body, keep_alive),
        // Dataset-scoped read, so a router (or curl) can ask one daemon
        // whether it owns a dataset without listing everything.
        ("GET", target)
            if target
                .strip_prefix("/v1/datasets/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            let name = &target["/v1/datasets/".len()..];
            match shared.registry().get(name) {
                Some(entry) => {
                    let body = JsonObject::new()
                        .str("name", name)
                        .uint("points", entry.points.len() as u64)
                        .finish();
                    write_response(
                        io,
                        200,
                        "application/json",
                        body.as_bytes(),
                        keep_alive,
                        &[],
                    )
                }
                None => {
                    shared.note_unknown_dataset();
                    write_error(
                        io,
                        404,
                        ErrorCode::UnknownDataset,
                        &format!("dataset '{name}' is not registered"),
                        keep_alive,
                        &[],
                    )
                }
            }
        }
        (_, target)
            if target
                .strip_prefix("/v1/datasets/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            write_error(
                io,
                405,
                ErrorCode::BadRequest,
                &format!("{} only supports GET", req.target),
                keep_alive,
                &[("Allow", "GET")],
            )
        }
        (_, "/healthz" | "/v1/datasets" | "/v1/stats" | "/metrics") => write_error(
            io,
            405,
            ErrorCode::BadRequest,
            &format!("{} only supports GET", req.target),
            keep_alive,
            &[("Allow", "GET")],
        ),
        (_, "/v1/submit" | "/v1/append") => write_error(
            io,
            405,
            ErrorCode::BadRequest,
            &format!("{} only supports POST", req.target),
            keep_alive,
            &[("Allow", "POST")],
        ),
        _ => write_error(
            io,
            404,
            ErrorCode::BadRequest,
            &format!("no route for {}", req.target),
            keep_alive,
            &[],
        ),
    };
    written.map_err(|_| ())
}

/// Field-by-field validation of a submit body, mirroring the line
/// protocol's `SUBMIT` parser (including its strictness: unknown
/// fields are rejected the way trailing tokens are).
pub(crate) fn parse_submit_body(body: &[u8]) -> Result<(String, f64, usize, bool), String> {
    let json = parse_json(body)?;
    let fields = json.entries().ok_or("body must be a JSON object")?;
    for (key, _) in fields {
        if !matches!(key.as_str(), "dataset" | "eps" | "minpts" | "labels") {
            return Err(format!("unknown field '{key}'"));
        }
    }
    let dataset = json
        .get("dataset")
        .and_then(JsonValue::as_str)
        .ok_or("'dataset' must be a string")?
        .to_string();
    let eps = json
        .get("eps")
        .and_then(JsonValue::as_f64)
        .ok_or("'eps' must be a number")?;
    if !eps.is_finite() || eps <= 0.0 {
        return Err("'eps' must be finite and positive".into());
    }
    let minpts_raw = json
        .get("minpts")
        .and_then(JsonValue::as_f64)
        .ok_or("'minpts' must be a number")?;
    if minpts_raw.fract() != 0.0 || minpts_raw < 1.0 || minpts_raw > u32::MAX as f64 {
        return Err("'minpts' must be an integer of at least 1".into());
    }
    let labels = match json.get("labels") {
        None => false,
        Some(v) => v.as_bool().ok_or("'labels' must be a boolean")?,
    };
    Ok((dataset, eps, minpts_raw as usize, labels))
}

fn respond_submit<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &Shared,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let (dataset, eps, minpts, labels) = match parse_submit_body(body) {
        Ok(parsed) => parsed,
        Err(msg) => {
            shared.note_bad_request();
            return write_error(io, 400, ErrorCode::BadRequest, &msg, keep_alive, &[]);
        }
    };
    if shared.registry().get(&dataset).is_none() {
        shared.note_unknown_dataset();
        return write_error(
            io,
            404,
            ErrorCode::UnknownDataset,
            &format!("dataset '{dataset}' is not registered"),
            keep_alive,
            &[],
        );
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        dataset,
        variant: Variant::new(eps, minpts),
        want_labels: labels,
        want_report: true,
        reply: tx,
    };
    if let Err(e) = shared.submit(job) {
        let (msg, extra): (&str, &[(&str, &str)]) = match e {
            crate::server::SubmitError::Overloaded => {
                // Hint in the header (authoritative) and as the same
                // `retry-after=N` message token the line protocol uses.
                ("retry-after=1 queue full", &[("Retry-After", "1")])
            }
            crate::server::SubmitError::Draining => ("server is shutting down", &[]),
        };
        return write_error(io, 503, e.code(), msg, keep_alive, extra);
    }
    match rx.recv_timeout(shared.job_timeout()) {
        Ok(Ok(done)) => {
            let mut obj = JsonObject::new()
                .uint("clusters", done.clusters as u64)
                .uint("noise", done.noise as u64)
                .boolean("warm", done.warm)
                .boolean("reused", done.reused)
                .float("ms", done.ms);
            if let Some(labels) = done.labels {
                let mut arr = JsonArray::new();
                for l in labels {
                    arr.push_uint(l as u64);
                }
                obj = obj.raw("labels", &arr.finish());
            }
            if let Some(report) = done.report_json {
                obj = obj.raw("report", &report);
            }
            write_response(
                io,
                200,
                "application/json",
                obj.finish().as_bytes(),
                keep_alive,
                &[],
            )
        }
        Ok(Err(msg)) => write_error(io, 500, ErrorCode::Internal, &msg, keep_alive, &[]),
        Err(mpsc::RecvTimeoutError::Timeout) => write_error(
            io,
            500,
            ErrorCode::Internal,
            "job timed out in the engine",
            keep_alive,
            &[],
        ),
        Err(mpsc::RecvTimeoutError::Disconnected) => write_error(
            io,
            503,
            ErrorCode::Draining,
            "request dropped during shutdown",
            keep_alive,
            &[],
        ),
    }
}

/// Validates an append body, mirroring the line protocol's `APPEND`
/// parser: a non-empty batch of finite `[x, y]` pairs.
pub(crate) fn parse_append_body(body: &[u8]) -> Result<(String, Vec<Point2>), String> {
    let json = parse_json(body)?;
    let fields = json.entries().ok_or("body must be a JSON object")?;
    for (key, _) in fields {
        if !matches!(key.as_str(), "dataset" | "points") {
            return Err(format!("unknown field '{key}'"));
        }
    }
    let dataset = json
        .get("dataset")
        .and_then(JsonValue::as_str)
        .ok_or("'dataset' must be a string")?
        .to_string();
    let items = json
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or("'points' must be an array")?;
    if items.is_empty() {
        return Err("'points' must not be empty".into());
    }
    let mut points = Vec::with_capacity(items.len());
    for item in items {
        let pair = item.as_array().ok_or("each point must be [x, y]")?;
        if pair.len() != 2 {
            return Err("each point must be [x, y]".into());
        }
        let x = pair[0].as_f64().ok_or("coordinates must be numbers")?;
        let y = pair[1].as_f64().ok_or("coordinates must be numbers")?;
        points.push(Point2::new(x, y));
    }
    Ok((dataset, points))
}

fn respond_append<T: Transport>(
    io: &mut HttpIo<T>,
    shared: &Shared,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let (dataset, points) = match parse_append_body(body) {
        Ok(parsed) => parsed,
        Err(msg) => {
            shared.note_bad_request();
            return write_error(io, 400, ErrorCode::BadRequest, &msg, keep_alive, &[]);
        }
    };
    if shared.is_draining() {
        shared.note_append_rejected(None);
        return write_error(
            io,
            503,
            ErrorCode::Draining,
            "server is shutting down",
            keep_alive,
            &[],
        );
    }
    match apply_append(shared, &dataset, &points) {
        Ok(outcome) => {
            shared.note_append_applied(&outcome);
            let body = JsonObject::new()
                .uint("appended", outcome.appended as u64)
                .uint("total", outcome.total as u64)
                .uint("repaired", outcome.repaired as u64)
                .uint("dropped", outcome.dropped as u64)
                .float("ms", outcome.ms)
                .finish();
            write_response(
                io,
                200,
                "application/json",
                body.as_bytes(),
                keep_alive,
                &[],
            )
        }
        Err((code, msg)) => {
            shared.note_append_rejected(Some(code));
            let status = if code == ErrorCode::UnknownDataset {
                404
            } else {
                400
            };
            write_error(io, status, code, &msg, keep_alive, &[])
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking client
// ---------------------------------------------------------------------------

/// A minimal blocking keep-alive HTTP/1.1 client for the gateway, used
/// by the test suites and the `http_load` bench. One client owns one
/// connection; requests on it are sequential.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One parsed HTTP response.
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header fields in response order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics when it is not — gateway responses
    /// always are).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<JsonValue, String> {
        parse_json(&self.body)
    }
}

impl HttpClient {
    /// Connects (with `TCP_NODELAY`) to a gateway address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Bounds how long one response read may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// `GET` with no body.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// `POST` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// One request/response exchange on the kept-alive connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        use std::fmt::Write as _;
        use std::io::Write as _;
        let mut head = String::with_capacity(128);
        let _ = write!(head, "{method} {path} HTTP/1.1\r\nHost: vbp\r\n");
        if let Some(body) = body {
            let _ = write!(
                head,
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            );
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        if let Some(body) = body {
            out.extend_from_slice(body.as_bytes());
        }
        self.stream.write_all(&out)?;
        self.read_response()
    }

    fn fill(&mut self) -> io::Result<()> {
        use std::io::Read as _;
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            )),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let head_end = loop {
            if let Some(n) = find_head_end(&self.buf) {
                break n;
            }
            if self.buf.len() > MAX_REQUEST_LINE_BYTES + MAX_HEADER_BYTES {
                return Err(bad("response head exceeds the cap"));
            }
            self.fill()?;
        };
        let head: Vec<u8> = self.buf.drain(..head_end).collect();
        let text = std::str::from_utf8(&head).map_err(|_| bad("response head is not UTF-8"))?;
        let mut lines = text
            .split('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .filter(|l| !l.is_empty());
        let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(bad("not an HTTP/1.x response"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status code"))?;
        if status == 100 {
            // Interim response (the server acknowledged an Expect this
            // client never sends, but tolerate it): read the real one.
            return self.read_response();
        }
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                if content_length > MAX_CLIENT_RESPONSE_BYTES {
                    return Err(bad("response body exceeds the cap"));
                }
            }
            headers.push((name, value));
        }
        while self.buf.len() < content_length {
            self.fill()?;
        }
        let body: Vec<u8> = self.buf.drain(..content_length).collect();
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

// ---------------------------------------------------------------------------
// Typed client surface (the DatasetService impl)
// ---------------------------------------------------------------------------

fn proto_err(msg: impl Into<String>) -> ClientError {
    ClientError::Protocol(msg.into())
}

fn req_f64(json: &JsonValue, key: &str) -> Result<f64, ClientError> {
    json.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| proto_err(format!("response is missing numeric '{key}'")))
}

fn req_bool(json: &JsonValue, key: &str) -> Result<bool, ClientError> {
    json.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| proto_err(format!("response is missing boolean '{key}'")))
}

/// Maps a non-200 gateway answer onto the shared [`ClientError`]
/// taxonomy: the JSON error body carries the line protocol's exact
/// [`ErrorCode`] token, and an `overloaded` rejection's `Retry-After`
/// header (authoritative, with the `retry-after=N` message token as
/// fallback) becomes the typed backoff hint — the same shape the line
/// client produces, so backoff logic is transport-blind.
fn typed_error(resp: &HttpResponse) -> ClientError {
    let json = match resp.json() {
        Ok(json) => json,
        Err(_) => {
            return proto_err(format!("HTTP {} with a non-JSON error body", resp.status));
        }
    };
    let code = json
        .get("error")
        .and_then(JsonValue::as_str)
        .and_then(ErrorCode::from_str_token);
    let message = json
        .get("message")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    match code {
        Some(ErrorCode::Overloaded) => ClientError::Overloaded {
            retry_after: resp
                .header("retry-after")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs)
                .or_else(|| crate::api::parse_retry_after(&message)),
            message,
        },
        Some(code) => ClientError::Rejected { code, message },
        None => proto_err(format!("HTTP {} with an untyped error body", resp.status)),
    }
}

fn expect_json(resp: HttpResponse) -> Result<JsonValue, ClientError> {
    if resp.status != 200 {
        return Err(typed_error(&resp));
    }
    resp.json()
        .map_err(|e| proto_err(format!("unparseable 200 body: {e}")))
}

fn expect_text(resp: HttpResponse) -> Result<String, ClientError> {
    if resp.status != 200 {
        return Err(typed_error(&resp));
    }
    String::from_utf8(resp.body).map_err(|_| proto_err("200 body is not UTF-8"))
}

impl DatasetService for HttpClient {
    fn submit(
        &mut self,
        dataset: &str,
        eps: f64,
        minpts: usize,
        want_labels: bool,
    ) -> Result<SubmitReply, ClientError> {
        let mut body = JsonObject::new()
            .str("dataset", dataset)
            .float("eps", eps)
            .uint("minpts", minpts as u64);
        if want_labels {
            body = body.boolean("labels", true);
        }
        let resp = self
            .post("/v1/submit", &body.finish())
            .map_err(ClientError::Io)?;
        let json = expect_json(resp)?;
        let labels = match json.get("labels") {
            None => None,
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| proto_err("'labels' is not an array"))?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let n = item
                        .as_f64()
                        .ok_or_else(|| proto_err("label is not a number"))?;
                    out.push(n as u32);
                }
                Some(out)
            }
        };
        Ok(SubmitReply {
            clusters: req_f64(&json, "clusters")? as usize,
            noise: req_f64(&json, "noise")? as usize,
            warm: req_bool(&json, "warm")?,
            reused: req_bool(&json, "reused")?,
            ms: req_f64(&json, "ms")?,
            labels,
        })
    }

    fn append(&mut self, dataset: &str, points: &[Point2]) -> Result<AppendReply, ClientError> {
        let mut arr = JsonArray::new();
        for p in points {
            let mut pair = JsonArray::new();
            pair.push_float(p.x);
            pair.push_float(p.y);
            arr.push_raw(&pair.finish());
        }
        let body = JsonObject::new()
            .str("dataset", dataset)
            .raw("points", &arr.finish())
            .finish();
        let resp = self.post("/v1/append", &body).map_err(ClientError::Io)?;
        let json = expect_json(resp)?;
        Ok(AppendReply {
            appended: req_f64(&json, "appended")? as usize,
            total: req_f64(&json, "total")? as usize,
            repaired: req_f64(&json, "repaired")? as usize,
            dropped: req_f64(&json, "dropped")? as usize,
            ms: req_f64(&json, "ms")?,
        })
    }

    fn datasets(&mut self) -> Result<Vec<(String, usize)>, ClientError> {
        let resp = self.get("/v1/datasets").map_err(ClientError::Io)?;
        let json = expect_json(resp)?;
        let items = json
            .get("datasets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| proto_err("'datasets' is not an array"))?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| proto_err("dataset entry is missing 'name'"))?;
            let points = req_f64(item, "points")? as usize;
            out.push((name.to_string(), points));
        }
        Ok(out)
    }

    fn stats_json(&mut self) -> Result<String, ClientError> {
        expect_text(self.get("/v1/stats").map_err(ClientError::Io)?)
    }

    fn metrics(&mut self) -> Result<String, ClientError> {
        expect_text(self.get("/metrics").map_err(ClientError::Io)?)
    }

    fn healthz(&mut self) -> Result<Health, ClientError> {
        let resp = self.get("/healthz").map_err(ClientError::Io)?;
        let json = expect_json(resp)?;
        let draining = req_bool(&json, "draining")?;
        Ok(Health {
            accepting: !draining,
            draining,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_header_becomes_the_typed_backoff_hint() {
        // Header present: authoritative, even with no message token.
        let resp = HttpResponse {
            status: 503,
            headers: vec![("retry-after".into(), "7".into())],
            body: error_json(ErrorCode::Overloaded, "queue full").into_bytes(),
        };
        match typed_error(&resp) {
            ClientError::Overloaded {
                retry_after,
                message,
            } => {
                assert_eq!(retry_after, Some(Duration::from_secs(7)));
                assert_eq!(message, "queue full");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // No header: the message token is the fallback.
        let resp = HttpResponse {
            status: 503,
            headers: vec![],
            body: error_json(ErrorCode::Overloaded, "retry-after=2 queue full").into_bytes(),
        };
        assert_eq!(
            typed_error(&resp).retry_after(),
            Some(Duration::from_secs(2))
        );
        // Non-overloaded codes keep the plain Rejected shape.
        let resp = HttpResponse {
            status: 503,
            headers: vec![("retry-after".into(), "7".into())],
            body: error_json(ErrorCode::Draining, "server is shutting down").into_bytes(),
        };
        match typed_error(&resp) {
            ClientError::Rejected { code, .. } => assert_eq!(code, ErrorCode::Draining),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn status_for_inverts_the_admission_mapping() {
        for (code, status) in [
            (ErrorCode::BadRequest, 400),
            (ErrorCode::Protocol, 400),
            (ErrorCode::UnknownDataset, 404),
            (ErrorCode::Overloaded, 503),
            (ErrorCode::Draining, 503),
            (ErrorCode::Unavailable, 503),
            (ErrorCode::Internal, 500),
        ] {
            assert_eq!(status_for(code), status, "{code}");
        }
    }

    #[test]
    fn json_parser_round_trips_scalars_and_containers() {
        assert_eq!(parse_json(b"null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(b"true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json(b"-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            parse_json(br#""a\nb\u0041\ud83d\ude00""#).unwrap(),
            JsonValue::Str("a\nbA\u{1F600}".into())
        );
        let doc = parse_json(br#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap(),
            &[JsonValue::Num(1.0), JsonValue::Num(2.0)]
        );
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            &b""[..],
            b"nul",
            b"[1,]",
            b"{\"a\":}",
            b"{\"a\" 1}",
            b"\"unterminated",
            b"\"\\u12\"",
            b"\"\\ud800\"",
            b"\"\\udc00\"",
            // `\u` + 1 hex digit + a multi-byte char: hex4 must not slice
            // the &str at a non-char boundary (regression: panicked).
            "\"\\u0\u{10348}\"".as_bytes(),
            "\"\\u\u{e9}99\"".as_bytes(),
            "\"\\ud800\\u\u{10348}1\"".as_bytes(),
            b"01",
            b"1.",
            b".5",
            b"+1",
            b"1e",
            b"--1",
            b"1e999",
            b"{} trailing",
            b"\xff\xfe",
            b"\"ctrl\x01char\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        // Depth cap: 100 nested arrays reject, shallow ones parse.
        let deep: Vec<u8> = b"["
            .repeat(100)
            .into_iter()
            .chain(b"]".repeat(100))
            .collect();
        assert!(parse_json(&deep).is_err());
        let shallow: Vec<u8> = b"[".repeat(10).into_iter().chain(b"]".repeat(10)).collect();
        assert!(parse_json(&shallow).is_ok());
    }

    #[test]
    fn json_number_grammar_cannot_spell_non_finite() {
        for bad in [&b"NaN"[..], b"Infinity", b"-Infinity", b"inf", b"nan"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn head_end_detection_handles_both_terminators() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\nA: b\n\r\n"), Some(22));
    }

    #[test]
    fn parse_head_extracts_framing_fields() {
        let head = b"POST /v1/submit HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\nConnection: close\r\n\r\n";
        match parse_head(head) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.target, "/v1/submit");
                assert_eq!(req.content_length, 12);
                assert!(!req.keep_alive);
                assert!(!req.expect_continue);
            }
            _ => panic!("well-formed head rejected"),
        }
    }

    #[test]
    fn parse_head_rejects_violations_with_typed_statuses() {
        let cases: Vec<(Vec<u8>, u16)> = vec![
            (b"GARBAGE\r\n\r\n".to_vec(), 400),
            (b"GET /x SPDY/3\r\n\r\n".to_vec(), 400),
            (b"GET / HTTP/1.1\r\nbad header line\r\n\r\n".to_vec(), 400),
            (
                b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n".to_vec(),
                400,
            ),
            // RFC 9110: Content-Length is DIGIT only — no sign.
            (
                b"POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\n".to_vec(),
                400,
            ),
            // RFC 9112 §5.1: no whitespace between field name and colon.
            (
                b"POST / HTTP/1.1\r\nContent-Length : 5\r\n\r\n".to_vec(),
                400,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n".to_vec(),
                400,
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
                400,
            ),
            (
                format!(
                    "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .into_bytes(),
                413,
            ),
            (
                {
                    let mut head = b"GET / HTTP/1.1\r\n".to_vec();
                    for i in 0..(MAX_HEADERS + 1) {
                        head.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
                    }
                    head.extend_from_slice(b"\r\n");
                    head
                },
                431,
            ),
        ];
        for (head, want) in cases {
            match parse_head(&head) {
                ReadOutcome::Malformed { status, .. } => {
                    assert_eq!(status, want, "head {:?}", String::from_utf8_lossy(&head));
                }
                _ => panic!("accepted {:?}", String::from_utf8_lossy(&head)),
            }
        }
    }

    #[test]
    fn submit_body_parser_mirrors_line_protocol_strictness() {
        let ok = parse_submit_body(br#"{"dataset":"d","eps":1.5,"minpts":4}"#).unwrap();
        assert_eq!(ok, ("d".into(), 1.5, 4, false));
        let with_labels =
            parse_submit_body(br#"{"dataset":"d","eps":0.5,"minpts":1,"labels":true}"#).unwrap();
        assert!(with_labels.3);
        for bad in [
            &br#"{"eps":1.0,"minpts":4}"#[..],
            br#"{"dataset":"d","minpts":4}"#,
            br#"{"dataset":"d","eps":0,"minpts":4}"#,
            br#"{"dataset":"d","eps":-1,"minpts":4}"#,
            br#"{"dataset":"d","eps":1.0,"minpts":0}"#,
            br#"{"dataset":"d","eps":1.0,"minpts":2.5}"#,
            br#"{"dataset":"d","eps":1.0,"minpts":4,"extra":1}"#,
            br#"{"dataset":"d","eps":1.0,"minpts":4,"labels":"yes"}"#,
            br#"[1,2,3]"#,
            br#"not json"#,
        ] {
            assert!(parse_submit_body(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn append_body_parser_requires_finite_pairs() {
        let (dataset, points) =
            parse_append_body(br#"{"dataset":"d","points":[[1.0,2.0],[3,4]]}"#).unwrap();
        assert_eq!(dataset, "d");
        assert_eq!(points, vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)]);
        for bad in [
            &br#"{"dataset":"d","points":[]}"#[..],
            br#"{"dataset":"d","points":[[1.0]]}"#,
            br#"{"dataset":"d","points":[[1.0,2.0,3.0]]}"#,
            br#"{"dataset":"d","points":[["a","b"]]}"#,
            br#"{"dataset":"d"}"#,
            br#"{"points":[[1,2]]}"#,
        ] {
            assert!(parse_append_body(bad).is_err(), "accepted {bad:?}");
        }
    }
}
