//! The transport-agnostic client API: one trait, two wire formats.
//!
//! PR 3 grew a line-protocol [`Client`](crate::client::Client) and PR 9
//! an [`HttpClient`](crate::http::HttpClient) with overlapping but
//! incompatible surfaces: the line client answered typed replies
//! ([`SubmitReply`]/[`AppendReply`]/[`ClientError`]) while the HTTP
//! client answered raw [`HttpResponse`](crate::http::HttpResponse)s the
//! caller had to status-check and JSON-pick by hand. Anything written
//! against one could not drive the other — and the router, which is
//! simultaneously an HTTP server and an N-way client of backend
//! daemons, needs exactly one backend abstraction.
//!
//! [`DatasetService`] is that abstraction: the six verbs every daemon
//! door answers, with the *same* typed reply model and the same typed
//! error model on both transports. `Client` implements it over the line
//! protocol, `HttpClient` over HTTP/1.1; the workload probe
//! ([`crate::workload`]), the benches, and the router's backend pool
//! ([`crate::pool`]) are all written against the trait, so swapping the
//! wire under any of them is a one-line change.
//!
//! The error contract is shared too: admission backpressure surfaces as
//! [`ClientError::Overloaded`] with the server's parsed `Retry-After`
//! hint on both transports (the HTTP header, or the line protocol's
//! `retry-after=N` message token), so backoff logic written once works
//! against either door.

use vbp_geom::Point2;

use crate::client::{AppendReply, ClientError, SubmitReply};

/// One liveness probe answer, shared by both transports.
///
/// `reachable` is implied by `Ok(_)` (an unreachable daemon answers
/// `Err`); the flag that matters is `draining` — a draining daemon
/// still answers reads but admits no new work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Health {
    /// The daemon is still admitting work.
    pub accepting: bool,
    /// The daemon is shutting down (reads still answered).
    pub draining: bool,
}

/// The transport-agnostic surface of one `vbp-service` daemon.
///
/// Implemented by [`Client`](crate::client::Client) (line protocol) and
/// [`HttpClient`](crate::http::HttpClient) (HTTP/1.1 gateway) with
/// identical semantics: same typed replies, same [`ClientError`]
/// taxonomy, same [`ErrorCode`](crate::protocol::ErrorCode) tokens on
/// rejection. Methods take `&mut self` because both implementations own
/// one sequential connection.
pub trait DatasetService {
    /// Clusters one `(ε, minpts)` variant on a named dataset.
    fn submit(
        &mut self,
        dataset: &str,
        eps: f64,
        minpts: usize,
        want_labels: bool,
    ) -> Result<SubmitReply, ClientError>;

    /// Streams a batch of points into a registered dataset.
    fn append(&mut self, dataset: &str, points: &[Point2]) -> Result<AppendReply, ClientError>;

    /// Lists registered datasets as `(name, points)` pairs.
    fn datasets(&mut self) -> Result<Vec<(String, usize)>, ClientError>;

    /// The service counters as one JSON document.
    fn stats_json(&mut self) -> Result<String, ClientError>;

    /// The Prometheus-style text exposition.
    fn metrics(&mut self) -> Result<String, ClientError>;

    /// Liveness probe: is the daemon answering, and is it draining?
    fn healthz(&mut self) -> Result<Health, ClientError>;
}

/// Parses the typed backoff hint out of an overloaded rejection.
///
/// Both doors spell the hint the same way in their message text — a
/// `retry-after=N` token (whole seconds) — and the HTTP door *also*
/// sends the standard `Retry-After: N` header; callers of this helper
/// pass whichever text they have. Absent or unparseable hints answer
/// `None` (back off with your own policy), never an error: the hint is
/// advisory.
pub fn parse_retry_after(message: &str) -> Option<std::time::Duration> {
    message.split_ascii_whitespace().find_map(|tok| {
        tok.strip_prefix("retry-after=")?
            .parse::<u64>()
            .ok()
            .map(std::time::Duration::from_secs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn retry_after_token_parses_from_any_position() {
        assert_eq!(
            parse_retry_after("retry-after=1 queue full"),
            Some(Duration::from_secs(1))
        );
        assert_eq!(
            parse_retry_after("queue full retry-after=30"),
            Some(Duration::from_secs(30))
        );
        assert_eq!(parse_retry_after("retry-after=0"), Some(Duration::ZERO));
    }

    #[test]
    fn missing_or_malformed_hint_is_none_not_an_error() {
        for msg in [
            "queue full",
            "",
            "retry-after=",
            "retry-after=soon",
            "retry-after=-1",
            "retry-after=1.5",
            "Retry-After=1", // the token is lowercase on the wire
        ] {
            assert_eq!(parse_retry_after(msg), None, "{msg:?}");
        }
    }
}
