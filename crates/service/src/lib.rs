//! **vbp-service** — a long-running VariantDBSCAN daemon.
//!
//! The paper's core result (§IV-B) is that a variant `(ε, minpts)` is
//! answered faster by *reusing* a dominated variant's completed clusters
//! than by clustering from scratch — but a batch engine forgets
//! everything between runs. This crate keeps the investment alive:
//!
//! - [`registry`] — named datasets with their
//!   [`PreparedIndex`](variantdbscan::PreparedIndex)es built once at
//!   startup (`T_low`/`T_high` and the tuned `r` of §IV-A);
//! - [`cache`] — completed [`ClusterResult`](vbp_dbscan::ClusterResult)s
//!   kept across runs, searched by parameter dominance, bounded by an
//!   LRU byte budget;
//! - [`server`] — a `std::net`-only TCP daemon with a bounded admission
//!   queue (typed `Overloaded` backpressure), a dispatcher that batches
//!   same-dataset requests into single engine runs seeded from the
//!   cache, and graceful drain on shutdown;
//! - [`protocol`] / [`client`] — the line protocol and a blocking
//!   client;
//! - [`http`] — an HTTP/1.1 gateway over the same [`Transport`] seam,
//!   queue, and dispatcher (bounded framing with typed `400`/`431`
//!   responses, JSON submit/append, Prometheus `/metrics` under the
//!   stats lock), plus a blocking keep-alive [`HttpClient`];
//! - [`transport`] / [`fault`] — the connection I/O seam (bounded line
//!   framing over a [`Transport`] trait) and its deterministic
//!   fault-injecting test implementations (seeded torn writes, scripted
//!   byte schedules, mid-stream cuts);
//! - [`store`] — persistent warm state: checksummed on-disk snapshots
//!   of every prepared index and the surviving cache entries, written
//!   on graceful drain and restored on boot without rebuilding
//!   anything;
//! - [`workload`] — the cold-vs-warm throughput probe used by
//!   `vbp bench-service` and the `service_throughput` bench;
//! - [`api`] — the transport-agnostic [`DatasetService`] trait both
//!   clients implement, so everything above the wire is written once;
//! - [`config`] — validated builders for [`ServiceConfig`] and
//!   [`RouterConfig`] with typed [`ConfigError`]s;
//! - [`ring`] / [`pool`] / [`router`] — many-daemon scale-out: a
//!   consistent-hash ring over backend daemons, bounded per-backend
//!   connection pools with a connect-failure breaker, and the
//!   `vbp route` HTTP front door that proxies dataset-scoped traffic
//!   to the owning backend and merges fan-out reads.
//!
//! Everything is plain `std` — the build environment is offline, so no
//! async runtime, serialization crate, or protocol framework is used.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod config;
pub mod fault;
pub mod http;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod ring;
pub mod router;
pub mod server;
pub mod store;
pub mod transport;
pub mod workload;

pub use api::{parse_retry_after, DatasetService, Health};
pub use cache::{result_bytes, CacheHit, CacheStats, DominanceCache, RepairStats};
pub use client::{AppendReply, Client, ClientError, Delta, SubmitReply, WatchReply};
pub use config::{ConfigError, RouterConfigBuilder, ServiceConfigBuilder};
pub use fault::{FaultPlan, FaultTransport, MemTransport, Step};
pub use http::{parse_json, HttpClient, HttpResponse, JsonValue};
pub use pool::{BackendCounters, BackendPool, PoolError};
pub use protocol::{parse_request, ErrorCode, Request};
pub use registry::{DatasetEntry, Registry};
pub use ring::HashRing;
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerHandle, ServiceConfig, SubmitError};
pub use store::{
    boot_from_store, dataset_path, persist_all, persist_dataset, restore_dataset, verify_dir,
    RestoredDataset, StoreBoot, STORE_EXT,
};
pub use transport::{LineEvent, LineIo, TcpTransport, Transport};
#[allow(deprecated)]
pub use workload::run_cold_warm;
pub use workload::{run_cold_warm_on, ColdWarmReport};
