//! The daemon: accept loop, per-connection handlers, bounded admission
//! queue, and the batching dispatcher that turns queued requests into
//! engine runs.
//!
//! # Threading model
//!
//! ```text
//! accept thread ──spawns──▶ handler threads (one per connection)
//!                                │  submit()          ▲ reply mpsc
//!                                ▼                    │
//!                        bounded VecDeque ──▶ dispatcher thread
//!                                                 │
//!                                                 ▼
//!                               Engine::execute (batch RunRequest)
//! ```
//!
//! Handlers parse lines and *admit* work; they never touch the engine.
//! Admission is a bounded queue: when it is full the submit is rejected
//! with a typed [`ErrorCode::Overloaded`] — backpressure reaches the
//! client as an `ERR` line instead of unbounded buffering.
//!
//! The dispatcher pops the oldest request, waits one *batch window* for
//! compatible work to pile up, then drains every queued request for the
//! same dataset into a single [`VariantSet`] run. Cache lookups seed the
//! run with warm sources; every fresh result is inserted back.
//!
//! # Fault posture
//!
//! Connections are handled through the [`Transport`] seam with bounded
//! line framing ([`LineIo`]): an oversized or non-UTF-8 line costs the
//! client one `ERR protocol` and a resync, never unbounded buffering or
//! a dead handler. A panic inside a clustering job is contained at the
//! engine boundary ([`Engine::execute`] answers a typed
//! [`EngineError::JobPanic`]): the dispatcher
//! isolates the batch, retries each distinct variant alone, fails only
//! the poisoned jobs with `ERR internal`, and keeps serving. Every
//! admitted job is accounted exactly once — `submitted` always equals
//! `completed + failed + in_flight` under the stats lock, which the
//! chaos suite asserts at arbitrary observation points.
//!
//! # Graceful drain
//!
//! `SHUTDOWN` (or [`ServerHandle::shutdown`]) flips the draining flag:
//! new `SUBMIT`s are rejected with `ERR draining`, the dispatcher
//! finishes everything already queued, the accept loop is woken by a
//! self-connection and exits, and handlers notice the stop flag at their
//! next read-timeout poll. Every thread join is therefore bounded by the
//! poll interval plus the time of the in-flight engine run.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use variantdbscan::{
    Engine, EngineError, JsonObject, Metrics, RunRequest, Sharding, TraceEvent, Variant,
    VariantSet, WarmSource,
};

use crate::cache::DominanceCache;
use crate::protocol::{err_line, parse_request, ErrorCode, Request, PROTOCOL_VERSION};
use crate::registry::Registry;
use crate::transport::{LineEvent, LineIo, TcpTransport, Transport};

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Admission queue capacity (requests, not bytes).
    pub queue_cap: usize,
    /// Reuse cache budget in bytes; 0 disables the cache.
    pub cache_bytes: usize,
    /// How long the dispatcher lingers after the first request to batch
    /// compatible ones.
    pub batch_window: Duration,
    /// Handler read-timeout; bounds how fast connections notice a drain.
    pub poll_interval: Duration,
    /// Hard cap on one request line (bytes, newline excluded); longer
    /// lines cost `ERR protocol` and are discarded.
    pub max_line_bytes: usize,
    /// How long a handler waits for its job's reply before giving up
    /// with `ERR internal`. Contained panics answer far faster; this
    /// only bounds a genuinely wedged engine.
    pub job_timeout: Duration,
    /// Socket write timeout, so a client that stops draining its
    /// receive buffer cannot wedge a handler mid-reply forever.
    pub write_timeout: Duration,
    /// Intra-variant shards for wide datasets; `0` or `1` keeps the
    /// engine's default variant-parallel placement. When `> 1`, every
    /// engine run opts in via [`RunRequest::sharding`] with this shard
    /// count and the default width gate, and the shard counters show up
    /// non-zero in `METRICS`.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_cap: 256,
            cache_bytes: 64 << 20,
            batch_window: Duration::from_millis(2),
            poll_interval: Duration::from_millis(50),
            max_line_bytes: 8192,
            job_timeout: Duration::from_secs(600),
            write_timeout: Duration::from_secs(30),
            shards: 0,
        }
    }
}

/// Why a submit was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue full — try again later.
    Overloaded,
    /// Server is shutting down.
    Draining,
}

impl SubmitError {
    fn code(self) -> ErrorCode {
        match self {
            SubmitError::Overloaded => ErrorCode::Overloaded,
            SubmitError::Draining => ErrorCode::Draining,
        }
    }
}

/// One admitted unit of work.
struct Job {
    dataset: String,
    variant: Variant,
    want_labels: bool,
    reply: mpsc::Sender<Result<JobDone, String>>,
}

/// A finished job, as the handler reports it to the client.
struct JobDone {
    clusters: usize,
    noise: usize,
    warm: bool,
    reused: bool,
    ms: f64,
    labels: Option<Vec<u32>>,
}

/// Service-level counters (the engine and cache keep their own).
///
/// Invariant, held at every instant the lock is free: `submitted ==
/// completed + failed + in_flight`. Admission increments `submitted`
/// and `in_flight` together; terminal accounting moves a job from
/// `in_flight` to exactly one of `completed`/`failed` under the same
/// lock.
#[derive(Clone, Copy, Debug, Default)]
struct ServiceStats {
    submitted: u64,
    completed: u64,
    failed: u64,
    in_flight: u64,
    rejected_overloaded: u64,
    rejected_draining: u64,
    unknown_dataset: u64,
    bad_request: u64,
    protocol_errors: u64,
    batches: u64,
    max_batch: usize,
    engine_warm_hits: u64,
    engine_in_run_reused: u64,
    engine_scratch: u64,
    engine_busy: Duration,
}

struct Shared {
    engine: Engine,
    registry: Registry,
    cache: Mutex<DominanceCache>,
    cache_enabled: bool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_cap: usize,
    batch_window: Duration,
    poll_interval: Duration,
    max_line_bytes: usize,
    job_timeout: Duration,
    write_timeout: Duration,
    sharding: Option<Sharding>,
    draining: AtomicBool,
    stats: Mutex<ServiceStats>,
    metrics: Metrics,
    started: Instant,
}

impl Shared {
    /// Admission control: reject when draining or full, enqueue and wake
    /// the dispatcher otherwise.
    fn submit(&self, job: Job) -> Result<(), SubmitError> {
        if self.draining.load(Ordering::Acquire) {
            self.stats.lock().unwrap().rejected_draining += 1;
            return Err(SubmitError::Draining);
        }
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.queue_cap {
            drop(q);
            self.stats.lock().unwrap().rejected_overloaded += 1;
            return Err(SubmitError::Overloaded);
        }
        q.push_back(job);
        drop(q);
        {
            let mut s = self.stats.lock().unwrap();
            s.submitted += 1;
            s.in_flight += 1;
        }
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Moves `n` jobs from in-flight to a terminal counter; the single
    /// place the stats invariant is allowed to change on the exit side.
    fn account_terminal(&self, n: u64, failed: bool) {
        let mut s = self.stats.lock().unwrap();
        if failed {
            s.failed += n;
        } else {
            s.completed += n;
        }
        s.in_flight = s.in_flight.saturating_sub(n);
    }

    fn stats_json(&self) -> String {
        let s = *self.stats.lock().unwrap();
        let cache = self.cache.lock().unwrap().stats();
        let mut datasets = variantdbscan::JsonArray::new();
        for (name, size) in self.registry.list() {
            datasets.push_raw(
                &JsonObject::new()
                    .str("name", &name)
                    .uint("points", size as u64)
                    .finish(),
            );
        }
        JsonObject::new()
            .uint("uptime_ms", self.started.elapsed().as_millis() as u64)
            .boolean("draining", self.draining.load(Ordering::Acquire))
            .uint("submitted", s.submitted)
            .uint("completed", s.completed)
            .uint("failed", s.failed)
            .uint("in_flight", s.in_flight)
            .uint("rejected_overloaded", s.rejected_overloaded)
            .uint("rejected_draining", s.rejected_draining)
            .uint("unknown_dataset", s.unknown_dataset)
            .uint("bad_request", s.bad_request)
            .uint("protocol_errors", s.protocol_errors)
            .uint("batches", s.batches)
            .uint("max_batch", s.max_batch as u64)
            .uint("reuse_hits", s.engine_warm_hits)
            .uint("in_run_reused", s.engine_in_run_reused)
            .uint("from_scratch", s.engine_scratch)
            .float("engine_busy_ms", s.engine_busy.as_secs_f64() * 1e3)
            .raw("cache", &cache.to_json())
            .raw("datasets", &datasets.finish())
            .finish()
    }

    /// Prometheus-style text exposition of the service counters, cache
    /// counters, and per-phase latency histograms, one metric per line.
    ///
    /// The service counters are rendered from a *single copy* of the same
    /// [`ServiceStats`] that [`Shared::stats_json`] serializes, taken
    /// under the stats lock — so the exposition can never structurally
    /// disagree with `STATS`, and the admission invariant (`submitted ==
    /// completed + failed + in_flight`) holds inside any one exposition.
    fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let s = *self.stats.lock().unwrap();
        let cache = self.cache.lock().unwrap().stats();
        let m = self.metrics.snapshot();
        let mut out = String::with_capacity(4096);
        let u = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "{name} {v}");
        };
        u(&mut out, "vbp_jobs_submitted_total", s.submitted);
        u(&mut out, "vbp_jobs_completed_total", s.completed);
        u(&mut out, "vbp_jobs_failed_total", s.failed);
        u(&mut out, "vbp_jobs_in_flight", s.in_flight);
        u(
            &mut out,
            "vbp_rejected_total{reason=\"overloaded\"}",
            s.rejected_overloaded,
        );
        u(
            &mut out,
            "vbp_rejected_total{reason=\"draining\"}",
            s.rejected_draining,
        );
        u(&mut out, "vbp_unknown_dataset_total", s.unknown_dataset);
        u(&mut out, "vbp_bad_request_total", s.bad_request);
        u(&mut out, "vbp_protocol_errors_total", s.protocol_errors);
        u(&mut out, "vbp_batches_total", s.batches);
        u(&mut out, "vbp_batch_max_jobs", s.max_batch as u64);
        u(&mut out, "vbp_reuse_hits_total", s.engine_warm_hits);
        u(&mut out, "vbp_in_run_reused_total", s.engine_in_run_reused);
        u(&mut out, "vbp_from_scratch_total", s.engine_scratch);
        let _ = writeln!(
            out,
            "vbp_engine_busy_seconds_total {:.6}",
            s.engine_busy.as_secs_f64()
        );
        u(&mut out, "vbp_cache_entries", cache.entries as u64);
        u(&mut out, "vbp_cache_bytes", cache.bytes as u64);
        u(
            &mut out,
            "vbp_cache_budget_bytes",
            cache.budget_bytes as u64,
        );
        u(&mut out, "vbp_cache_hits_total", cache.hits);
        u(&mut out, "vbp_cache_misses_total", cache.misses);
        u(&mut out, "vbp_cache_insertions_total", cache.insertions);
        u(&mut out, "vbp_cache_evictions_total", cache.evictions);
        u(
            &mut out,
            "vbp_cache_evicted_bytes_total",
            cache.evicted_bytes,
        );
        u(
            &mut out,
            "vbp_cache_rejected_oversize_total",
            cache.rejected_oversize,
        );
        u(&mut out, "vbp_engine_runs_total", m.runs);
        u(
            &mut out,
            "vbp_engine_variants_completed_total",
            m.variants_completed,
        );
        u(
            &mut out,
            "vbp_engine_panics_contained_total",
            m.panics_contained,
        );
        u(&mut out, "vbp_events_recorded_total", m.events_recorded);
        u(&mut out, "vbp_shard_variants_total", m.sharded_variants);
        u(&mut out, "vbp_shard_tasks_total", m.shard_tasks);
        u(
            &mut out,
            "vbp_shard_border_points_total",
            m.shard_border_points,
        );
        u(
            &mut out,
            "vbp_shard_cross_unions_total",
            m.shard_cross_unions,
        );
        for (phase, hist) in m.phases.phases() {
            for (le, cum) in hist.cumulative_buckets() {
                if le == u64::MAX {
                    let _ = writeln!(
                        out,
                        "vbp_phase_latency_ns_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {cum}"
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "vbp_phase_latency_ns_bucket{{phase=\"{phase}\",le=\"{le}\"}} {cum}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "vbp_phase_latency_ns_count{{phase=\"{phase}\"}} {}",
                hist.count()
            );
            let _ = writeln!(
                out,
                "vbp_phase_latency_ns_sum{{phase=\"{phase}\"}} {}",
                hist.sum_ns()
            );
        }
        out
    }
}

/// A running server. Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` over the wire and
/// [`ServerHandle::wait`]).
pub struct Server;

/// Join/shutdown handle returned by [`Server::start`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    stop_accept: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the accept and dispatcher threads, and returns.
    pub fn start(
        engine: Engine,
        registry: Registry,
        config: ServiceConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            registry,
            cache: Mutex::new(DominanceCache::new(config.cache_bytes)),
            cache_enabled: config.cache_bytes > 0,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_cap: config.queue_cap.max(1),
            batch_window: config.batch_window,
            poll_interval: config.poll_interval,
            max_line_bytes: config.max_line_bytes,
            job_timeout: config.job_timeout,
            write_timeout: config.write_timeout,
            sharding: (config.shards > 1).then(|| Sharding::new(config.shards)),
            draining: AtomicBool::new(false),
            stats: Mutex::new(ServiceStats::default()),
            metrics: Metrics::new(),
            started: Instant::now(),
        });
        let stop_accept = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vbp-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_accept);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("vbp-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_write_timeout(Some(shared.write_timeout));
                        let shared = Arc::clone(&shared);
                        let stop = Arc::clone(&stop);
                        let handle =
                            std::thread::Builder::new()
                                .name("vbp-conn".into())
                                .spawn(move || {
                                    handle_connection(TcpTransport::new(stream), &shared, &stop)
                                });
                        let mut hs = handlers.lock().unwrap();
                        // Reap finished handlers so the registry stays
                        // proportional to *live* connections instead of
                        // growing for the daemon's lifetime.
                        let mut i = 0;
                        while i < hs.len() {
                            if hs[i].is_finished() {
                                let _ = hs.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        if let Ok(h) = handle {
                            hs.push(h);
                        }
                    }
                })?
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            stop_accept,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            handlers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the full connection-handler loop over an arbitrary
    /// [`Transport`] — the fault-injection entry point. The returned
    /// thread is *not* in the accept loop's registry; the caller owns
    /// the join. It observes the same shared state (queue, cache,
    /// stats, stop flag) as socket-accepted connections.
    pub fn serve_transport<T: Transport + 'static>(&self, transport: T) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_accept);
        std::thread::Builder::new()
            .name("vbp-conn-test".into())
            .spawn(move || handle_connection(transport, &shared, &stop))
            .expect("spawn transport handler")
    }

    /// Begins a graceful drain (idempotent): stop admitting, finish
    /// what's queued, wake the accept loop.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        self.stop_accept.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Waits for every server thread to finish. Only returns once a
    /// drain has started (via [`Self::begin_shutdown`] or a `SHUTDOWN`
    /// request) and completed.
    pub fn wait(&mut self) {
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Dispatcher exit implies draining; make sure accept wakes too.
        self.stop_accept.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Any job enqueued in the shutdown race has no dispatcher left;
        // dropping it disconnects the reply channel (the handler answers
        // `ERR draining`) and must still reach a terminal counter, or
        // the stats invariant would leak phantom in-flight jobs.
        let dropped = {
            let mut q = self.shared.queue.lock().unwrap();
            q.drain(..).count() as u64
        };
        if dropped > 0 {
            self.shared.account_terminal(dropped, true);
        }
        let handlers: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
    }

    /// Convenience: [`Self::begin_shutdown`] + [`Self::wait`].
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        self.wait();
    }

    /// Current service counters as one JSON line (same payload as the
    /// `STATS` wire command).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Prometheus-style text exposition (same payload as the `METRICS`
    /// wire command's continuation lines). Rendered from the same
    /// counters as [`Self::stats_json`], so the two always agree.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Runs the dominance cache's structural self-check
    /// ([`DominanceCache::check_invariants`]) — the chaos suite calls
    /// this after every fault schedule.
    pub fn cache_invariants(&self) -> Result<(), String> {
        self.shared.cache.lock().unwrap().check_invariants()
    }
}

/// Dispatcher: pop → linger one batch window → drain same-dataset queue
/// entries → one engine run. Exits once draining *and* empty.
fn dispatcher_loop(shared: &Shared) {
    loop {
        let first = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        if !shared.batch_window.is_zero() && !shared.draining.load(Ordering::Acquire) {
            std::thread::sleep(shared.batch_window);
        }
        let mut batch = vec![first];
        {
            let mut q = shared.queue.lock().unwrap();
            let mut rest = VecDeque::with_capacity(q.len());
            while let Some(job) = q.pop_front() {
                if job.dataset == batch[0].dataset {
                    batch.push(job);
                } else {
                    rest.push_back(job);
                }
            }
            *q = rest;
        }
        run_batch(shared, batch);
    }
}

/// Executes one same-dataset batch and answers every job in it. Every
/// job reaches exactly one terminal counter before its reply is sent.
fn run_batch(shared: &Shared, batch: Vec<Job>) {
    let Some(entry) = shared.registry.get(&batch[0].dataset) else {
        // Handlers validate the dataset before enqueueing; this is a
        // belt-and-braces path, not an expected one.
        shared.account_terminal(batch.len() as u64, true);
        for job in batch {
            let _ = job
                .reply
                .send(Err(format!("dataset '{}' disappeared", job.dataset)));
        }
        return;
    };

    // Unique variants of the batch, in canonical order.
    let mut unique: Vec<Variant> = Vec::new();
    for job in &batch {
        if !unique.contains(&job.variant) {
            unique.push(job.variant);
        }
    }
    let variants = VariantSet::new(unique.clone());

    // Seed from the cache: one warm source per distinct best hit.
    let mut warm: Vec<WarmSource> = Vec::new();
    if shared.cache_enabled {
        let mut hits = 0u32;
        {
            let mut cache = shared.cache.lock().unwrap();
            for &v in variants.as_slice() {
                if let Some(hit) = cache.lookup(&entry.name, v) {
                    hits += 1;
                    if !warm.iter().any(|w| w.variant == hit.variant) {
                        warm.push(WarmSource {
                            variant: hit.variant,
                            result: hit.result,
                        });
                    }
                }
            }
        }
        for _ in 0..hits {
            shared.metrics.record_event(TraceEvent::CacheHit);
        }
    }

    let t0 = Instant::now();
    let mut request = RunRequest::prepared(&entry.index, &variants).warm(&warm);
    if let Some(policy) = shared.sharding {
        request = request.sharding(policy);
    }
    let report = match shared.engine.execute(&request) {
        Ok(report) => report,
        Err(EngineError::JobPanic(panic)) => {
            shared.metrics.observe_panic();
            if variants.len() == 1 {
                // The poisoned variant is isolated: fail exactly these
                // jobs with a typed message, keep the dispatcher alive.
                shared.account_terminal(batch.len() as u64, true);
                let msg = panic.to_string();
                for job in batch {
                    let _ = job.reply.send(Err(msg.clone()));
                }
            } else {
                // A multi-variant batch failed as a unit — the engine
                // cannot say which peers would have succeeded. Retry
                // each distinct variant as its own single-variant batch
                // so only the genuinely poisoned jobs fail.
                let mut groups: Vec<(Variant, Vec<Job>)> = Vec::new();
                for job in batch {
                    match groups.iter_mut().find(|(v, _)| *v == job.variant) {
                        Some((_, group)) => group.push(job),
                        None => groups.push((job.variant, vec![job])),
                    }
                }
                for (_, group) in groups {
                    run_batch(shared, group);
                }
            }
            return;
        }
        Err(other) => {
            // Prepared input is finite by construction and warm sources
            // come from the same index, so this arm is unreachable in
            // practice — but a typed error must still terminate every job.
            shared.account_terminal(batch.len() as u64, true);
            let msg = other.to_string();
            for job in batch {
                let _ = job.reply.send(Err(msg.clone()));
            }
            return;
        }
    };
    let busy = t0.elapsed();
    shared.metrics.observe_run(&report);

    if shared.cache_enabled {
        let evicted = {
            let mut cache = shared.cache.lock().unwrap();
            let before = cache.stats().evictions;
            for (i, &v) in variants.as_slice().iter().enumerate() {
                cache.insert(&entry.name, v, Arc::clone(&report.results[i]));
            }
            cache.stats().evictions - before
        };
        if evicted > 0 {
            shared.metrics.record_event(TraceEvent::CacheEvicted {
                entries: u32::try_from(evicted).unwrap_or(u32::MAX),
            });
        }
    }

    {
        let mut s = shared.stats.lock().unwrap();
        s.batches += 1;
        s.max_batch = s.max_batch.max(batch.len());
        s.engine_warm_hits += report.warm_hits() as u64;
        s.engine_scratch += report.from_scratch_count() as u64;
        s.engine_in_run_reused += report
            .outcomes
            .iter()
            .filter(|o| o.reused_from().is_some() && !o.warm)
            .count() as u64;
        s.engine_busy += busy;
        s.completed += batch.len() as u64;
        s.in_flight = s.in_flight.saturating_sub(batch.len() as u64);
    }

    let ms = busy.as_secs_f64() * 1e3;
    for job in batch {
        let i = variants
            .as_slice()
            .iter()
            .position(|v| *v == job.variant)
            .expect("job variant is in the batch set");
        let outcome = &report.outcomes[i];
        let labels = job
            .want_labels
            .then(|| entry.index.labels_in_caller_order(&report.results[i]));
        let _ = job.reply.send(Ok(JobDone {
            clusters: outcome.clusters,
            noise: outcome.noise,
            warm: outcome.warm,
            reused: outcome.reused_from().is_some(),
            ms,
            labels,
        }));
    }
}

/// Per-connection request loop over any [`Transport`], with bounded
/// line framing. Framing violations cost one `ERR protocol` each and
/// resynchronize; only EOF, a fatal I/O error, `QUIT`, or the stop flag
/// end the loop.
fn handle_connection<T: Transport>(mut transport: T, shared: &Shared, stop: &AtomicBool) {
    let _ = transport.set_read_timeout(Some(shared.poll_interval));
    let mut io = LineIo::new(transport, shared.max_line_bytes);
    loop {
        match io.next_event() {
            Ok(LineEvent::Line(line)) => {
                if respond(line.trim(), shared, &mut io).is_err() {
                    break;
                }
            }
            Ok(LineEvent::Overflow) => {
                shared.stats.lock().unwrap().protocol_errors += 1;
                shared.metrics.record_event(TraceEvent::ProtocolError);
                let reply = err_line(
                    ErrorCode::Protocol,
                    &format!("line exceeds {} bytes", shared.max_line_bytes),
                );
                if io.send_line(&reply).is_err() {
                    break;
                }
            }
            Ok(LineEvent::InvalidUtf8) => {
                shared.stats.lock().unwrap().protocol_errors += 1;
                shared.metrics.record_event(TraceEvent::ProtocolError);
                if io
                    .send_line(&err_line(ErrorCode::Protocol, "line is not valid UTF-8"))
                    .is_err()
                {
                    break;
                }
            }
            Ok(LineEvent::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(LineEvent::Eof) | Err(_) => break,
        }
    }
    io.transport_mut().close();
}

/// Handles one request line; `Err(())` means "close this connection".
fn respond<T: Transport>(line: &str, shared: &Shared, io: &mut LineIo<T>) -> Result<(), ()> {
    if line.is_empty() {
        return Ok(());
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.stats.lock().unwrap().bad_request += 1;
            return send_line(io, &err_line(ErrorCode::BadRequest, &msg));
        }
    };
    match request {
        Request::Hello => send_line(io, &format!("OK vbp-service {PROTOCOL_VERSION}")),
        Request::Quit => {
            let _ = send_line(io, "OK bye");
            Err(())
        }
        Request::Datasets => {
            let mut out = String::from("OK");
            for (name, size) in shared.registry.list() {
                out.push_str(&format!(" {name}={size}"));
            }
            send_line(io, &out)
        }
        Request::Stats => send_line(io, &format!("OK {}", shared.stats_json())),
        Request::Metrics => {
            // `OK <n>` followed by exactly `n` continuation lines: the
            // client (and the protocol fuzzer) can frame the exposition
            // without sniffing line shapes.
            let text = shared.metrics_text();
            let lines: Vec<&str> = text.lines().collect();
            send_line(io, &format!("OK {}", lines.len()))?;
            for l in lines {
                send_line(io, l)?;
            }
            Ok(())
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.queue_cv.notify_all();
            send_line(io, "OK draining")
        }
        Request::Submit {
            dataset,
            eps,
            minpts,
            labels,
        } => {
            if shared.registry.get(&dataset).is_none() {
                shared.stats.lock().unwrap().unknown_dataset += 1;
                return send_line(
                    io,
                    &err_line(
                        ErrorCode::UnknownDataset,
                        &format!("dataset '{dataset}' is not registered"),
                    ),
                );
            }
            let (tx, rx) = mpsc::channel();
            let job = Job {
                dataset,
                variant: Variant::new(eps, minpts),
                want_labels: labels,
                reply: tx,
            };
            if let Err(e) = shared.submit(job) {
                let msg = match e {
                    SubmitError::Overloaded => "queue full",
                    SubmitError::Draining => "server is shutting down",
                };
                return send_line(io, &err_line(e.code(), msg));
            }
            // The dispatcher drains the queue before exiting, and panic
            // containment turns a crashing job into a prompt typed
            // failure — the timeout only guards a genuinely wedged
            // engine (the job stays in-flight in that case, which is
            // what the counters honestly say).
            match rx.recv_timeout(shared.job_timeout) {
                Ok(Ok(done)) => {
                    let head = format!(
                        "OK clusters={} noise={} warm={} reused={} ms={:.3}",
                        done.clusters,
                        done.noise,
                        u8::from(done.warm),
                        u8::from(done.reused),
                        done.ms
                    );
                    send_line(io, &head)?;
                    if let Some(labels) = done.labels {
                        let mut out = String::with_capacity(labels.len() * 7 + 16);
                        out.push_str(&format!("LABELS {}", labels.len()));
                        for l in labels {
                            out.push_str(&format!(" {l}"));
                        }
                        send_line(io, &out)?;
                    }
                    Ok(())
                }
                Ok(Err(msg)) => send_line(io, &err_line(ErrorCode::Internal, &msg)),
                Err(mpsc::RecvTimeoutError::Timeout) => send_line(
                    io,
                    &err_line(ErrorCode::Internal, "job timed out in the engine"),
                ),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Reply channel died: the server drained underneath us.
                    send_line(
                        io,
                        &err_line(ErrorCode::Draining, "request dropped during shutdown"),
                    )
                }
            }
        }
    }
}

fn send_line<T: Transport>(io: &mut LineIo<T>, line: &str) -> Result<(), ()> {
    io.send_line(line).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{MemTransport, Step};
    use variantdbscan::EngineConfig;

    fn tiny_server(queue_cap: usize, cache_bytes: usize) -> ServerHandle {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        let mut registry = Registry::new();
        registry.load(&engine, "cF_10k_5N@300").unwrap();
        Server::start(
            engine,
            registry,
            ServiceConfig {
                queue_cap,
                cache_bytes,
                batch_window: Duration::ZERO,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    /// A `Shared` with no threads attached: admission control can be
    /// unit-tested without racing a live dispatcher.
    fn bare_shared(queue_cap: usize) -> Shared {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        Shared {
            engine,
            registry: Registry::new(),
            cache: Mutex::new(DominanceCache::new(0)),
            cache_enabled: false,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_cap,
            batch_window: Duration::ZERO,
            poll_interval: Duration::from_millis(10),
            max_line_bytes: 256,
            job_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            sharding: None,
            draining: AtomicBool::new(false),
            stats: Mutex::new(ServiceStats::default()),
            metrics: Metrics::new(),
            started: Instant::now(),
        }
    }

    fn dummy_job() -> Job {
        let (tx, rx) = mpsc::channel();
        std::mem::forget(rx);
        Job {
            dataset: "d".into(),
            variant: Variant::new(1.0, 4),
            want_labels: false,
            reply: tx,
        }
    }

    #[test]
    fn draining_rejects_new_submits_at_admission() {
        let shared = bare_shared(4);
        shared.draining.store(true, Ordering::Release);
        assert_eq!(
            shared.submit(dummy_job()).unwrap_err(),
            SubmitError::Draining
        );
        assert_eq!(shared.stats.lock().unwrap().rejected_draining, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let shared = bare_shared(2);
        shared.submit(dummy_job()).unwrap();
        shared.submit(dummy_job()).unwrap();
        assert_eq!(
            shared.submit(dummy_job()).unwrap_err(),
            SubmitError::Overloaded
        );
        let s = *shared.stats.lock().unwrap();
        assert_eq!((s.submitted, s.rejected_overloaded), (2, 1));
        assert_eq!(s.in_flight, 2, "admitted jobs are in flight");
    }

    #[test]
    fn terminal_accounting_preserves_the_stats_invariant() {
        let shared = bare_shared(8);
        for _ in 0..5 {
            shared.submit(dummy_job()).unwrap();
        }
        shared.account_terminal(2, false);
        shared.account_terminal(1, true);
        let s = *shared.stats.lock().unwrap();
        assert_eq!(
            (s.submitted, s.completed, s.failed, s.in_flight),
            (5, 2, 1, 2)
        );
        assert_eq!(s.submitted, s.completed + s.failed + s.in_flight);
    }

    #[test]
    fn stats_json_is_one_well_formed_line() {
        let mut handle = tiny_server(4, 1 << 20);
        let json = handle.stats_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"reuse_hits\":0"));
        assert!(json.contains("\"in_flight\":0"));
        assert!(json.contains("\"protocol_errors\":0"));
        assert!(json.contains("\"cache\":{"));
        assert!(json.contains("\"datasets\":[{\"name\":\"cF_10k_5N@300\""));
        handle.shutdown();
    }

    #[test]
    fn shutdown_with_empty_queue_joins_quickly() {
        let mut handle = tiny_server(4, 0);
        let t0 = Instant::now();
        handle.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn scripted_transport_drives_the_real_handler() {
        let handle = tiny_server(4, 0);
        let (mem, out) = MemTransport::new(vec![
            Step::Recv(b"HELLO\nNOPE\n".to_vec()),
            Step::Idle,
            Step::Recv(b"QUIT\n".to_vec()),
        ]);
        handle.serve_transport(mem).join().unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], &format!("OK vbp-service {PROTOCOL_VERSION}"));
        assert!(lines[1].starts_with("ERR bad-request"), "{text}");
        assert_eq!(lines[2], "OK bye");
        let mut handle = handle;
        handle.shutdown();
    }

    /// Parses `name value` out of a metrics exposition; panics when the
    /// metric is absent (tests want missing metrics loud).
    fn metric(text: &str, name: &str) -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
            .unwrap_or_else(|| panic!("metric '{name}' missing"))
            .parse()
            .unwrap_or_else(|_| panic!("metric '{name}' is not a u64"))
    }

    #[test]
    fn metrics_text_agrees_with_stats_and_holds_the_invariant() {
        let shared = bare_shared(8);
        for _ in 0..5 {
            shared.submit(dummy_job()).unwrap();
        }
        shared.account_terminal(2, false);
        shared.account_terminal(1, true);
        let text = shared.metrics_text();
        let (sub, done, failed, inflight) = (
            metric(&text, "vbp_jobs_submitted_total"),
            metric(&text, "vbp_jobs_completed_total"),
            metric(&text, "vbp_jobs_failed_total"),
            metric(&text, "vbp_jobs_in_flight"),
        );
        assert_eq!((sub, done, failed, inflight), (5, 2, 1, 2));
        assert_eq!(sub, done + failed + inflight, "admission invariant");
        // Per-phase histogram framing: each phase carries a +Inf bucket
        // whose cumulative count equals its _count line.
        for phase in [
            "scratch",
            "reuse",
            "lock_wait",
            "sched",
            "shard_local",
            "shard_merge",
        ] {
            let inf = metric(
                &text,
                &format!("vbp_phase_latency_ns_bucket{{phase=\"{phase}\",le=\"+Inf\"}}"),
            );
            let count = metric(
                &text,
                &format!("vbp_phase_latency_ns_count{{phase=\"{phase}\"}}"),
            );
            assert_eq!(inf, count, "{phase} +Inf bucket must equal the count");
        }
        // Shard counters are always exposed (zero while nothing shards).
        for name in [
            "vbp_shard_variants_total",
            "vbp_shard_tasks_total",
            "vbp_shard_border_points_total",
            "vbp_shard_cross_unions_total",
        ] {
            assert_eq!(metric(&text, name), 0, "{name} without sharded runs");
        }
        // Every line is `name value` with a vbp_ namespace.
        for line in text.lines() {
            assert!(line.starts_with("vbp_"), "bad metric line {line:?}");
            assert_eq!(line.split(' ').count(), 2, "bad metric line {line:?}");
        }
    }

    #[test]
    fn metrics_verb_frames_its_continuation_lines() {
        let handle = tiny_server(4, 1 << 20);
        let (mem, out) = MemTransport::new(vec![Step::Recv(b"METRICS\nQUIT\n".to_vec())]);
        handle.serve_transport(mem).join().unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let n: usize = lines[0]
            .strip_prefix("OK ")
            .expect("METRICS answers OK <n>")
            .parse()
            .expect("continuation count");
        assert_eq!(lines.len(), n + 2, "OK <n>, n lines, OK bye");
        assert_eq!(lines[n + 1], "OK bye");
        for l in &lines[1..=n] {
            assert!(l.starts_with("vbp_"), "continuation line {l:?}");
        }
        let mut handle = handle;
        handle.shutdown();
    }
}
