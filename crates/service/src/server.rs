//! The daemon: accept loop, per-connection handlers, bounded admission
//! queue, and the batching dispatcher that turns queued requests into
//! engine runs.
//!
//! # Threading model
//!
//! ```text
//! accept thread ──spawns──▶ handler threads (one per connection)
//!                                │  submit()          ▲ reply mpsc
//!                                ▼                    │
//!                        bounded VecDeque ──▶ dispatcher thread
//!                                                 │
//!                                                 ▼
//!                               Engine::execute (batch RunRequest)
//! ```
//!
//! Handlers parse lines and *admit* work; they never touch the engine.
//! Admission is a bounded queue: when it is full the submit is rejected
//! with a typed [`ErrorCode::Overloaded`] — backpressure reaches the
//! client as an `ERR` line instead of unbounded buffering.
//!
//! The dispatcher pops the oldest request, waits one *batch window* for
//! compatible work to pile up, then drains every queued request for the
//! same dataset into a single [`VariantSet`] run. Cache lookups seed the
//! run with warm sources; every fresh result is inserted back.
//!
//! # Fault posture
//!
//! Connections are handled through the [`Transport`] seam with bounded
//! line framing ([`LineIo`]): an oversized or non-UTF-8 line costs the
//! client one `ERR protocol` and a resync, never unbounded buffering or
//! a dead handler. A panic inside a clustering job is contained at the
//! engine boundary ([`Engine::execute`] answers a typed
//! [`EngineError::JobPanic`]): the dispatcher
//! isolates the batch, retries each distinct variant alone, fails only
//! the poisoned jobs with `ERR internal`, and keeps serving. Every
//! admitted job is accounted exactly once — `submitted` always equals
//! `completed + failed + in_flight` under the stats lock, which the
//! chaos suite asserts at arbitrary observation points.
//!
//! # Graceful drain
//!
//! `SHUTDOWN` (or [`ServerHandle::shutdown`]) flips the draining flag:
//! new `SUBMIT`s are rejected with `ERR draining`, the dispatcher
//! finishes everything already queued, the accept loop is woken by a
//! self-connection and exits, and handlers notice the stop flag at their
//! next read-timeout poll. Every thread join is therefore bounded by the
//! poll interval plus the time of the in-flight engine run.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use variantdbscan::{
    Engine, EngineError, JsonObject, Metrics, RunRequest, Sharding, TraceEvent, Variant,
    VariantSet, WarmSource,
};
use vbp_dbscan::algorithm::dbscan_brute_force;
use vbp_dbscan::{ClusterResult, DbscanParams, IncrementalDbscan, Labels, MAX_CLUSTER_ID};
use vbp_geom::Point2;
use vbp_rtree::SpatialIndex;

use crate::cache::{DominanceCache, RepairStats};
use crate::protocol::{err_line, parse_request, ErrorCode, Request, PROTOCOL_VERSION};
use crate::registry::{DatasetEntry, Registry};
use crate::store::StoreBoot;
use crate::transport::{LineEvent, LineIo, TcpTransport, Transport};

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Admission queue capacity (requests, not bytes).
    pub queue_cap: usize,
    /// Reuse cache budget in bytes; 0 disables the cache.
    pub cache_bytes: usize,
    /// How long the dispatcher lingers after the first request to batch
    /// compatible ones.
    pub batch_window: Duration,
    /// Handler read-timeout; bounds how fast connections notice a drain.
    pub poll_interval: Duration,
    /// Hard cap on one request line (bytes, newline excluded); longer
    /// lines cost `ERR protocol` and are discarded.
    pub max_line_bytes: usize,
    /// How long a handler waits for its job's reply before giving up
    /// with `ERR internal`. Contained panics answer far faster; this
    /// only bounds a genuinely wedged engine.
    pub job_timeout: Duration,
    /// Socket write timeout, so a client that stops draining its
    /// receive buffer cannot wedge a handler mid-reply forever.
    pub write_timeout: Duration,
    /// Intra-variant shards for wide datasets; `0` or `1` keeps the
    /// engine's default variant-parallel placement. When `> 1`, every
    /// engine run opts in via [`RunRequest::sharding`] with this shard
    /// count and the default width gate, and the shard counters show up
    /// non-zero in `METRICS`.
    pub shards: usize,
    /// Warm-state store directory. When set, a graceful drain persists
    /// every dataset's prepared index and surviving cache entries as
    /// checksummed container files under this directory (see
    /// [`crate::store`]); boot with
    /// [`Server::start_with_store`] + [`crate::store::boot_from_store`]
    /// to restore them without rebuilding. `None` (the default) keeps
    /// the daemon fully in-memory.
    pub store_dir: Option<std::path::PathBuf>,
    /// Optional second bind address for the HTTP/1.1 gateway
    /// ([`crate::http`]). `None` (the default) serves the line protocol
    /// only; when set, both protocols run simultaneously against the
    /// same admission queue, dispatcher, cache, and counters.
    pub http_addr: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_cap: 256,
            cache_bytes: 64 << 20,
            batch_window: Duration::from_millis(2),
            poll_interval: Duration::from_millis(50),
            max_line_bytes: 8192,
            job_timeout: Duration::from_secs(600),
            write_timeout: Duration::from_secs(30),
            shards: 0,
            store_dir: None,
            http_addr: None,
        }
    }
}

/// Why a submit was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue full — try again later.
    Overloaded,
    /// Server is shutting down.
    Draining,
}

impl SubmitError {
    pub(crate) fn code(self) -> ErrorCode {
        match self {
            SubmitError::Overloaded => ErrorCode::Overloaded,
            SubmitError::Draining => ErrorCode::Draining,
        }
    }
}

/// One admitted unit of work. Both protocol surfaces (line and HTTP)
/// build the same `Job` and funnel it through [`Shared::submit`], so a
/// submission's journey — admission, batching, cache seeding, labeling
/// — is identical regardless of which wire it arrived on.
pub(crate) struct Job {
    pub(crate) dataset: String,
    pub(crate) variant: Variant,
    pub(crate) want_labels: bool,
    /// HTTP responses embed the full [`RunReport`] JSON; the line
    /// protocol never asks, so the render cost is paid only when an
    /// HTTP job is in the batch.
    pub(crate) want_report: bool,
    pub(crate) reply: mpsc::Sender<Result<JobDone, String>>,
}

/// A finished job, as the handler reports it to the client.
pub(crate) struct JobDone {
    pub(crate) clusters: usize,
    pub(crate) noise: usize,
    pub(crate) warm: bool,
    pub(crate) reused: bool,
    pub(crate) ms: f64,
    pub(crate) labels: Option<Vec<u32>>,
    /// The batch's `RunReport::to_json`, rendered once and shared by
    /// every job in the batch that asked for it.
    pub(crate) report_json: Option<Arc<str>>,
}

/// Service-level counters (the engine and cache keep their own).
///
/// Invariant, held at every instant the lock is free: `submitted ==
/// completed + failed + in_flight`. Admission increments `submitted`
/// and `in_flight` together; terminal accounting moves a job from
/// `in_flight` to exactly one of `completed`/`failed` under the same
/// lock.
///
/// A second invariant covers the streaming verbs: `appends ==
/// appends_applied + appends_rejected`. `APPEND` is synchronous (no
/// in-flight component) — the triple is bumped in a single lock
/// acquisition once the outcome is known, so the identity holds at
/// arbitrary observation points just like the admission one.
#[derive(Clone, Copy, Debug, Default)]
struct ServiceStats {
    submitted: u64,
    completed: u64,
    failed: u64,
    in_flight: u64,
    rejected_overloaded: u64,
    rejected_draining: u64,
    unknown_dataset: u64,
    bad_request: u64,
    protocol_errors: u64,
    batches: u64,
    max_batch: usize,
    engine_warm_hits: u64,
    engine_in_run_reused: u64,
    engine_scratch: u64,
    engine_busy: Duration,
    appends: u64,
    appends_applied: u64,
    appends_rejected: u64,
    append_points: u64,
    watches: u64,
    watch_deltas: u64,
    store_restored: u64,
    store_restore_failed: u64,
}

/// One live `WATCH` stream: an insertion-maintained clustering for a
/// `(dataset, variant)` pair, the bookkeeping needed to describe each
/// append as a cluster delta, and the subscribed connections.
///
/// Delta semantics: after a batch of `k` insertions the stream reports
/// `new` (clusters whose members were all noise or newly-appended
/// before the batch), `absorbed` (previously-distinct clusters merged
/// into a survivor), and `promoted` (points that crossed the core
/// threshold). The census replays: `clusters_before + new - absorbed ==
/// clusters_after`, which the streaming-equivalence suite checks over
/// the whole delta history.
struct WatchStream {
    dataset: String,
    variant: Variant,
    inc: IncrementalDbscan,
    /// Raw caller-order labels at the last snapshot.
    labels: Vec<u32>,
    /// Core flags at the last snapshot. Cluster correspondence is
    /// computed over *cores only*: a core never leaves its cluster
    /// (components only merge), while a border point may be re-claimed
    /// by a newly-promoted core of another cluster.
    core: Vec<bool>,
    clusters: usize,
    noise: usize,
    subscribers: Vec<mpsc::Sender<String>>,
}

pub(crate) struct Shared {
    engine: Engine,
    registry: Registry,
    cache: Mutex<DominanceCache>,
    cache_enabled: bool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_cap: usize,
    batch_window: Duration,
    poll_interval: Duration,
    max_line_bytes: usize,
    job_timeout: Duration,
    write_timeout: Duration,
    sharding: Option<Sharding>,
    draining: AtomicBool,
    stats: Mutex<ServiceStats>,
    metrics: Metrics,
    started: Instant,
    /// Serializes `APPEND`s (and `WATCH` registration, which must see a
    /// registry snapshot consistent with the watch streams). Never held
    /// while clustering a batch — `SUBMIT` traffic proceeds against its
    /// copy-on-write registry snapshot throughout an append.
    append_lock: Mutex<()>,
    /// Live `WATCH` streams. Locked after `append_lock`, never while
    /// holding the cache lock.
    watchers: Mutex<Vec<WatchStream>>,
    /// Warm-state store directory; `Some` makes a graceful drain
    /// persist every dataset + cache under it.
    store_dir: Option<std::path::PathBuf>,
}

impl Shared {
    /// Admission control: reject when draining or full, enqueue and wake
    /// the dispatcher otherwise.
    pub(crate) fn submit(&self, job: Job) -> Result<(), SubmitError> {
        if self.draining.load(Ordering::Acquire) {
            self.stats.lock().unwrap().rejected_draining += 1;
            return Err(SubmitError::Draining);
        }
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.queue_cap {
            drop(q);
            self.stats.lock().unwrap().rejected_overloaded += 1;
            return Err(SubmitError::Overloaded);
        }
        q.push_back(job);
        drop(q);
        {
            let mut s = self.stats.lock().unwrap();
            s.submitted += 1;
            s.in_flight += 1;
        }
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Moves `n` jobs from in-flight to a terminal counter; the single
    /// place the stats invariant is allowed to change on the exit side.
    fn account_terminal(&self, n: u64, failed: bool) {
        let mut s = self.stats.lock().unwrap();
        if failed {
            s.failed += n;
        } else {
            s.completed += n;
        }
        s.in_flight = s.in_flight.saturating_sub(n);
    }

    /// The registered datasets, shared by both protocol surfaces.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Whether a graceful drain has begun.
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Handler read-timeout (the stop-flag poll cadence).
    pub(crate) fn poll_interval(&self) -> Duration {
        self.poll_interval
    }

    /// How long a handler waits on a job reply before `internal`.
    pub(crate) fn job_timeout(&self) -> Duration {
        self.job_timeout
    }

    /// One framing violation (oversized line, invalid UTF-8, malformed
    /// HTTP head): counter + trace event, the same pair whichever
    /// protocol the bytes arrived on.
    pub(crate) fn note_protocol_error(&self) {
        self.stats.lock().unwrap().protocol_errors += 1;
        self.metrics.record_event(TraceEvent::ProtocolError);
    }

    /// A well-framed request that failed to parse (bad verb, bad JSON,
    /// out-of-range parameters).
    pub(crate) fn note_bad_request(&self) {
        self.stats.lock().unwrap().bad_request += 1;
    }

    /// A request named a dataset the registry does not hold.
    pub(crate) fn note_unknown_dataset(&self) {
        self.stats.lock().unwrap().unknown_dataset += 1;
    }

    /// Streaming ledger, applied side: `appends == appends_applied +
    /// appends_rejected` is bumped in one lock acquisition.
    pub(crate) fn note_append_applied(&self, outcome: &AppendOutcome) {
        let mut s = self.stats.lock().unwrap();
        s.appends += 1;
        s.appends_applied += 1;
        s.append_points += outcome.appended as u64;
        s.watch_deltas += outcome.deltas;
    }

    /// Streaming ledger, rejected side (draining pre-check, unknown
    /// dataset, or an invalid batch).
    pub(crate) fn note_append_rejected(&self, code: Option<ErrorCode>) {
        let mut s = self.stats.lock().unwrap();
        s.appends += 1;
        s.appends_rejected += 1;
        if code == Some(ErrorCode::UnknownDataset) {
            s.unknown_dataset += 1;
        }
    }

    pub(crate) fn stats_json(&self) -> String {
        let s = *self.stats.lock().unwrap();
        let cache = self.cache.lock().unwrap().stats();
        let mut datasets = variantdbscan::JsonArray::new();
        for (name, size) in self.registry.list() {
            datasets.push_raw(
                &JsonObject::new()
                    .str("name", &name)
                    .uint("points", size as u64)
                    .finish(),
            );
        }
        JsonObject::new()
            .uint("uptime_ms", self.started.elapsed().as_millis() as u64)
            .boolean("draining", self.draining.load(Ordering::Acquire))
            .uint("submitted", s.submitted)
            .uint("completed", s.completed)
            .uint("failed", s.failed)
            .uint("in_flight", s.in_flight)
            .uint("rejected_overloaded", s.rejected_overloaded)
            .uint("rejected_draining", s.rejected_draining)
            .uint("unknown_dataset", s.unknown_dataset)
            .uint("bad_request", s.bad_request)
            .uint("protocol_errors", s.protocol_errors)
            .uint("batches", s.batches)
            .uint("max_batch", s.max_batch as u64)
            .uint("reuse_hits", s.engine_warm_hits)
            .uint("in_run_reused", s.engine_in_run_reused)
            .uint("from_scratch", s.engine_scratch)
            .float("engine_busy_ms", s.engine_busy.as_secs_f64() * 1e3)
            .uint("appends", s.appends)
            .uint("appends_applied", s.appends_applied)
            .uint("appends_rejected", s.appends_rejected)
            .uint("append_points", s.append_points)
            .uint("watches", s.watches)
            .uint("watch_deltas", s.watch_deltas)
            .uint("store_restored", s.store_restored)
            .uint("store_restore_failed", s.store_restore_failed)
            .raw("cache", &cache.to_json())
            .raw("datasets", &datasets.finish())
            .finish()
    }

    /// Prometheus-style text exposition of the service counters, cache
    /// counters, and per-phase latency histograms, one metric per line.
    ///
    /// The service counters are rendered from a *single copy* of the same
    /// [`ServiceStats`] that [`Shared::stats_json`] serializes, taken
    /// under the stats lock — so the exposition can never structurally
    /// disagree with `STATS`, and the admission invariant (`submitted ==
    /// completed + failed + in_flight`) holds inside any one exposition.
    pub(crate) fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let s = *self.stats.lock().unwrap();
        let cache = self.cache.lock().unwrap().stats();
        let m = self.metrics.snapshot();
        let mut out = String::with_capacity(4096);
        let u = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "{name} {v}");
        };
        u(&mut out, "vbp_jobs_submitted_total", s.submitted);
        u(&mut out, "vbp_jobs_completed_total", s.completed);
        u(&mut out, "vbp_jobs_failed_total", s.failed);
        u(&mut out, "vbp_jobs_in_flight", s.in_flight);
        u(
            &mut out,
            "vbp_rejected_total{reason=\"overloaded\"}",
            s.rejected_overloaded,
        );
        u(
            &mut out,
            "vbp_rejected_total{reason=\"draining\"}",
            s.rejected_draining,
        );
        u(&mut out, "vbp_unknown_dataset_total", s.unknown_dataset);
        u(&mut out, "vbp_bad_request_total", s.bad_request);
        u(&mut out, "vbp_protocol_errors_total", s.protocol_errors);
        u(&mut out, "vbp_batches_total", s.batches);
        u(&mut out, "vbp_batch_max_jobs", s.max_batch as u64);
        u(&mut out, "vbp_reuse_hits_total", s.engine_warm_hits);
        u(&mut out, "vbp_in_run_reused_total", s.engine_in_run_reused);
        u(&mut out, "vbp_from_scratch_total", s.engine_scratch);
        let _ = writeln!(
            out,
            "vbp_engine_busy_seconds_total {:.6}",
            s.engine_busy.as_secs_f64()
        );
        u(&mut out, "vbp_cache_entries", cache.entries as u64);
        u(&mut out, "vbp_cache_bytes", cache.bytes as u64);
        u(
            &mut out,
            "vbp_cache_budget_bytes",
            cache.budget_bytes as u64,
        );
        u(&mut out, "vbp_cache_hits_total", cache.hits);
        u(&mut out, "vbp_cache_misses_total", cache.misses);
        u(&mut out, "vbp_cache_insertions_total", cache.insertions);
        u(&mut out, "vbp_cache_evictions_total", cache.evictions);
        u(
            &mut out,
            "vbp_cache_evicted_bytes_total",
            cache.evicted_bytes,
        );
        u(
            &mut out,
            "vbp_cache_rejected_oversize_total",
            cache.rejected_oversize,
        );
        u(&mut out, "vbp_cache_repaired_total", cache.repaired);
        u(
            &mut out,
            "vbp_cache_repair_dropped_total",
            cache.repair_dropped,
        );
        u(&mut out, "vbp_append_batches_total", s.appends);
        u(&mut out, "vbp_append_applied_total", s.appends_applied);
        u(&mut out, "vbp_append_rejected_total", s.appends_rejected);
        u(&mut out, "vbp_append_points_total", s.append_points);
        u(&mut out, "vbp_watch_subscriptions_total", s.watches);
        u(&mut out, "vbp_watch_deltas_total", s.watch_deltas);
        u(&mut out, "vbp_store_restored", s.store_restored);
        u(&mut out, "vbp_store_restore_failed", s.store_restore_failed);
        let (streams, subscribers) = {
            let w = self.watchers.lock().unwrap();
            (
                w.len(),
                w.iter().map(|s| s.subscribers.len()).sum::<usize>(),
            )
        };
        u(&mut out, "vbp_watch_streams", streams as u64);
        u(&mut out, "vbp_watch_subscribers", subscribers as u64);
        u(&mut out, "vbp_engine_runs_total", m.runs);
        u(
            &mut out,
            "vbp_engine_variants_completed_total",
            m.variants_completed,
        );
        u(
            &mut out,
            "vbp_engine_panics_contained_total",
            m.panics_contained,
        );
        u(&mut out, "vbp_events_recorded_total", m.events_recorded);
        u(&mut out, "vbp_shard_variants_total", m.sharded_variants);
        u(&mut out, "vbp_shard_tasks_total", m.shard_tasks);
        u(
            &mut out,
            "vbp_shard_border_points_total",
            m.shard_border_points,
        );
        u(
            &mut out,
            "vbp_shard_cross_unions_total",
            m.shard_cross_unions,
        );
        for (phase, hist) in m.phases.phases() {
            for (le, cum) in hist.cumulative_buckets() {
                if le == u64::MAX {
                    let _ = writeln!(
                        out,
                        "vbp_phase_latency_ns_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {cum}"
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "vbp_phase_latency_ns_bucket{{phase=\"{phase}\",le=\"{le}\"}} {cum}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "vbp_phase_latency_ns_count{{phase=\"{phase}\"}} {}",
                hist.count()
            );
            let _ = writeln!(
                out,
                "vbp_phase_latency_ns_sum{{phase=\"{phase}\"}} {}",
                hist.sum_ns()
            );
        }
        out
    }
}

/// A running server. Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` over the wire and
/// [`ServerHandle::wait`]).
pub struct Server;

/// Join/shutdown handle returned by [`Server::start`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    stop_accept: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    http_accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the accept and dispatcher threads, and returns.
    pub fn start(
        engine: Engine,
        registry: Registry,
        config: ServiceConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::start_with_store(engine, registry, config, StoreBoot::default())
    }

    /// [`Server::start`] seeded with restored warm state — the entry
    /// point of a `--store` boot. `boot` carries what
    /// [`boot_from_store`](crate::store::boot_from_store) recovered:
    /// cache entries to pre-insert (each validated against the live
    /// registry before insertion — an entry whose label vector does not
    /// cover the registered index is silently skipped, which can only
    /// happen when a caller mixes a stale boot with a fresh registry)
    /// and the restore counters surfaced as `vbp_store_restored` /
    /// `vbp_store_restore_failed`.
    pub fn start_with_store(
        engine: Engine,
        registry: Registry,
        config: ServiceConfig,
        boot: StoreBoot,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let http_listener = match &config.http_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let mut cache = DominanceCache::new(config.cache_bytes);
        if config.cache_bytes > 0 {
            for (dataset, variant, result) in boot.cache_seed {
                let valid = registry
                    .get(&dataset)
                    .is_some_and(|e| e.index.len() == result.len());
                if valid {
                    cache.insert(&dataset, variant, result);
                }
            }
        }
        let stats = ServiceStats {
            store_restored: boot.restored,
            store_restore_failed: boot.restore_failed,
            ..ServiceStats::default()
        };
        let shared = Arc::new(Shared {
            engine,
            registry,
            cache: Mutex::new(cache),
            cache_enabled: config.cache_bytes > 0,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_cap: config.queue_cap.max(1),
            batch_window: config.batch_window,
            poll_interval: config.poll_interval,
            max_line_bytes: config.max_line_bytes,
            job_timeout: config.job_timeout,
            write_timeout: config.write_timeout,
            sharding: (config.shards > 1).then(|| Sharding::new(config.shards)),
            draining: AtomicBool::new(false),
            stats: Mutex::new(stats),
            metrics: Metrics::new(),
            started: Instant::now(),
            append_lock: Mutex::new(()),
            watchers: Mutex::new(Vec::new()),
            store_dir: config.store_dir,
        });
        let stop_accept = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vbp-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))?
        };
        let accept = spawn_accept_loop(
            listener,
            Arc::clone(&shared),
            Arc::clone(&stop_accept),
            Arc::clone(&handlers),
            false,
        )?;
        let (http_addr, http_accept) = match http_listener {
            Some(listener) => {
                let addr = listener.local_addr()?;
                let accept = spawn_accept_loop(
                    listener,
                    Arc::clone(&shared),
                    Arc::clone(&stop_accept),
                    Arc::clone(&handlers),
                    true,
                )?;
                (Some(addr), Some(accept))
            }
            None => (None, None),
        };

        Ok(ServerHandle {
            local_addr,
            http_addr,
            shared,
            stop_accept,
            accept: Some(accept),
            http_accept,
            dispatcher: Some(dispatcher),
            handlers,
        })
    }
}

/// Spawns one accept loop. Every accepted socket gets its own handler
/// thread — the line-protocol handler or the HTTP gateway's, selected
/// by `http` — against the *same* shared state: both listeners feed one
/// admission queue, one dispatcher, one cache, one set of counters.
fn spawn_accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    http: bool,
) -> std::io::Result<JoinHandle<()>> {
    let accept_name = if http {
        "vbp-http-accept"
    } else {
        "vbp-accept"
    };
    let conn_name = if http { "vbp-http-conn" } else { "vbp-conn" };
    std::thread::Builder::new()
        .name(accept_name.into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(shared.write_timeout));
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(conn_name.into())
                    .spawn(move || {
                        let transport = TcpTransport::new(stream);
                        if http {
                            crate::http::handle_http_connection(transport, &shared, &stop);
                        } else {
                            handle_connection(transport, &shared, &stop);
                        }
                    });
                let mut hs = handlers.lock().unwrap();
                // Reap finished handlers so the registry stays
                // proportional to *live* connections instead of
                // growing for the daemon's lifetime.
                let mut i = 0;
                while i < hs.len() {
                    if hs[i].is_finished() {
                        let _ = hs.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                if let Ok(h) = handle {
                    hs.push(h);
                }
            }
        })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The HTTP gateway's bound address (resolves port 0), or `None`
    /// when [`ServiceConfig::http_addr`] was not set.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Runs the full connection-handler loop over an arbitrary
    /// [`Transport`] — the fault-injection entry point. The returned
    /// thread is *not* in the accept loop's registry; the caller owns
    /// the join. It observes the same shared state (queue, cache,
    /// stats, stop flag) as socket-accepted connections.
    pub fn serve_transport<T: Transport + 'static>(&self, transport: T) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_accept);
        std::thread::Builder::new()
            .name("vbp-conn-test".into())
            .spawn(move || handle_connection(transport, &shared, &stop))
            .expect("spawn transport handler")
    }

    /// [`Self::serve_transport`]'s HTTP twin: runs the HTTP gateway's
    /// connection handler over an arbitrary [`Transport`], against the
    /// same shared state as socket-accepted connections.
    pub fn serve_http_transport<T: Transport + 'static>(&self, transport: T) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_accept);
        std::thread::Builder::new()
            .name("vbp-http-conn-test".into())
            .spawn(move || crate::http::handle_http_connection(transport, &shared, &stop))
            .expect("spawn http transport handler")
    }

    /// Begins a graceful drain (idempotent): stop admitting, finish
    /// what's queued, wake the accept loop.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        self.stop_accept.store(true, Ordering::Release);
        // Wake the blocking accept()s with throwaway connections.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Waits for every server thread to finish. Only returns once a
    /// drain has started (via [`Self::begin_shutdown`] or a `SHUTDOWN`
    /// request) and completed.
    pub fn wait(&mut self) {
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Dispatcher exit implies draining; make sure the accepts wake
        // too.
        self.stop_accept.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(h) = self.http_accept.take() {
            let _ = h.join();
        }
        // Any job enqueued in the shutdown race has no dispatcher left;
        // dropping it disconnects the reply channel (the handler answers
        // `ERR draining`) and must still reach a terminal counter, or
        // the stats invariant would leak phantom in-flight jobs.
        let dropped = {
            let mut q = self.shared.queue.lock().unwrap();
            q.drain(..).count() as u64
        };
        if dropped > 0 {
            self.shared.account_terminal(dropped, true);
        }
        let handlers: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        // Every thread is joined: the registry, cache, and indexes are
        // quiescent. Persist the warm state now (covers both the wire
        // `SHUTDOWN` and a handle-initiated drain — both funnel through
        // this join). Persistence failures are logged, never fatal: the
        // daemon is exiting either way, and a partial store only costs
        // the next boot a cold rebuild of the affected datasets.
        if let Some(dir) = self.shared.store_dir.clone() {
            self.persist_store(&dir);
        }
    }

    /// Flushes dirty append tails and writes every dataset + its cache
    /// entries under `dir`. Only sound at quiescence (all server
    /// threads joined), which [`ServerHandle::wait`] guarantees.
    fn persist_store(&self, dir: &std::path::Path) {
        // A handle with an unsorted append tail would persist (and then
        // restore) tail-degraded query locality forever. Flush it
        // through the engine's re-sort path first, re-keying the
        // dataset's cached tree-order labels through old-permutation →
        // caller order → new-permutation (counter-neutral: nothing was
        // repaired or dropped, only re-ordered).
        for entry in self.shared.registry.entries() {
            if entry.index.appended_since_sort() == 0 {
                continue;
            }
            let old_perm = entry.index.permutation().to_vec();
            let clean = self.shared.engine.resort_prepared(&entry.index);
            let new_perm = clean.permutation();
            // caller id -> old tree position.
            let mut old_pos = vec![0u32; old_perm.len()];
            for (tree_idx, &caller) in old_perm.iter().enumerate() {
                old_pos[caller as usize] = tree_idx as u32;
            }
            let remap: Vec<usize> = new_perm
                .iter()
                .map(|&caller| old_pos[caller as usize] as usize)
                .collect();
            self.shared
                .cache
                .lock()
                .unwrap()
                .remap_results(&entry.name, |_, result| {
                    if result.len() != remap.len() {
                        // Covers a different generation (e.g. inserted
                        // mid-drain race) — cannot be re-keyed soundly.
                        return None;
                    }
                    let old_raw: Vec<u32> = result.labels().iter_raw().collect();
                    let new_raw: Vec<u32> = remap.iter().map(|&i| old_raw[i]).collect();
                    Some(Arc::new(ClusterResult::from_labels(Labels::from_raw(
                        new_raw,
                    ))))
                });
            self.shared.registry.swap(Arc::new(DatasetEntry {
                name: entry.name.clone(),
                points: entry.points.clone(),
                index: clean,
                suggested_eps: entry.suggested_eps,
            }));
        }
        let cache_entries = self.shared.cache.lock().unwrap().snapshot_entries();
        match crate::store::persist_all(dir, &self.shared.registry, &cache_entries) {
            Ok(n) => eprintln!("vbp-store: persisted {n} dataset(s) to {}", dir.display()),
            Err(e) => eprintln!(
                "vbp-store: failed to persist warm state to {}: {e}",
                dir.display()
            ),
        }
    }

    /// Convenience: [`Self::begin_shutdown`] + [`Self::wait`].
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        self.wait();
    }

    /// Current service counters as one JSON line (same payload as the
    /// `STATS` wire command).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Prometheus-style text exposition (same payload as the `METRICS`
    /// wire command's continuation lines). Rendered from the same
    /// counters as [`Self::stats_json`], so the two always agree.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Runs the dominance cache's structural self-check
    /// ([`DominanceCache::check_invariants`]) — the chaos suite calls
    /// this after every fault schedule.
    pub fn cache_invariants(&self) -> Result<(), String> {
        self.shared.cache.lock().unwrap().check_invariants()
    }

    /// Counter-neutral snapshot of the cache's live entries — the
    /// streaming-equivalence suite audits every surviving entry against
    /// the mutated dataset after each append.
    pub fn cache_entries(&self) -> Vec<(String, Variant, Arc<ClusterResult>)> {
        self.shared.cache.lock().unwrap().snapshot_entries()
    }

    /// Current caller-order points of a registered dataset (the latest
    /// copy-on-write snapshot), or `None` when unknown.
    pub fn dataset_points(&self, name: &str) -> Option<Vec<Point2>> {
        self.shared.registry.get(name).map(|e| e.points.clone())
    }
}

/// Dispatcher: pop → linger one batch window → drain same-dataset queue
/// entries → one engine run. Exits once draining *and* empty.
fn dispatcher_loop(shared: &Shared) {
    loop {
        let first = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        if !shared.batch_window.is_zero() && !shared.draining.load(Ordering::Acquire) {
            std::thread::sleep(shared.batch_window);
        }
        let mut batch = vec![first];
        {
            let mut q = shared.queue.lock().unwrap();
            let mut rest = VecDeque::with_capacity(q.len());
            while let Some(job) = q.pop_front() {
                if job.dataset == batch[0].dataset {
                    batch.push(job);
                } else {
                    rest.push_back(job);
                }
            }
            *q = rest;
        }
        run_batch(shared, batch);
    }
}

/// Executes one same-dataset batch and answers every job in it. Every
/// job reaches exactly one terminal counter before its reply is sent.
fn run_batch(shared: &Shared, batch: Vec<Job>) {
    let Some(entry) = shared.registry.get(&batch[0].dataset) else {
        // Handlers validate the dataset before enqueueing; this is a
        // belt-and-braces path, not an expected one.
        shared.account_terminal(batch.len() as u64, true);
        for job in batch {
            let _ = job
                .reply
                .send(Err(format!("dataset '{}' disappeared", job.dataset)));
        }
        return;
    };

    // Unique variants of the batch, in canonical order.
    let mut unique: Vec<Variant> = Vec::new();
    for job in &batch {
        if !unique.contains(&job.variant) {
            unique.push(job.variant);
        }
    }
    let variants = VariantSet::new(unique.clone());

    // Seed from the cache: one warm source per distinct best hit.
    let mut warm: Vec<WarmSource> = Vec::new();
    if shared.cache_enabled {
        let mut hits = 0u32;
        {
            let mut cache = shared.cache.lock().unwrap();
            for &v in variants.as_slice() {
                if let Some(hit) = cache.lookup(&entry.name, v) {
                    // A concurrent APPEND may leave entries sized for a
                    // different snapshot than the one this batch holds;
                    // they are valid for *their* generation but unusable
                    // as warm sources here.
                    if hit.result.len() != entry.index.len() {
                        continue;
                    }
                    hits += 1;
                    if !warm.iter().any(|w| w.variant == hit.variant) {
                        warm.push(WarmSource {
                            variant: hit.variant,
                            result: hit.result,
                        });
                    }
                }
            }
        }
        for _ in 0..hits {
            shared.metrics.record_event(TraceEvent::CacheHit);
        }
    }

    let t0 = Instant::now();
    let mut request = RunRequest::prepared(&entry.index, &variants).warm(&warm);
    if let Some(policy) = shared.sharding {
        request = request.sharding(policy);
    }
    let report = match shared.engine.execute(&request) {
        Ok(report) => report,
        Err(EngineError::JobPanic(panic)) => {
            shared.metrics.observe_panic();
            if variants.len() == 1 {
                // The poisoned variant is isolated: fail exactly these
                // jobs with a typed message, keep the dispatcher alive.
                shared.account_terminal(batch.len() as u64, true);
                let msg = panic.to_string();
                for job in batch {
                    let _ = job.reply.send(Err(msg.clone()));
                }
            } else {
                // A multi-variant batch failed as a unit — the engine
                // cannot say which peers would have succeeded. Retry
                // each distinct variant as its own single-variant batch
                // so only the genuinely poisoned jobs fail.
                let mut groups: Vec<(Variant, Vec<Job>)> = Vec::new();
                for job in batch {
                    match groups.iter_mut().find(|(v, _)| *v == job.variant) {
                        Some((_, group)) => group.push(job),
                        None => groups.push((job.variant, vec![job])),
                    }
                }
                for (_, group) in groups {
                    run_batch(shared, group);
                }
            }
            return;
        }
        Err(other) => {
            // Prepared input is finite by construction and warm sources
            // come from the same index, so this arm is unreachable in
            // practice — but a typed error must still terminate every job.
            shared.account_terminal(batch.len() as u64, true);
            let msg = other.to_string();
            for job in batch {
                let _ = job.reply.send(Err(msg.clone()));
            }
            return;
        }
    };
    let busy = t0.elapsed();
    shared.metrics.observe_run(&report);

    if shared.cache_enabled {
        let evicted = {
            let mut cache = shared.cache.lock().unwrap();
            // Insert only while this batch's snapshot is still current:
            // the registry read happens *under the cache lock*, the same
            // lock `APPEND`'s repair pass holds, so a stale-generation
            // result can never slip in behind the repair sweep.
            let current = shared
                .registry
                .get(&entry.name)
                .is_some_and(|e| e.index.len() == entry.index.len());
            let before = cache.stats().evictions;
            if current {
                for (i, &v) in variants.as_slice().iter().enumerate() {
                    cache.insert(&entry.name, v, Arc::clone(&report.results[i]));
                }
            }
            cache.stats().evictions - before
        };
        if evicted > 0 {
            shared.metrics.record_event(TraceEvent::CacheEvicted {
                entries: u32::try_from(evicted).unwrap_or(u32::MAX),
            });
        }
    }

    {
        let mut s = shared.stats.lock().unwrap();
        s.batches += 1;
        s.max_batch = s.max_batch.max(batch.len());
        s.engine_warm_hits += report.warm_hits() as u64;
        s.engine_scratch += report.from_scratch_count() as u64;
        s.engine_in_run_reused += report
            .outcomes
            .iter()
            .filter(|o| o.reused_from().is_some() && !o.warm)
            .count() as u64;
        s.engine_busy += busy;
        s.completed += batch.len() as u64;
        s.in_flight = s.in_flight.saturating_sub(batch.len() as u64);
    }

    let ms = busy.as_secs_f64() * 1e3;
    // Rendered once per batch, only when an HTTP job asked for it; the
    // line protocol never pays for the report serialization.
    let report_json: Option<Arc<str>> = batch
        .iter()
        .any(|j| j.want_report)
        .then(|| Arc::from(report.to_json()));
    for job in batch {
        let i = variants
            .as_slice()
            .iter()
            .position(|v| *v == job.variant)
            .expect("job variant is in the batch set");
        let outcome = &report.outcomes[i];
        let labels = job
            .want_labels
            .then(|| entry.index.labels_in_caller_order(&report.results[i]));
        let report_json = if job.want_report {
            report_json.as_ref().map(Arc::clone)
        } else {
            None
        };
        let _ = job.reply.send(Ok(JobDone {
            clusters: outcome.clusters,
            noise: outcome.noise,
            warm: outcome.warm,
            reused: outcome.reused_from().is_some(),
            ms,
            labels,
            report_json,
        }));
    }
}

/// What one applied `APPEND` did, as reported on the wire.
pub(crate) struct AppendOutcome {
    pub(crate) appended: usize,
    pub(crate) total: usize,
    pub(crate) repaired: usize,
    pub(crate) dropped: usize,
    pub(crate) deltas: u64,
    pub(crate) ms: f64,
}

/// Applies one `APPEND` batch end to end, under the append lock:
/// incremental index maintenance, copy-on-write registry swap, cache
/// repair, and watch-stream deltas. Returns a typed rejection without
/// having mutated anything when the batch is unusable — a torn or
/// invalid `APPEND` must leave the dataset at its pre-append snapshot.
pub(crate) fn apply_append(
    shared: &Shared,
    dataset: &str,
    points: &[Point2],
) -> Result<AppendOutcome, (ErrorCode, String)> {
    let _guard = shared.append_lock.lock().unwrap();
    let Some(old_entry) = shared.registry.get(dataset) else {
        return Err((
            ErrorCode::UnknownDataset,
            format!("dataset '{dataset}' is not registered"),
        ));
    };
    let t0 = Instant::now();
    let (index, report) = shared
        .engine
        .append_to_prepared(&old_entry.index, points)
        .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;

    // Swap the registry *before* repairing the cache: any in-flight
    // batch that tries to insert an old-generation result after this
    // point sees a length mismatch (checked under the cache lock) and
    // skips; anything inserted before is swept by the repair below.
    let mut all_points = old_entry.points.clone();
    all_points.extend_from_slice(points);
    let entry = Arc::new(DatasetEntry {
        name: old_entry.name.clone(),
        points: all_points,
        index,
        suggested_eps: old_entry.suggested_eps,
    });
    shared.registry.swap(Arc::clone(&entry));

    let repair = repair_cache(shared, &old_entry, &entry, points);
    let deltas = notify_watchers(shared, dataset, points);

    shared
        .metrics
        .observe_append(points.len() as u32, report.total as u32);
    shared
        .metrics
        .observe_cache_repair(0, repair.dropped as u32, repair.repaired as u32);
    Ok(AppendOutcome {
        appended: points.len(),
        total: report.total,
        repaired: repair.repaired,
        dropped: repair.dropped,
        deltas,
        ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Incremental [`DominanceCache`] repair after an append: each cached
/// entry for the dataset is either *extended* (when the insertion
/// provably cannot have changed any old label) or *dropped* (when its
/// ε-region was touched, or it belongs to an older generation).
///
/// The untouched test is exact, not heuristic: an entry at variant `v`
/// is untouched iff no inserted point has a pre-append point within
/// `v.eps`. Then every old point keeps its ε-neighborhood, hence its
/// count, core status, and label; the inserted points cluster purely
/// among themselves and are spliced on with offset cluster ids.
fn repair_cache(
    shared: &Shared,
    old_entry: &DatasetEntry,
    entry: &DatasetEntry,
    appended: &[Point2],
) -> RepairStats {
    if !shared.cache_enabled {
        return RepairStats::default();
    }
    let old_n = old_entry.points.len();
    // The successor index's dynamic mirror answers ε-queries in caller
    // id space, so "pre-append point" is simply `id < old_n`.
    let dynamic = entry
        .index
        .dynamic()
        .expect("append_to_prepared always materializes the dynamic mirror");
    let mut neighbors: Vec<vbp_geom::PointId> = Vec::new();
    let mut cache = shared.cache.lock().unwrap();
    cache.maintain_after_append(&entry.name, |variant, result| {
        if result.len() != old_n {
            // An older generation (raced a previous append's sweep);
            // nothing to extend it from.
            return None;
        }
        for &p in appended {
            neighbors.clear();
            dynamic.epsilon_neighbors(p, variant.eps, &mut neighbors);
            if neighbors.iter().any(|&q| (q as usize) < old_n) {
                return None; // ε-region touched: old labels may shift
            }
        }
        // Untouched: splice. Old labels come out in caller order via the
        // *old* permutation, the appended points are clustered alone and
        // offset past the old cluster ids, and the combined caller-order
        // labeling is mapped into the successor index's tree order.
        let old_caller = old_entry.index.labels_in_caller_order(result);
        let offset = result.num_clusters() as u32;
        let tail = dbscan_brute_force(appended, DbscanParams::new(variant.eps, variant.minpts));
        let mut caller: Vec<u32> = old_caller;
        caller.extend(tail.labels().iter_raw().map(|l| {
            if l <= MAX_CLUSTER_ID {
                l + offset
            } else {
                l // noise / unclassified sentinels pass through
            }
        }));
        let tree: Vec<u32> = entry
            .index
            .permutation()
            .iter()
            .map(|&orig| caller[orig as usize])
            .collect();
        Some(Arc::new(ClusterResult::from_labels(Labels::from_raw(tree))))
    })
}

/// Feeds an applied append batch to every watch stream of `dataset`,
/// broadcasting one `DELTA` line per subscriber, and prunes dead
/// subscribers and empty streams. Returns the number of delta lines
/// actually delivered.
fn notify_watchers(shared: &Shared, dataset: &str, appended: &[Point2]) -> u64 {
    let mut watchers = shared.watchers.lock().unwrap();
    let mut delivered = 0u64;
    for stream in watchers.iter_mut().filter(|s| s.dataset == dataset) {
        let mut promoted = 0usize;
        for &p in appended {
            promoted += stream.inc.insert(p).newly_core.len();
        }
        let snapshot = stream.inc.snapshot();
        let labels: Vec<u32> = snapshot.labels().iter_raw().collect();
        let core: Vec<bool> = (0..labels.len())
            .map(|p| stream.inc.is_core(p as u32))
            .collect();
        let (born, absorbed) = delta_counts(
            &stream.labels,
            &stream.core,
            &labels,
            snapshot.num_clusters(),
        );
        let clusters = snapshot.num_clusters();
        let noise = snapshot.noise_count();
        debug_assert_eq!(stream.clusters + born - absorbed, clusters);
        let line = format!(
            "DELTA {} {} {} appended={} new={} absorbed={} promoted={} clusters={} noise={}",
            stream.dataset,
            stream.variant.eps,
            stream.variant.minpts,
            appended.len(),
            born,
            absorbed,
            promoted,
            clusters,
            noise
        );
        stream.labels = labels;
        stream.core = core;
        stream.clusters = clusters;
        stream.noise = noise;
        stream
            .subscribers
            .retain(|tx| tx.send(line.clone()).is_ok());
        delivered += stream.subscribers.len() as u64;
    }
    watchers.retain(|s| !s.subscribers.is_empty());
    if delivered > 0 {
        shared.metrics.observe_watch_deltas(delivered);
    }
    delivered
}

/// Cluster-delta census between two snapshots of an insertion-only
/// clustering: `(born, absorbed)` such that `clusters_before + born -
/// absorbed == clusters_after`.
///
/// Correspondence is computed over points that were *core before* —
/// cores never leave their cluster under insertion (components only
/// merge), while border points may be re-claimed across clusters, which
/// would double-count a cluster as both surviving and absorbed.
fn delta_counts(
    before: &[u32],
    core_before: &[bool],
    after: &[u32],
    clusters_after: usize,
) -> (usize, usize) {
    use std::collections::BTreeSet;
    let mut sources: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); clusters_after];
    for p in 0..before.len() {
        if core_before[p] && before[p] <= MAX_CLUSTER_ID {
            let a = after[p];
            debug_assert!(a <= MAX_CLUSTER_ID, "a core point cannot become noise");
            sources[a as usize].insert(before[p]);
        }
    }
    let born = sources.iter().filter(|s| s.is_empty()).count();
    let absorbed = sources
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| s.len() - 1)
        .sum();
    (born, absorbed)
}

/// Per-connection request loop over any [`Transport`], with bounded
/// line framing. Framing violations cost one `ERR protocol` each and
/// resynchronize; only EOF, a fatal I/O error, `QUIT`, or the stop flag
/// end the loop.
fn handle_connection<T: Transport>(mut transport: T, shared: &Shared, stop: &AtomicBool) {
    let _ = transport.set_read_timeout(Some(shared.poll_interval));
    let mut io = LineIo::new(transport, shared.max_line_bytes);
    // `WATCH` subscriptions this connection holds: `DELTA` pushes are
    // drained between request/response exchanges and at every
    // read-timeout poll, never inside an exchange. Dropping the
    // receivers on exit is the unsubscribe — the next broadcast prunes
    // the dead sender.
    let mut watches: Vec<mpsc::Receiver<String>> = Vec::new();
    loop {
        match io.next_event() {
            Ok(LineEvent::Line(line)) => {
                if respond(line.trim(), shared, &mut io, &mut watches).is_err() {
                    break;
                }
                if drain_watches(&mut io, &mut watches).is_err() {
                    break;
                }
            }
            Ok(LineEvent::Overflow) => {
                shared.note_protocol_error();
                let reply = err_line(
                    ErrorCode::Protocol,
                    &format!("line exceeds {} bytes", shared.max_line_bytes),
                );
                if io.send_line(&reply).is_err() {
                    break;
                }
            }
            Ok(LineEvent::InvalidUtf8) => {
                shared.note_protocol_error();
                if io
                    .send_line(&err_line(ErrorCode::Protocol, "line is not valid UTF-8"))
                    .is_err()
                {
                    break;
                }
            }
            Ok(LineEvent::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if drain_watches(&mut io, &mut watches).is_err() {
                    break;
                }
            }
            Ok(LineEvent::Eof) | Err(_) => break,
        }
    }
    io.transport_mut().close();
}

/// Flushes every pending `DELTA` push to the wire; drops receivers
/// whose stream has been pruned server-side.
fn drain_watches<T: Transport>(
    io: &mut LineIo<T>,
    watches: &mut Vec<mpsc::Receiver<String>>,
) -> Result<(), ()> {
    let mut i = 0;
    'streams: while i < watches.len() {
        loop {
            match watches[i].try_recv() {
                Ok(line) => send_line(io, &line)?,
                Err(mpsc::TryRecvError::Empty) => {
                    i += 1;
                    continue 'streams;
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    watches.swap_remove(i);
                    continue 'streams;
                }
            }
        }
    }
    Ok(())
}

/// Handles one request line; `Err(())` means "close this connection".
fn respond<T: Transport>(
    line: &str,
    shared: &Shared,
    io: &mut LineIo<T>,
    watches: &mut Vec<mpsc::Receiver<String>>,
) -> Result<(), ()> {
    if line.is_empty() {
        return Ok(());
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.note_bad_request();
            return send_line(io, &err_line(ErrorCode::BadRequest, &msg));
        }
    };
    match request {
        Request::Hello => send_line(io, &format!("OK vbp-service {PROTOCOL_VERSION}")),
        Request::Quit => {
            let _ = send_line(io, "OK bye");
            Err(())
        }
        Request::Datasets => {
            let mut out = String::from("OK");
            for (name, size) in shared.registry.list() {
                out.push_str(&format!(" {name}={size}"));
            }
            send_line(io, &out)
        }
        Request::Stats => send_line(io, &format!("OK {}", shared.stats_json())),
        Request::Metrics => {
            // `OK <n>` followed by exactly `n` continuation lines: the
            // client (and the protocol fuzzer) can frame the exposition
            // without sniffing line shapes.
            let text = shared.metrics_text();
            let lines: Vec<&str> = text.lines().collect();
            send_line(io, &format!("OK {}", lines.len()))?;
            for l in lines {
                send_line(io, l)?;
            }
            Ok(())
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.queue_cv.notify_all();
            send_line(io, "OK draining")
        }
        Request::Submit {
            dataset,
            eps,
            minpts,
            labels,
        } => {
            if shared.registry.get(&dataset).is_none() {
                shared.note_unknown_dataset();
                return send_line(
                    io,
                    &err_line(
                        ErrorCode::UnknownDataset,
                        &format!("dataset '{dataset}' is not registered"),
                    ),
                );
            }
            let (tx, rx) = mpsc::channel();
            let job = Job {
                dataset,
                variant: Variant::new(eps, minpts),
                want_labels: labels,
                want_report: false,
                reply: tx,
            };
            if let Err(e) = shared.submit(job) {
                let msg = match e {
                    // The `retry-after=N` token is the line protocol's
                    // spelling of HTTP's `Retry-After` header; clients
                    // parse it into the typed backoff hint.
                    SubmitError::Overloaded => "retry-after=1 queue full",
                    SubmitError::Draining => "server is shutting down",
                };
                return send_line(io, &err_line(e.code(), msg));
            }
            // The dispatcher drains the queue before exiting, and panic
            // containment turns a crashing job into a prompt typed
            // failure — the timeout only guards a genuinely wedged
            // engine (the job stays in-flight in that case, which is
            // what the counters honestly say).
            match rx.recv_timeout(shared.job_timeout) {
                Ok(Ok(done)) => {
                    let head = format!(
                        "OK clusters={} noise={} warm={} reused={} ms={:.3}",
                        done.clusters,
                        done.noise,
                        u8::from(done.warm),
                        u8::from(done.reused),
                        done.ms
                    );
                    send_line(io, &head)?;
                    if let Some(labels) = done.labels {
                        let mut out = String::with_capacity(labels.len() * 7 + 16);
                        out.push_str(&format!("LABELS {}", labels.len()));
                        for l in labels {
                            out.push_str(&format!(" {l}"));
                        }
                        send_line(io, &out)?;
                    }
                    Ok(())
                }
                Ok(Err(msg)) => send_line(io, &err_line(ErrorCode::Internal, &msg)),
                Err(mpsc::RecvTimeoutError::Timeout) => send_line(
                    io,
                    &err_line(ErrorCode::Internal, "job timed out in the engine"),
                ),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Reply channel died: the server drained underneath us.
                    send_line(
                        io,
                        &err_line(ErrorCode::Draining, "request dropped during shutdown"),
                    )
                }
            }
        }
        Request::Append { dataset, points } => {
            if shared.is_draining() {
                shared.note_append_rejected(None);
                return send_line(
                    io,
                    &err_line(ErrorCode::Draining, "server is shutting down"),
                );
            }
            match apply_append(shared, &dataset, &points) {
                Ok(outcome) => {
                    shared.note_append_applied(&outcome);
                    send_line(
                        io,
                        &format!(
                            "OK appended={} total={} repaired={} dropped={} ms={:.3}",
                            outcome.appended,
                            outcome.total,
                            outcome.repaired,
                            outcome.dropped,
                            outcome.ms
                        ),
                    )
                }
                Err((code, msg)) => {
                    shared.note_append_rejected(Some(code));
                    send_line(io, &err_line(code, &msg))
                }
            }
        }
        Request::Watch {
            dataset,
            eps,
            minpts,
        } => {
            if shared.draining.load(Ordering::Acquire) {
                return send_line(
                    io,
                    &err_line(ErrorCode::Draining, "server is shutting down"),
                );
            }
            // The append lock keeps the registry snapshot and the new
            // stream's replayed state consistent: no append can land
            // between reading the points and registering the stream.
            let guard = shared.append_lock.lock().unwrap();
            let Some(entry) = shared.registry.get(&dataset) else {
                drop(guard);
                shared.note_unknown_dataset();
                return send_line(
                    io,
                    &err_line(
                        ErrorCode::UnknownDataset,
                        &format!("dataset '{dataset}' is not registered"),
                    ),
                );
            };
            let variant = Variant::new(eps, minpts);
            let (tx, rx) = mpsc::channel();
            let (clusters, noise) = {
                let mut watchers = shared.watchers.lock().unwrap();
                match watchers
                    .iter_mut()
                    .find(|s| s.dataset == dataset && s.variant == variant)
                {
                    Some(stream) => {
                        stream.subscribers.push(tx);
                        (stream.clusters, stream.noise)
                    }
                    None => {
                        let mut inc = IncrementalDbscan::new(DbscanParams::new(eps, minpts));
                        for &p in &entry.points {
                            inc.insert(p);
                        }
                        let snapshot = inc.snapshot();
                        let labels: Vec<u32> = snapshot.labels().iter_raw().collect();
                        let core = (0..labels.len()).map(|p| inc.is_core(p as u32)).collect();
                        let census = (snapshot.num_clusters(), snapshot.noise_count());
                        watchers.push(WatchStream {
                            dataset: dataset.clone(),
                            variant,
                            inc,
                            labels,
                            core,
                            clusters: census.0,
                            noise: census.1,
                            subscribers: vec![tx],
                        });
                        census
                    }
                }
            };
            drop(guard);
            shared.stats.lock().unwrap().watches += 1;
            watches.push(rx);
            send_line(
                io,
                &format!("OK watching {dataset} {eps} {minpts} clusters={clusters} noise={noise}"),
            )
        }
    }
}

fn send_line<T: Transport>(io: &mut LineIo<T>, line: &str) -> Result<(), ()> {
    io.send_line(line).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{MemTransport, Step};
    use variantdbscan::EngineConfig;

    fn tiny_server(queue_cap: usize, cache_bytes: usize) -> ServerHandle {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        let registry = Registry::new();
        registry.load(&engine, "cF_10k_5N@300").unwrap();
        Server::start(
            engine,
            registry,
            ServiceConfig {
                queue_cap,
                cache_bytes,
                batch_window: Duration::ZERO,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    /// A `Shared` with no threads attached: admission control can be
    /// unit-tested without racing a live dispatcher.
    fn bare_shared(queue_cap: usize) -> Shared {
        let engine = Engine::new(EngineConfig::default().with_threads(1).with_r(8));
        Shared {
            engine,
            registry: Registry::new(),
            cache: Mutex::new(DominanceCache::new(0)),
            cache_enabled: false,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_cap,
            batch_window: Duration::ZERO,
            poll_interval: Duration::from_millis(10),
            max_line_bytes: 256,
            job_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            sharding: None,
            draining: AtomicBool::new(false),
            stats: Mutex::new(ServiceStats::default()),
            metrics: Metrics::new(),
            started: Instant::now(),
            append_lock: Mutex::new(()),
            watchers: Mutex::new(Vec::new()),
            store_dir: None,
        }
    }

    fn dummy_job() -> Job {
        let (tx, rx) = mpsc::channel();
        std::mem::forget(rx);
        Job {
            dataset: "d".into(),
            variant: Variant::new(1.0, 4),
            want_labels: false,
            want_report: false,
            reply: tx,
        }
    }

    #[test]
    fn draining_rejects_new_submits_at_admission() {
        let shared = bare_shared(4);
        shared.draining.store(true, Ordering::Release);
        assert_eq!(
            shared.submit(dummy_job()).unwrap_err(),
            SubmitError::Draining
        );
        assert_eq!(shared.stats.lock().unwrap().rejected_draining, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let shared = bare_shared(2);
        shared.submit(dummy_job()).unwrap();
        shared.submit(dummy_job()).unwrap();
        assert_eq!(
            shared.submit(dummy_job()).unwrap_err(),
            SubmitError::Overloaded
        );
        let s = *shared.stats.lock().unwrap();
        assert_eq!((s.submitted, s.rejected_overloaded), (2, 1));
        assert_eq!(s.in_flight, 2, "admitted jobs are in flight");
    }

    #[test]
    fn terminal_accounting_preserves_the_stats_invariant() {
        let shared = bare_shared(8);
        for _ in 0..5 {
            shared.submit(dummy_job()).unwrap();
        }
        shared.account_terminal(2, false);
        shared.account_terminal(1, true);
        let s = *shared.stats.lock().unwrap();
        assert_eq!(
            (s.submitted, s.completed, s.failed, s.in_flight),
            (5, 2, 1, 2)
        );
        assert_eq!(s.submitted, s.completed + s.failed + s.in_flight);
    }

    #[test]
    fn stats_json_is_one_well_formed_line() {
        let mut handle = tiny_server(4, 1 << 20);
        let json = handle.stats_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"reuse_hits\":0"));
        assert!(json.contains("\"in_flight\":0"));
        assert!(json.contains("\"protocol_errors\":0"));
        assert!(json.contains("\"cache\":{"));
        assert!(json.contains("\"datasets\":[{\"name\":\"cF_10k_5N@300\""));
        handle.shutdown();
    }

    #[test]
    fn shutdown_with_empty_queue_joins_quickly() {
        let mut handle = tiny_server(4, 0);
        let t0 = Instant::now();
        handle.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn scripted_transport_drives_the_real_handler() {
        let handle = tiny_server(4, 0);
        let (mem, out) = MemTransport::new(vec![
            Step::Recv(b"HELLO\nNOPE\n".to_vec()),
            Step::Idle,
            Step::Recv(b"QUIT\n".to_vec()),
        ]);
        handle.serve_transport(mem).join().unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], &format!("OK vbp-service {PROTOCOL_VERSION}"));
        assert!(lines[1].starts_with("ERR bad-request"), "{text}");
        assert_eq!(lines[2], "OK bye");
        let mut handle = handle;
        handle.shutdown();
    }

    /// Parses `name value` out of a metrics exposition; panics when the
    /// metric is absent (tests want missing metrics loud).
    fn metric(text: &str, name: &str) -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
            .unwrap_or_else(|| panic!("metric '{name}' missing"))
            .parse()
            .unwrap_or_else(|_| panic!("metric '{name}' is not a u64"))
    }

    #[test]
    fn metrics_text_agrees_with_stats_and_holds_the_invariant() {
        let shared = bare_shared(8);
        for _ in 0..5 {
            shared.submit(dummy_job()).unwrap();
        }
        shared.account_terminal(2, false);
        shared.account_terminal(1, true);
        let text = shared.metrics_text();
        let (sub, done, failed, inflight) = (
            metric(&text, "vbp_jobs_submitted_total"),
            metric(&text, "vbp_jobs_completed_total"),
            metric(&text, "vbp_jobs_failed_total"),
            metric(&text, "vbp_jobs_in_flight"),
        );
        assert_eq!((sub, done, failed, inflight), (5, 2, 1, 2));
        assert_eq!(sub, done + failed + inflight, "admission invariant");
        // Per-phase histogram framing: each phase carries a +Inf bucket
        // whose cumulative count equals its _count line.
        for phase in [
            "scratch",
            "reuse",
            "lock_wait",
            "sched",
            "shard_local",
            "shard_merge",
        ] {
            let inf = metric(
                &text,
                &format!("vbp_phase_latency_ns_bucket{{phase=\"{phase}\",le=\"+Inf\"}}"),
            );
            let count = metric(
                &text,
                &format!("vbp_phase_latency_ns_count{{phase=\"{phase}\"}}"),
            );
            assert_eq!(inf, count, "{phase} +Inf bucket must equal the count");
        }
        // Shard counters are always exposed (zero while nothing shards).
        for name in [
            "vbp_shard_variants_total",
            "vbp_shard_tasks_total",
            "vbp_shard_border_points_total",
            "vbp_shard_cross_unions_total",
        ] {
            assert_eq!(metric(&text, name), 0, "{name} without sharded runs");
        }
        // Every line is `name value` with a vbp_ namespace.
        for line in text.lines() {
            assert!(line.starts_with("vbp_"), "bad metric line {line:?}");
            assert_eq!(line.split(' ').count(), 2, "bad metric line {line:?}");
        }
    }

    #[test]
    fn delta_counts_replays_the_census() {
        // before: clusters {0} (cores), {1} (cores); after: cluster 0
        // absorbed cluster 1, and a brand-new cluster 1 appeared among
        // previously-noise points.
        let before = vec![0, 0, 1, 1, NOISE_RAW, NOISE_RAW];
        let core_before = vec![true, true, true, true, false, false];
        let after = vec![0, 0, 0, 0, 1, 1];
        let (born, absorbed) = delta_counts(&before, &core_before, &after, 2);
        assert_eq!((born, absorbed), (1, 1));
        // census replay: 2 before + 1 born - 1 absorbed = 2 after
        assert_eq!(2 + born - absorbed, 2);
    }
    const NOISE_RAW: u32 = u32::MAX;

    #[test]
    fn append_and_watch_round_trip_through_the_handler() {
        let handle = tiny_server(4, 1 << 20);
        let (mem, out) = MemTransport::new(vec![
            Step::Recv(b"WATCH cF_10k_5N@300 2.0 4\n".to_vec()),
            Step::Recv(b"APPEND cF_10k_5N@300 0.0 0.0 0.05 0.05\n".to_vec()),
            Step::Idle,
            Step::Recv(b"QUIT\n".to_vec()),
        ]);
        handle.serve_transport(mem).join().unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("OK watching cF_10k_5N@300 2 4 clusters="),
            "{text}"
        );
        assert!(lines[1].starts_with("OK appended=2 total=302"), "{text}");
        assert!(
            lines[2].starts_with("DELTA cF_10k_5N@300 2 4 appended=2"),
            "{text}"
        );
        assert_eq!(*lines.last().unwrap(), "OK bye");
        // The streaming invariant holds in both expositions.
        let stats = handle.stats_json();
        assert!(stats.contains("\"appends\":1"), "{stats}");
        assert!(stats.contains("\"appends_applied\":1"), "{stats}");
        assert!(stats.contains("\"appends_rejected\":0"), "{stats}");
        let metrics = handle.metrics_text();
        assert_eq!(metric(&metrics, "vbp_append_batches_total"), 1);
        assert_eq!(metric(&metrics, "vbp_append_points_total"), 2);
        assert_eq!(metric(&metrics, "vbp_watch_deltas_total"), 1);
        assert_eq!(
            handle.dataset_points("cF_10k_5N@300").unwrap().len(),
            302,
            "registry swapped to the successor snapshot"
        );
        let mut handle = handle;
        handle.shutdown();
    }

    #[test]
    fn metrics_verb_frames_its_continuation_lines() {
        let handle = tiny_server(4, 1 << 20);
        let (mem, out) = MemTransport::new(vec![Step::Recv(b"METRICS\nQUIT\n".to_vec())]);
        handle.serve_transport(mem).join().unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let n: usize = lines[0]
            .strip_prefix("OK ")
            .expect("METRICS answers OK <n>")
            .parse()
            .expect("continuation count");
        assert_eq!(lines.len(), n + 2, "OK <n>, n lines, OK bye");
        assert_eq!(lines[n + 1], "OK bye");
        for l in &lines[1..=n] {
            assert!(l.starts_with("vbp_"), "continuation line {l:?}");
        }
        let mut handle = handle;
        handle.shutdown();
    }
}
