//! Bounded per-backend connection pools with a connect-failure breaker.
//!
//! The router keeps a [`BackendPool`] per backend daemon. A pool owns
//! at most `cap` connections — each a boxed
//! [`DatasetService`](crate::api::DatasetService), so the pool neither
//! knows nor cares which wire its connections speak — and lends them
//! out one handler at a time:
//!
//! - **Bounded checkout.** A handler that finds no idle connection and
//!   no free slot blocks on a condvar up to `checkout_timeout`, then
//!   answers [`PoolError::Busy`] (the router maps it to `503
//!   overloaded` + `Retry-After`). The bound is the router-side
//!   analogue of the daemon's bounded admission queue: load sheds with
//!   a typed answer instead of queueing without limit.
//! - **Retry-once on connect.** A fresh connect that fails is retried
//!   exactly once, immediately — it papers over the one-shot races
//!   (backend restarting its accept loop, listen backlog momentarily
//!   full) without turning the pool into a retry storm.
//! - **Breaker.** `breaker_threshold` *consecutive* failed
//!   connect-attempts (each already retried once) open the breaker for
//!   `breaker_cooldown`; while open, checkouts needing a fresh connect
//!   fast-fail [`PoolError::Unavailable`] without touching the socket.
//!   One probe per cooldown rediscovers a revived backend. Idle
//!   connections keep working while the breaker is open — the breaker
//!   gates *dialing*, not traffic.
//! - **Mid-stream failures drop the connection.** An `Io`/`Protocol`
//!   error inside a lent connection means the backend died or the
//!   stream desynced: the connection is discarded (freeing its slot)
//!   and the caller sees [`PoolError::Unavailable`]. Typed server
//!   rejections (`overloaded`, `unknown-dataset`, …) travel through as
//!   [`PoolError::Service`] and the connection — which just proved
//!   itself healthy by answering — goes back to idle.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::api::DatasetService;
use crate::client::ClientError;

/// A pooled connection: any [`DatasetService`] the connector produces.
pub type PooledService = Box<dyn DatasetService + Send>;

/// Builds one fresh connection to the pool's backend.
pub type Connector = Box<dyn Fn() -> std::io::Result<PooledService> + Send + Sync>;

/// Why a pooled call failed.
#[derive(Debug)]
pub enum PoolError {
    /// The backend is unreachable: connect failed (after the one
    /// retry), the breaker is open, or a lent connection died
    /// mid-exchange.
    Unavailable {
        /// Human-readable detail for the router's `503` body.
        message: String,
    },
    /// Every connection was busy for the whole checkout timeout.
    Busy,
    /// The backend answered a typed rejection; the connection is fine.
    Service(ClientError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Unavailable { message } => write!(f, "backend unavailable: {message}"),
            PoolError::Busy => write!(f, "all pooled connections busy"),
            PoolError::Service(e) => write!(f, "backend rejected: {e}"),
        }
    }
}

/// Per-backend observability counters, surfaced in the router's STATS
/// and `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendCounters {
    /// Successful fresh connects.
    pub connects: u64,
    /// Failed connect *attempts* (a retried connect that fails twice
    /// counts two).
    pub connect_failures: u64,
    /// Successful checkouts (idle reuse or fresh connect).
    pub checkouts: u64,
    /// Checkouts that timed out waiting for a slot ([`PoolError::Busy`]).
    pub busy_timeouts: u64,
    /// Times the breaker opened.
    pub breaker_trips: u64,
    /// Checkouts fast-failed by an open breaker.
    pub breaker_fast_fails: u64,
    /// Connections discarded after a mid-exchange failure.
    pub dropped: u64,
}

struct PoolInner {
    idle: Vec<PooledService>,
    /// Connections currently existing or being created (idle + lent +
    /// in-connect). Never exceeds `cap`.
    outstanding: usize,
    /// Consecutive failed connect-sequences; resets on success.
    consecutive_failures: u32,
    /// While `Some(t)` with `t` in the future, fresh connects fast-fail.
    open_until: Option<Instant>,
    counters: BackendCounters,
}

/// A bounded connection pool for one backend daemon.
pub struct BackendPool {
    addr: String,
    connector: Connector,
    cap: usize,
    checkout_timeout: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    inner: Mutex<PoolInner>,
    freed: Condvar,
}

impl BackendPool {
    /// A pool of at most `cap` connections built by `connector`.
    pub fn new(
        addr: impl Into<String>,
        cap: usize,
        checkout_timeout: Duration,
        breaker_threshold: u32,
        breaker_cooldown: Duration,
        connector: Connector,
    ) -> BackendPool {
        assert!(cap >= 1, "pool cap must be at least 1");
        BackendPool {
            addr: addr.into(),
            connector,
            cap,
            checkout_timeout,
            breaker_threshold,
            breaker_cooldown,
            inner: Mutex::new(PoolInner {
                idle: Vec::new(),
                outstanding: 0,
                consecutive_failures: 0,
                open_until: None,
                counters: BackendCounters::default(),
            }),
            freed: Condvar::new(),
        }
    }

    /// The backend address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A copy of the counters, taken under the pool lock.
    pub fn counters(&self) -> BackendCounters {
        self.inner.lock().expect("pool lock poisoned").counters
    }

    /// Whether the breaker is currently open (fast-failing dials).
    pub fn breaker_open(&self) -> bool {
        let inner = self.inner.lock().expect("pool lock poisoned");
        matches!(inner.open_until, Some(t) if Instant::now() < t)
    }

    /// Checks a connection out, runs `f` on it, and returns it (or
    /// discards it, when `f` failed at the transport level).
    pub fn with_conn<R>(
        &self,
        f: impl FnOnce(&mut dyn DatasetService) -> Result<R, ClientError>,
    ) -> Result<R, PoolError> {
        let mut conn = self.checkout()?;
        match f(conn.as_mut()) {
            Ok(r) => {
                self.check_in(conn);
                Ok(r)
            }
            Err(e @ (ClientError::Io(_) | ClientError::Protocol(_))) => {
                // The stream is in an unknown state — never reuse it.
                self.discard(conn);
                Err(PoolError::Unavailable {
                    message: format!("backend {} failed mid-exchange: {e}", self.addr),
                })
            }
            Err(e) => {
                // A typed rejection proves the connection healthy.
                self.check_in(conn);
                Err(PoolError::Service(e))
            }
        }
    }

    fn checkout(&self) -> Result<PooledService, PoolError> {
        let deadline = Instant::now() + self.checkout_timeout;
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        loop {
            if let Some(conn) = inner.idle.pop() {
                inner.counters.checkouts += 1;
                return Ok(conn);
            }
            if inner.outstanding < self.cap {
                return self.connect_slot(inner);
            }
            let now = Instant::now();
            if now >= deadline {
                inner.counters.busy_timeouts += 1;
                return Err(PoolError::Busy);
            }
            let (guard, _) = self
                .freed
                .wait_timeout(inner, deadline - now)
                .expect("pool lock poisoned");
            inner = guard;
        }
    }

    /// Takes a slot and dials outside the lock. `inner` is the held
    /// guard; `outstanding` has room for one more.
    fn connect_slot(
        &self,
        mut inner: std::sync::MutexGuard<'_, PoolInner>,
    ) -> Result<PooledService, PoolError> {
        if let Some(until) = inner.open_until {
            if Instant::now() < until {
                inner.counters.breaker_fast_fails += 1;
                return Err(PoolError::Unavailable {
                    message: format!(
                        "backend {} breaker open for another {}ms",
                        self.addr,
                        until.saturating_duration_since(Instant::now()).as_millis()
                    ),
                });
            }
            // Cooldown over: this checkout is the probe.
            inner.open_until = None;
        }
        inner.outstanding += 1;
        drop(inner);

        // Dial with one immediate retry, outside the lock.
        let dialed = (self.connector)().or_else(|first| {
            let mut inner = self.inner.lock().expect("pool lock poisoned");
            inner.counters.connect_failures += 1;
            drop(inner);
            (self.connector)().map_err(|second| {
                std::io::Error::new(
                    second.kind(),
                    format!("twice: first {first}, then {second}"),
                )
            })
        });

        let mut inner = self.inner.lock().expect("pool lock poisoned");
        match dialed {
            Ok(conn) => {
                inner.counters.connects += 1;
                inner.counters.checkouts += 1;
                inner.consecutive_failures = 0;
                Ok(conn)
            }
            Err(e) => {
                inner.counters.connect_failures += 1;
                inner.consecutive_failures += 1;
                inner.outstanding -= 1;
                if inner.consecutive_failures >= self.breaker_threshold {
                    inner.open_until = Some(Instant::now() + self.breaker_cooldown);
                    inner.counters.breaker_trips += 1;
                    inner.consecutive_failures = 0;
                }
                // The freed slot may unblock a waiter (who will likely
                // fail the same way, but promptly).
                self.freed.notify_one();
                Err(PoolError::Unavailable {
                    message: format!("connect to backend {} failed {e}", self.addr),
                })
            }
        }
    }

    fn check_in(&self, conn: PooledService) {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        inner.idle.push(conn);
        drop(inner);
        self.freed.notify_one();
    }

    fn discard(&self, conn: PooledService) {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        inner.outstanding -= 1;
        inner.counters.dropped += 1;
        drop(inner);
        drop(conn);
        self.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Health;
    use crate::client::{AppendReply, SubmitReply};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use vbp_geom::Point2;

    /// A scriptable in-memory backend: answers healthz, errors
    /// everything else.
    struct FakeService {
        fail_next_with_io: bool,
    }

    impl DatasetService for FakeService {
        fn submit(
            &mut self,
            _dataset: &str,
            _eps: f64,
            _minpts: usize,
            _want_labels: bool,
        ) -> Result<SubmitReply, ClientError> {
            if self.fail_next_with_io {
                return Err(ClientError::Io(std::io::Error::other("cut")));
            }
            Err(ClientError::rejected(
                crate::protocol::ErrorCode::Overloaded,
                "retry-after=1 queue full".into(),
            ))
        }
        fn append(
            &mut self,
            _dataset: &str,
            _points: &[Point2],
        ) -> Result<AppendReply, ClientError> {
            Err(ClientError::Protocol("unsupported".into()))
        }
        fn datasets(&mut self) -> Result<Vec<(String, usize)>, ClientError> {
            Ok(vec![("ds".into(), 7)])
        }
        fn stats_json(&mut self) -> Result<String, ClientError> {
            Ok("{}".into())
        }
        fn metrics(&mut self) -> Result<String, ClientError> {
            Ok(String::new())
        }
        fn healthz(&mut self) -> Result<Health, ClientError> {
            Ok(Health {
                accepting: true,
                draining: false,
            })
        }
    }

    fn pool_with(
        cap: usize,
        fail_first: usize,
        timeout: Duration,
    ) -> (BackendPool, Arc<AtomicUsize>) {
        let dials = Arc::new(AtomicUsize::new(0));
        let dials2 = dials.clone();
        let pool = BackendPool::new(
            "fake:1",
            cap,
            timeout,
            2,
            Duration::from_millis(40),
            Box::new(move || {
                let n = dials2.fetch_add(1, Ordering::SeqCst);
                if n < fail_first {
                    Err(std::io::Error::other("refused"))
                } else {
                    Ok(Box::new(FakeService {
                        fail_next_with_io: false,
                    }) as PooledService)
                }
            }),
        );
        (pool, dials)
    }

    #[test]
    fn checkout_reuses_an_idle_connection() {
        let (pool, dials) = pool_with(2, 0, Duration::from_millis(100));
        pool.with_conn(|s| s.datasets()).unwrap();
        pool.with_conn(|s| s.datasets()).unwrap();
        assert_eq!(dials.load(Ordering::SeqCst), 1, "second call reused");
        let c = pool.counters();
        assert_eq!(c.connects, 1);
        assert_eq!(c.checkouts, 2);
    }

    #[test]
    fn connect_failure_is_retried_once_then_unavailable() {
        // First dial fails, the immediate retry succeeds.
        let (pool, dials) = pool_with(1, 1, Duration::from_millis(100));
        pool.with_conn(|s| s.datasets()).unwrap();
        assert_eq!(dials.load(Ordering::SeqCst), 2);
        assert_eq!(pool.counters().connect_failures, 1);

        // Both dials fail: Unavailable, slot released.
        let (pool, dials) = pool_with(1, usize::MAX, Duration::from_millis(100));
        match pool.with_conn(|s| s.datasets()) {
            Err(PoolError::Unavailable { .. }) => {}
            other => panic!("expected Unavailable, got {:?}", other.map(|_| ())),
        }
        assert_eq!(dials.load(Ordering::SeqCst), 2);
        assert_eq!(pool.counters().connect_failures, 2);
    }

    #[test]
    fn breaker_opens_after_threshold_and_reprobes_after_cooldown() {
        let (pool, dials) = pool_with(1, 4, Duration::from_millis(100));
        // Two failed sequences (threshold 2) trip the breaker.
        assert!(pool.with_conn(|s| s.datasets()).is_err());
        assert!(pool.with_conn(|s| s.datasets()).is_err());
        assert!(pool.breaker_open());
        assert_eq!(pool.counters().breaker_trips, 1);
        // While open: fast-fail without dialing.
        let before = dials.load(Ordering::SeqCst);
        assert!(matches!(
            pool.with_conn(|s| s.datasets()),
            Err(PoolError::Unavailable { .. })
        ));
        assert_eq!(dials.load(Ordering::SeqCst), before);
        assert_eq!(pool.counters().breaker_fast_fails, 1);
        // After the cooldown the probe dials again and succeeds.
        std::thread::sleep(Duration::from_millis(50));
        pool.with_conn(|s| s.datasets()).unwrap();
        assert!(!pool.breaker_open());
    }

    #[test]
    fn full_pool_answers_busy_after_the_checkout_timeout() {
        let (pool, _) = pool_with(1, 0, Duration::from_millis(30));
        let pool = Arc::new(pool);
        let p2 = pool.clone();
        // Hold the only connection hostage past the waiter's timeout.
        let holder = std::thread::spawn(move || {
            p2.with_conn(|s| {
                std::thread::sleep(Duration::from_millis(120));
                s.datasets()
            })
            .unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            pool.with_conn(|s| s.datasets()),
            Err(PoolError::Busy)
        ));
        assert_eq!(pool.counters().busy_timeouts, 1);
        holder.join().unwrap();
        // Released now: the next checkout reuses it.
        pool.with_conn(|s| s.datasets()).unwrap();
    }

    #[test]
    fn typed_rejections_keep_the_connection_io_errors_drop_it() {
        let (pool, dials) = pool_with(1, 0, Duration::from_millis(100));
        // Overloaded is a Service error and the connection survives.
        match pool.with_conn(|s| s.submit("ds", 1.0, 4, false)) {
            Err(PoolError::Service(e)) => {
                assert_eq!(e.retry_after(), Some(Duration::from_secs(1)));
            }
            other => panic!("expected Service, got {:?}", other.map(|_| ())),
        }
        pool.with_conn(|s| s.datasets()).unwrap();
        assert_eq!(dials.load(Ordering::SeqCst), 1, "connection was reused");
        // An Io failure mid-exchange drops the connection…
        assert!(matches!(
            pool.with_conn(|s| -> Result<(), ClientError> {
                let _ = s;
                Err(ClientError::Io(std::io::Error::other("cut")))
            }),
            Err(PoolError::Unavailable { .. })
        ));
        assert_eq!(pool.counters().dropped, 1);
        // …so the next checkout dials fresh.
        pool.with_conn(|s| s.datasets()).unwrap();
        assert_eq!(dials.load(Ordering::SeqCst), 2);
    }
}
