//! Deterministic fault injection for the daemon's I/O path.
//!
//! Two test transports implement [`Transport`]:
//!
//! - [`MemTransport`] replays a *scripted* byte schedule (receive these
//!   bytes, idle one poll, close) against a connection handler with no
//!   socket involved, capturing everything the handler writes — the
//!   workhorse of the protocol-robustness property tests.
//! - [`FaultTransport`] wraps any real transport and perturbs it
//!   according to a seeded [`FaultPlan`]: writes are split at arbitrary
//!   byte boundaries, delayed, or cut dead mid-stream. Because the plan
//!   derives every decision from one PCG stream, a failing chaos
//!   schedule replays exactly from its seed.
//!
//! Faults at the *job* level (a panicking variant inside an engine
//! worker) are injected one layer down, through
//! [`variantdbscan::fault`]; this module only models the network.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vbp_data::Pcg32;

use crate::transport::Transport;

/// Seeded schedule of I/O perturbations for one [`FaultTransport`].
///
/// All randomness flows from the seed; two plans with the same seed and
/// knobs perturb identical traffic identically.
pub struct FaultPlan {
    rng: Pcg32,
    /// Largest chunk a single write is allowed to push at once; writes
    /// longer than this are split at random boundaries. 0 disables
    /// splitting.
    pub max_write_chunk: usize,
    /// Probability of sleeping [`FaultPlan::delay`] before a chunk.
    pub delay_prob: f64,
    /// The injected delay (kept small: chaos runs many schedules).
    pub delay: Duration,
    /// Kill the connection after this many written bytes, mid-line if
    /// the boundary lands there.
    pub cut_after_bytes: Option<usize>,
}

impl FaultPlan {
    /// A plan that perturbs nothing — the identity baseline.
    pub fn benign(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: Pcg32::seeded(seed),
            max_write_chunk: 0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            cut_after_bytes: None,
        }
    }

    /// A plan that splits writes into 1–7 byte chunks with occasional
    /// short delays — hostile pacing, but every byte arrives.
    pub fn torn_writes(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: Pcg32::seeded(seed),
            max_write_chunk: 7,
            delay_prob: 0.25,
            delay: Duration::from_millis(1),
            cut_after_bytes: None,
        }
    }
}

/// A [`Transport`] wrapper that executes a [`FaultPlan`].
pub struct FaultTransport<T> {
    inner: T,
    plan: FaultPlan,
    written: usize,
    cut: bool,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultTransport<T> {
        FaultTransport {
            inner,
            plan,
            written: 0,
            cut: false,
        }
    }

    /// Total bytes successfully written through the faults.
    pub fn bytes_written(&self) -> usize {
        self.written
    }

    fn maybe_delay(&mut self) {
        if self.plan.delay_prob > 0.0 && self.plan.rng.next_f64() < self.plan.delay_prob {
            std::thread::sleep(self.plan.delay);
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.cut {
            return Ok(0);
        }
        self.inner.read(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut rest = buf;
        while !rest.is_empty() {
            if self.cut {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault plan cut the connection",
                ));
            }
            let mut take = if self.plan.max_write_chunk == 0 {
                rest.len()
            } else {
                let cap = self.plan.max_write_chunk.min(rest.len()) as u32;
                self.plan.rng.range_inclusive(1, cap.max(1)) as usize
            };
            // Land the cut exactly on its scheduled byte, even inside a
            // chunk.
            if let Some(cut_at) = self.plan.cut_after_bytes {
                let remaining = cut_at.saturating_sub(self.written);
                if remaining == 0 {
                    self.cut = true;
                    self.inner.close();
                    continue;
                }
                take = take.min(remaining);
            }
            self.maybe_delay();
            self.inner.write_all(&rest[..take])?;
            self.written += take;
            rest = &rest[take..];
        }
        Ok(())
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

/// One step of a [`MemTransport`] script.
#[derive(Clone, Debug)]
pub enum Step {
    /// Deliver these bytes to the next read(s).
    Recv(Vec<u8>),
    /// One read returns a timeout (`WouldBlock`) — the handler's stop
    /// poll fires.
    Idle,
    /// The peer disconnects: this and all later reads return EOF.
    Close,
}

/// A scripted in-memory [`Transport`]: reads replay a [`Step`] schedule,
/// writes accumulate into a shared buffer the test inspects afterwards.
pub struct MemTransport {
    steps: VecDeque<Step>,
    out: Arc<Mutex<Vec<u8>>>,
    closed: bool,
}

impl MemTransport {
    /// Builds the transport and returns the shared output buffer
    /// alongside it.
    pub fn new(steps: Vec<Step>) -> (MemTransport, Arc<Mutex<Vec<u8>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        (
            MemTransport {
                steps: steps.into(),
                out: Arc::clone(&out),
                closed: false,
            },
            out,
        )
    }
}

impl Transport for MemTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.closed {
            return Ok(0);
        }
        match self.steps.pop_front() {
            None | Some(Step::Close) => {
                self.closed = true;
                Ok(0)
            }
            Some(Step::Idle) => Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted idle")),
            Some(Step::Recv(bytes)) => {
                let n = bytes.len().min(buf.len());
                buf[..n].copy_from_slice(&bytes[..n]);
                if n < bytes.len() {
                    self.steps.push_front(Step::Recv(bytes[n..].to_vec()));
                }
                Ok(n)
            }
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer disconnected",
            ));
        }
        self.out.lock().unwrap().extend_from_slice(buf);
        Ok(())
    }

    fn set_read_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }

    fn close(&mut self) {
        self.closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An inner transport that records the chunk boundaries of writes.
    struct ChunkRecorder {
        chunks: Vec<Vec<u8>>,
        closed: bool,
    }

    impl Transport for ChunkRecorder {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.chunks.push(buf.to_vec());
            Ok(())
        }
        fn set_read_timeout(&mut self, _t: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn close(&mut self) {
            self.closed = true;
        }
    }

    #[test]
    fn torn_writes_split_deterministically_and_preserve_bytes() {
        let payload = b"SUBMIT cF_10k_5N@300 0.75 4 LABELS\n";
        let run = |seed| {
            let rec = ChunkRecorder {
                chunks: Vec::new(),
                closed: false,
            };
            let mut ft = FaultTransport::new(rec, FaultPlan::torn_writes(seed));
            ft.write_all(payload).unwrap();
            ft.inner.chunks
        };
        let a = run(7);
        assert!(a.len() > 1, "no splitting happened");
        assert_eq!(a.concat(), payload, "bytes corrupted by splitting");
        assert!(a.iter().all(|c| c.len() <= 7));
        assert_eq!(a, run(7), "same seed must split identically");
    }

    #[test]
    fn cut_lands_on_the_exact_byte() {
        let rec = ChunkRecorder {
            chunks: Vec::new(),
            closed: false,
        };
        let mut plan = FaultPlan::torn_writes(13);
        plan.cut_after_bytes = Some(10);
        let mut ft = FaultTransport::new(rec, plan);
        let err = ft.write_all(b"0123456789abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(ft.bytes_written(), 10);
        assert_eq!(ft.inner.chunks.concat(), b"0123456789");
        assert!(ft.inner.closed, "cut must tear the inner transport down");
        // Reads after the cut observe EOF, like a real half-open socket.
        assert_eq!(ft.read(&mut [0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn mem_transport_replays_script_and_captures_output() {
        let (mut mem, out) =
            MemTransport::new(vec![Step::Recv(b"abc".to_vec()), Step::Idle, Step::Close]);
        let mut buf = [0u8; 2];
        assert_eq!(mem.read(&mut buf).unwrap(), 2); // split read: "ab"
        assert_eq!(&buf, b"ab");
        assert_eq!(mem.read(&mut buf).unwrap(), 1); // remainder: "c"
        assert_eq!(
            mem.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        mem.write_all(b"OK hi\n").unwrap();
        assert_eq!(mem.read(&mut buf).unwrap(), 0);
        assert!(mem.write_all(b"late").is_err());
        assert_eq!(out.lock().unwrap().as_slice(), b"OK hi\n");
    }
}
