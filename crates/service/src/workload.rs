//! Cold-vs-warm throughput measurement against a live daemon.
//!
//! Shared by `vbp bench-service` and the `service_throughput` bench
//! binary so both report the same quantities: submit the same variant
//! workload twice over one connection, once against an empty cache
//! (cold) and once against the cache the first round populated (warm),
//! and compare variants/second.

use std::time::Instant;

use crate::client::{Client, ClientError};

/// One cold round + one warm round of the same workload.
#[derive(Clone, Debug)]
pub struct ColdWarmReport {
    /// Requests per round.
    pub requests: usize,
    /// Wall seconds for the cold round.
    pub cold_secs: f64,
    /// Wall seconds for the warm round.
    pub warm_secs: f64,
    /// How many warm-round requests hit a cached reuse source.
    pub warm_hits: usize,
    /// Final service counters (the `STATS` JSON line).
    pub stats_json: String,
}

impl ColdWarmReport {
    /// Cold-round throughput in variants per second.
    pub fn cold_vps(&self) -> f64 {
        self.requests as f64 / self.cold_secs.max(1e-9)
    }

    /// Warm-round throughput in variants per second.
    pub fn warm_vps(&self) -> f64 {
        self.requests as f64 / self.warm_secs.max(1e-9)
    }

    /// Warm speedup over cold (> 1 means the cache paid off).
    pub fn speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Submits `(dataset, eps, minpts)` requests in order, twice, against
/// `addr`. The caller must guarantee the daemon's cache started empty,
/// otherwise the "cold" round is already warm.
pub fn run_cold_warm(
    addr: std::net::SocketAddr,
    requests: &[(String, f64, usize)],
) -> Result<ColdWarmReport, ClientError> {
    let mut client = Client::connect(addr)?;
    let run_round = |client: &mut Client| -> Result<(f64, usize), ClientError> {
        let t0 = Instant::now();
        let mut hits = 0;
        for (dataset, eps, minpts) in requests {
            let reply = client.submit(dataset, *eps, *minpts, false)?;
            hits += usize::from(reply.warm);
        }
        Ok((t0.elapsed().as_secs_f64(), hits))
    };
    let (cold_secs, _) = run_round(&mut client)?;
    let (warm_secs, warm_hits) = run_round(&mut client)?;
    let stats_json = client.stats_json()?;
    client.quit();
    Ok(ColdWarmReport {
        requests: requests.len(),
        cold_secs,
        warm_secs,
        warm_hits,
        stats_json,
    })
}
