//! Cold-vs-warm throughput measurement against a live daemon.
//!
//! Shared by `vbp bench-service` and the `service_throughput` bench
//! binary so both report the same quantities: submit the same variant
//! workload twice over one connection, once against an empty cache
//! (cold) and once against the cache the first round populated (warm),
//! and compare variants/second.
//!
//! The probe is written against the transport-agnostic
//! [`DatasetService`] trait, so the same measurement runs over the
//! line protocol, the HTTP gateway, or through the router — whichever
//! service the caller hands in.

use std::time::Instant;

use crate::api::DatasetService;
use crate::client::{Client, ClientError};

/// One cold round + one warm round of the same workload.
#[derive(Clone, Debug)]
pub struct ColdWarmReport {
    /// Requests per round.
    pub requests: usize,
    /// Wall seconds for the cold round.
    pub cold_secs: f64,
    /// Wall seconds for the warm round.
    pub warm_secs: f64,
    /// How many warm-round requests hit a cached reuse source.
    pub warm_hits: usize,
    /// Final service counters (the `STATS` JSON line).
    pub stats_json: String,
}

impl ColdWarmReport {
    /// Cold-round throughput in variants per second.
    pub fn cold_vps(&self) -> f64 {
        self.requests as f64 / self.cold_secs.max(1e-9)
    }

    /// Warm-round throughput in variants per second.
    pub fn warm_vps(&self) -> f64 {
        self.requests as f64 / self.warm_secs.max(1e-9)
    }

    /// Warm speedup over cold (> 1 means the cache paid off).
    pub fn speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Submits `(dataset, eps, minpts)` requests in order, twice, over any
/// [`DatasetService`]. The caller must guarantee the service's cache
/// started empty, otherwise the "cold" round is already warm.
pub fn run_cold_warm_on(
    service: &mut dyn DatasetService,
    requests: &[(String, f64, usize)],
) -> Result<ColdWarmReport, ClientError> {
    let run_round = |service: &mut dyn DatasetService| -> Result<(f64, usize), ClientError> {
        let t0 = Instant::now();
        let mut hits = 0;
        for (dataset, eps, minpts) in requests {
            let reply = service.submit(dataset, *eps, *minpts, false)?;
            hits += usize::from(reply.warm);
        }
        Ok((t0.elapsed().as_secs_f64(), hits))
    };
    let (cold_secs, _) = run_round(service)?;
    let (warm_secs, warm_hits) = run_round(service)?;
    let stats_json = service.stats_json()?;
    Ok(ColdWarmReport {
        requests: requests.len(),
        cold_secs,
        warm_secs,
        warm_hits,
        stats_json,
    })
}

/// Line-protocol-only predecessor of [`run_cold_warm_on`].
#[deprecated(
    since = "0.1.0",
    note = "connect a `Client` (or any `DatasetService`) and call `run_cold_warm_on`"
)]
pub fn run_cold_warm(
    addr: std::net::SocketAddr,
    requests: &[(String, f64, usize)],
) -> Result<ColdWarmReport, ClientError> {
    let mut client = Client::connect(addr)?;
    let report = run_cold_warm_on(&mut client, requests)?;
    client.quit();
    Ok(report)
}

#[cfg(test)]
mod tests {
    /// The deprecated wrapper must keep its legacy contract: the
    /// original `(SocketAddr, requests)` signature, with connect
    /// failure surfaced as `ClientError::Io`.
    #[test]
    #[allow(deprecated, clippy::disallowed_methods)]
    fn legacy_run_cold_warm_keeps_its_signature_and_io_errors() {
        // Nothing listens on a reserved low port from an unprivileged
        // test; the wrapper must answer Io, not panic.
        let addr: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        match super::run_cold_warm(addr, &[]) {
            Err(crate::client::ClientError::Io(_)) => {}
            Err(other) => panic!("expected Io, got {other}"),
            Ok(_) => panic!("connect to a dead port cannot succeed"),
        }
    }
}
