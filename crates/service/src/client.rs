//! Blocking client for the `vbp-service` line protocol.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use vbp_geom::Point2;

use crate::api::{DatasetService, Health};
use crate::protocol::{ErrorCode, Request};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level trouble.
    Io(std::io::Error),
    /// Admission backpressure: the server refused the request because
    /// its bounded queue is full, and (when it said so) how long to
    /// back off before retrying. Both transports produce this variant —
    /// the line protocol via a `retry-after=N` message token, HTTP via
    /// the `Retry-After` header — so backoff logic written against the
    /// [`DatasetService`](crate::api::DatasetService) trait works on
    /// either wire.
    Overloaded {
        /// The server's parsed backoff hint, when it sent one.
        retry_after: Option<Duration>,
        /// Human-readable detail (hint token included, verbatim).
        message: String,
    },
    /// The server answered `ERR` (any code other than `overloaded`,
    /// which gets the typed [`ClientError::Overloaded`] above).
    Rejected {
        /// Typed rejection code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered something the protocol does not allow.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Overloaded { message, .. } => {
                write!(f, "rejected (overloaded): {message}")
            }
            ClientError::Rejected { code, message } => write!(f, "rejected ({code}): {message}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Builds the typed rejection for one `(code, message)` pair, giving
    /// `overloaded` its dedicated variant with the parsed backoff hint.
    /// Both transports funnel their server rejections through here so
    /// the taxonomy cannot drift between wires.
    pub(crate) fn rejected(code: ErrorCode, message: String) -> ClientError {
        if code == ErrorCode::Overloaded {
            ClientError::Overloaded {
                retry_after: crate::api::parse_retry_after(&message),
                message,
            }
        } else {
            ClientError::Rejected { code, message }
        }
    }

    /// Returns the typed rejection code, if this is a server rejection.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Overloaded { .. } => Some(ErrorCode::Overloaded),
            ClientError::Rejected { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// The server's backoff hint, if this is an overloaded rejection
    /// that carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Overloaded { retry_after, .. } => *retry_after,
            _ => None,
        }
    }
}

/// The answer to a successful `SUBMIT`.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitReply {
    /// Clusters found.
    pub clusters: usize,
    /// Noise points.
    pub noise: usize,
    /// `true` when the variant reused a *cached* (cross-run) result.
    pub warm: bool,
    /// `true` when it reused any completed result (cached or in-batch).
    pub reused: bool,
    /// Server-side engine time for the batch this request rode in.
    pub ms: f64,
    /// Labels in submission point order, when requested.
    pub labels: Option<Vec<u32>>,
}

/// The answer to a successful `APPEND`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppendReply {
    /// Points inserted by this batch.
    pub appended: usize,
    /// Dataset size after the batch.
    pub total: usize,
    /// Cache entries incrementally repaired (extended in place).
    pub repaired: usize,
    /// Cache entries dropped because the batch touched their ε-region.
    pub dropped: usize,
    /// Server-side append time.
    pub ms: f64,
}

/// The answer to a successful `WATCH`: the census at subscription time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchReply {
    /// Clusters at subscription time.
    pub clusters: usize,
    /// Noise points at subscription time.
    pub noise: usize,
}

/// One `DELTA` push line, parsed.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Dataset the delta describes.
    pub dataset: String,
    /// ε of the watched variant.
    pub eps: f64,
    /// minpts of the watched variant.
    pub minpts: usize,
    /// Points the triggering append inserted.
    pub appended: usize,
    /// Clusters born in this batch (no pre-batch core among members).
    pub new: usize,
    /// Previously-distinct clusters merged away by this batch.
    pub absorbed: usize,
    /// Points promoted to core by this batch.
    pub promoted: usize,
    /// Census after the batch.
    pub clusters: usize,
    /// Noise count after the batch.
    pub noise: usize,
}

impl Delta {
    /// Parses a `DELTA <ds> <eps> <minpts> k=v…` line; `None` when the
    /// line is not a well-formed delta push.
    pub fn parse(line: &str) -> Option<Delta> {
        let rest = line.strip_prefix("DELTA ")?;
        let mut tokens = rest.split_ascii_whitespace();
        let mut delta = Delta {
            dataset: tokens.next()?.to_string(),
            eps: tokens.next()?.parse().ok()?,
            minpts: tokens.next()?.parse().ok()?,
            appended: 0,
            new: 0,
            absorbed: 0,
            promoted: 0,
            clusters: 0,
            noise: 0,
        };
        for tok in tokens {
            let (key, value) = tok.split_once('=')?;
            let value: usize = value.parse().ok()?;
            match key {
                "appended" => delta.appended = value,
                "new" => delta.new = value,
                "absorbed" => delta.absorbed = value,
                "promoted" => delta.promoted = value,
                "clusters" => delta.clusters = value,
                "noise" => delta.noise = value,
                _ => {} // forward compatibility
            }
        }
        Some(delta)
    }
}

/// The client-side framing cap: a reply line longer than this is a
/// protocol violation, not something to buffer. Sized for the worst
/// legitimate line (a `LABELS` continuation for a millions-of-points
/// dataset), far under anything a corrupt or hostile server could use
/// to balloon client memory.
const MAX_REPLY_BYTES: u64 = 64 << 20;

/// Reads one newline-terminated line, refusing to buffer more than
/// `cap` bytes of it.
fn bounded_line<R: BufRead>(reader: &mut R, cap: u64) -> Result<String, ClientError> {
    let mut line = String::new();
    let n = reader.by_ref().take(cap).read_line(&mut line)?;
    if n == 0 {
        return Err(ClientError::Protocol("server closed the connection".into()));
    }
    if n as u64 == cap && !line.ends_with('\n') {
        return Err(ClientError::Protocol(format!(
            "reply line exceeded {cap} bytes"
        )));
    }
    Ok(line.trim_end_matches(['\n', '\r']).to_string())
}

/// One connection to a `vbp-service` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    protocol_version: u32,
    /// `DELTA` pushes that arrived while waiting for a reply; served to
    /// [`Client::poll_delta`] in arrival order.
    pending_deltas: VecDeque<String>,
}

impl Client {
    /// Connects and performs the `HELLO` handshake, remembering the
    /// protocol version the server advertised (see
    /// [`crate::protocol::PROTOCOL_VERSION`]) so version-gated calls like
    /// [`Client::metrics`] can fail with a typed error against an older
    /// daemon instead of a confusing wire rejection.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: stream,
            protocol_version: 0,
            pending_deltas: VecDeque::new(),
        };
        let line = client.round_trip(&Request::Hello)?;
        if !line.starts_with("vbp-service") {
            return Err(ClientError::Protocol(format!(
                "unexpected HELLO reply '{line}'"
            )));
        }
        // Pre-versioning servers said just `vbp-service`; treat a missing
        // or unparseable number as version 1 (the original verb set).
        client.protocol_version = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|tok| tok.parse().ok())
            .unwrap_or(1);
        Ok(client)
    }

    /// The protocol version the server advertised at connect time.
    pub fn protocol_version(&self) -> u32 {
        self.protocol_version
    }

    /// Sets the read timeout for replies (useful against a draining
    /// server).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        bounded_line(&mut self.reader, MAX_REPLY_BYTES)
    }

    /// Sends `request`, returns the `OK` payload or a typed rejection.
    /// `DELTA` pushes arriving ahead of the reply are stashed for
    /// [`Client::poll_delta`] — the server only interleaves them
    /// *between* exchanges, never inside one.
    fn round_trip(&mut self, request: &Request) -> Result<String, ClientError> {
        self.send(request)?;
        loop {
            let line = self.read_line()?;
            if line.starts_with("DELTA ") {
                self.pending_deltas.push_back(line);
                continue;
            }
            if let Some(payload) = line.strip_prefix("OK") {
                return Ok(payload.trim_start().to_string());
            }
            if let Some(rest) = line.strip_prefix("ERR ") {
                let (code_token, message) = rest.split_once(' ').unwrap_or((rest, ""));
                let code = ErrorCode::from_str_token(code_token).ok_or_else(|| {
                    ClientError::Protocol(format!("unknown ERR code '{code_token}'"))
                })?;
                return Err(ClientError::rejected(code, message.to_string()));
            }
            return Err(ClientError::Protocol(format!("unparseable reply '{line}'")));
        }
    }

    /// Lists datasets as `(name, points)` pairs.
    pub fn datasets(&mut self) -> Result<Vec<(String, usize)>, ClientError> {
        let payload = self.round_trip(&Request::Datasets)?;
        payload
            .split_ascii_whitespace()
            .map(|tok| {
                let (name, size) = tok
                    .split_once('=')
                    .ok_or_else(|| ClientError::Protocol(format!("bad dataset token '{tok}'")))?;
                let size = size
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad dataset size '{tok}'")))?;
                Ok((name.to_string(), size))
            })
            .collect()
    }

    /// Clusters one variant on a named dataset.
    pub fn submit(
        &mut self,
        dataset: &str,
        eps: f64,
        minpts: usize,
        want_labels: bool,
    ) -> Result<SubmitReply, ClientError> {
        let payload = self.round_trip(&Request::Submit {
            dataset: dataset.to_string(),
            eps,
            minpts,
            labels: want_labels,
        })?;
        let mut reply = SubmitReply {
            clusters: 0,
            noise: 0,
            warm: false,
            reused: false,
            ms: 0.0,
            labels: None,
        };
        for tok in payload.split_ascii_whitespace() {
            let Some((key, value)) = tok.split_once('=') else {
                return Err(ClientError::Protocol(format!("bad reply token '{tok}'")));
            };
            match key {
                "clusters" => reply.clusters = parse_num(tok, value)?,
                "noise" => reply.noise = parse_num(tok, value)?,
                "warm" => reply.warm = value == "1",
                "reused" => reply.reused = value == "1",
                "ms" => {
                    reply.ms = value
                        .parse()
                        .map_err(|_| ClientError::Protocol(format!("bad ms '{tok}'")))?
                }
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        if want_labels {
            let line = self.read_line()?;
            let mut tokens = line.split_ascii_whitespace();
            if tokens.next() != Some("LABELS") {
                return Err(ClientError::Protocol(format!(
                    "expected LABELS line, got '{line}'"
                )));
            }
            let n: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ClientError::Protocol("bad LABELS count".into()))?;
            let labels: Result<Vec<u32>, _> = tokens.map(str::parse).collect();
            let labels = labels.map_err(|_| ClientError::Protocol("non-numeric label".into()))?;
            if labels.len() != n {
                return Err(ClientError::Protocol(format!(
                    "LABELS promised {n} labels, carried {}",
                    labels.len()
                )));
            }
            reply.labels = Some(labels);
        }
        Ok(reply)
    }

    /// Streams a batch of points into a registered dataset (`APPEND`,
    /// protocol version ≥ 3).
    pub fn append(&mut self, dataset: &str, points: &[Point2]) -> Result<AppendReply, ClientError> {
        if self.protocol_version < 3 {
            return Err(ClientError::Protocol(format!(
                "server protocol version {} predates APPEND (needs >= 3)",
                self.protocol_version
            )));
        }
        let payload = self.round_trip(&Request::Append {
            dataset: dataset.to_string(),
            points: points.to_vec(),
        })?;
        let mut reply = AppendReply {
            appended: 0,
            total: 0,
            repaired: 0,
            dropped: 0,
            ms: 0.0,
        };
        for tok in payload.split_ascii_whitespace() {
            let Some((key, value)) = tok.split_once('=') else {
                return Err(ClientError::Protocol(format!("bad reply token '{tok}'")));
            };
            match key {
                "appended" => reply.appended = parse_num(tok, value)?,
                "total" => reply.total = parse_num(tok, value)?,
                "repaired" => reply.repaired = parse_num(tok, value)?,
                "dropped" => reply.dropped = parse_num(tok, value)?,
                "ms" => {
                    reply.ms = value
                        .parse()
                        .map_err(|_| ClientError::Protocol(format!("bad ms '{tok}'")))?
                }
                _ => {} // forward compatibility
            }
        }
        Ok(reply)
    }

    /// Subscribes this connection to cluster deltas for `(dataset, eps,
    /// minpts)` (`WATCH`, protocol version ≥ 3). Subsequent appends to
    /// the dataset push `DELTA` lines, read via [`Client::poll_delta`].
    pub fn watch(
        &mut self,
        dataset: &str,
        eps: f64,
        minpts: usize,
    ) -> Result<WatchReply, ClientError> {
        if self.protocol_version < 3 {
            return Err(ClientError::Protocol(format!(
                "server protocol version {} predates WATCH (needs >= 3)",
                self.protocol_version
            )));
        }
        let payload = self.round_trip(&Request::Watch {
            dataset: dataset.to_string(),
            eps,
            minpts,
        })?;
        let mut reply = WatchReply {
            clusters: 0,
            noise: 0,
        };
        for tok in payload.split_ascii_whitespace() {
            if let Some((key, value)) = tok.split_once('=') {
                match key {
                    "clusters" => reply.clusters = parse_num(tok, value)?,
                    "noise" => reply.noise = parse_num(tok, value)?,
                    _ => {}
                }
            }
        }
        Ok(reply)
    }

    /// Waits up to `timeout` for the next `DELTA` push on this
    /// connection; `Ok(None)` on timeout. Pushes that arrived stashed
    /// behind an earlier reply are returned first, in order.
    pub fn poll_delta(&mut self, timeout: Duration) -> Result<Option<Delta>, ClientError> {
        if let Some(line) = self.pending_deltas.pop_front() {
            return Delta::parse(&line)
                .map(Some)
                .ok_or_else(|| ClientError::Protocol(format!("bad DELTA line '{line}'")));
        }
        self.writer.set_read_timeout(Some(timeout))?;
        let result = bounded_line(&mut self.reader, MAX_REPLY_BYTES);
        let _ = self.writer.set_read_timeout(None);
        match result {
            Ok(line) if line.starts_with("DELTA ") => Delta::parse(&line)
                .map(Some)
                .ok_or_else(|| ClientError::Protocol(format!("bad DELTA line '{line}'"))),
            Ok(line) => Err(ClientError::Protocol(format!(
                "expected a DELTA push, got '{line}'"
            ))),
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Fetches the service counters as one JSON line.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        self.round_trip(&Request::Stats)
    }

    /// Fetches the Prometheus-style text exposition (`METRICS`,
    /// protocol version ≥ 2). The reply is framed as `OK <n>` plus `n`
    /// continuation lines; the returned string joins them with newlines.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        if self.protocol_version < 2 {
            return Err(ClientError::Protocol(format!(
                "server protocol version {} predates METRICS (needs >= 2)",
                self.protocol_version
            )));
        }
        let payload = self.round_trip(&Request::Metrics)?;
        let n: usize = payload
            .trim()
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad METRICS count '{payload}'")))?;
        let mut out = String::new();
        for _ in 0..n {
            out.push_str(&self.read_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Asks the server to drain and shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(&Request::Shutdown).map(|_| ())
    }

    /// Polite connection close.
    pub fn quit(&mut self) {
        let _ = self.send(&Request::Quit);
    }

    /// Liveness probe over the line protocol. The wire has no dedicated
    /// verb; a `STATS` round trip both proves the daemon is answering
    /// and carries the `draining` flag in its JSON document.
    pub fn healthz(&mut self) -> Result<Health, ClientError> {
        let stats = self.stats_json()?;
        let doc = crate::http::parse_json(stats.as_bytes())
            .map_err(|e| ClientError::Protocol(format!("unparseable STATS document: {e}")))?;
        let draining = doc
            .get("draining")
            .and_then(crate::http::JsonValue::as_bool)
            .ok_or_else(|| ClientError::Protocol("STATS lacks the 'draining' flag".into()))?;
        Ok(Health {
            accepting: !draining,
            draining,
        })
    }
}

impl DatasetService for Client {
    fn submit(
        &mut self,
        dataset: &str,
        eps: f64,
        minpts: usize,
        want_labels: bool,
    ) -> Result<SubmitReply, ClientError> {
        Client::submit(self, dataset, eps, minpts, want_labels)
    }

    fn append(&mut self, dataset: &str, points: &[Point2]) -> Result<AppendReply, ClientError> {
        Client::append(self, dataset, points)
    }

    fn datasets(&mut self) -> Result<Vec<(String, usize)>, ClientError> {
        Client::datasets(self)
    }

    fn stats_json(&mut self) -> Result<String, ClientError> {
        Client::stats_json(self)
    }

    fn metrics(&mut self) -> Result<String, ClientError> {
        Client::metrics(self)
    }

    fn healthz(&mut self) -> Result<Health, ClientError> {
        Client::healthz(self)
    }
}

fn parse_num(tok: &str, value: &str) -> Result<usize, ClientError> {
    value
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad number '{tok}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Pins the line-protocol half of the typed-backoff contract: an
    /// `ERR overloaded` whose message carries the `retry-after=N` token
    /// becomes [`ClientError::Overloaded`] with the parsed hint, while
    /// a hint-less message still maps to the typed variant with `None`.
    #[test]
    fn overloaded_rejections_carry_the_typed_backoff_hint() {
        let err = ClientError::rejected(ErrorCode::Overloaded, "retry-after=1 queue full".into());
        assert_eq!(err.code(), Some(ErrorCode::Overloaded));
        assert_eq!(err.retry_after(), Some(Duration::from_secs(1)));
        assert!(
            matches!(&err, ClientError::Overloaded { message, .. } if message.contains("queue full")),
            "{err}"
        );

        let bare = ClientError::rejected(ErrorCode::Overloaded, "queue full".into());
        assert_eq!(bare.code(), Some(ErrorCode::Overloaded));
        assert_eq!(bare.retry_after(), None);

        // Every other code keeps the plain Rejected shape.
        let other = ClientError::rejected(ErrorCode::Draining, "retry-after=1 going down".into());
        assert!(matches!(other, ClientError::Rejected { .. }));
        assert_eq!(other.retry_after(), None);
    }

    #[test]
    fn bounded_line_frames_and_refuses() {
        let mut ok = Cursor::new(b"OK hello\nrest".to_vec());
        assert_eq!(bounded_line(&mut ok, 64).unwrap(), "OK hello");
        assert_eq!(bounded_line(&mut ok, 64).unwrap(), "rest"); // EOF-terminated tail

        let mut eof = Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            bounded_line(&mut eof, 64),
            Err(ClientError::Protocol(_))
        ));

        // A line that is exactly the cap, newline included, still fits.
        let mut exact = Cursor::new(b"abc\n".to_vec());
        assert_eq!(bounded_line(&mut exact, 4).unwrap(), "abc");

        // One past the cap is refused without buffering the rest.
        let mut over = Cursor::new(vec![b'x'; 4096]);
        let err = bounded_line(&mut over, 64).unwrap_err();
        assert!(
            matches!(&err, ClientError::Protocol(m) if m.contains("exceeded 64 bytes")),
            "{err}"
        );
    }
}
