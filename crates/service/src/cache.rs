//! Cross-run reuse cache over the `(ε, minpts)` dominance lattice.
//!
//! The engine already exploits the paper's inclusion criteria (§IV-B,
//! Algorithm 3) *within* one batch run; this cache extends the same
//! criteria *across* runs. A completed [`ClusterResult`] for variant
//! `v_j` is a valid warm-start source for a later request `v_i` exactly
//! when `v_i` dominates it:
//!
//! ```text
//! v_i.ε ≥ v_j.ε  ∧  v_i.minpts ≤ v_j.minpts
//! ```
//!
//! (the mirror of [`Variant::can_reuse`], which asks the question from
//! the consumer's side). Among the dominated entries of the same dataset,
//! [`DominanceCache::lookup`] returns the nearest by normalized parameter
//! distance — the same criterion `SchedGreedy` applies to in-run sources,
//! so the cache behaves like a persistent extension of the scheduler's
//! completed set.
//!
//! Memory is bounded by an LRU byte budget: every hit refreshes an
//! entry's clock stamp, and inserts evict the stalest entries until the
//! new total fits. Entries larger than the whole budget are rejected
//! outright. All traffic is counted in [`CacheStats`] so the service's
//! `STATS` command can report hit/miss/eviction rates.

use std::sync::Arc;

use variantdbscan::{JsonObject, Variant};
use vbp_dbscan::ClusterResult;

/// Fixed per-entry bookkeeping charge (strings, stamps, vec headers).
const ENTRY_OVERHEAD_BYTES: usize = 96;

/// A successful [`DominanceCache::lookup`].
#[derive(Clone, Debug)]
pub struct CacheHit {
    /// The cached variant whose clusters may be reused.
    pub variant: Variant,
    /// Its completed clustering, in the dataset's tree order.
    pub result: Arc<ClusterResult>,
}

#[derive(Debug)]
struct CacheEntry {
    dataset: String,
    variant: Variant,
    result: Arc<ClusterResult>,
    bytes: usize,
    stamp: u64,
}

/// Counters exposed through the service `STATS` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
    /// Lookups that returned a dominated entry.
    pub hits: u64,
    /// Lookups that found nothing valid to reuse.
    pub misses: u64,
    /// Results stored (refreshes of an identical variant count too).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bytes reclaimed by those evictions.
    pub evicted_bytes: u64,
    /// Inserts rejected because one entry exceeded the whole budget.
    pub rejected_oversize: u64,
    /// Entries repaired (extended in place) by append maintenance.
    pub repaired: u64,
    /// Entries dropped by append maintenance (ε-region touched).
    pub repair_dropped: u64,
}

impl CacheStats {
    /// Machine-readable form for the `STATS` line protocol command.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .uint("entries", self.entries as u64)
            .uint("bytes", self.bytes as u64)
            .uint("budget_bytes", self.budget_bytes as u64)
            .uint("hits", self.hits)
            .uint("misses", self.misses)
            .uint("insertions", self.insertions)
            .uint("evictions", self.evictions)
            .uint("evicted_bytes", self.evicted_bytes)
            .uint("rejected_oversize", self.rejected_oversize)
            .uint("repaired", self.repaired)
            .uint("repair_dropped", self.repair_dropped)
            .finish()
    }
}

/// Outcome of one [`DominanceCache::maintain_after_append`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Entries whose results were repaired (extended to the appended
    /// dataset length) and kept.
    pub repaired: usize,
    /// Entries dropped because the insertion touched their ε-region.
    pub dropped: usize,
}

/// An LRU-bounded store of completed clusterings, keyed by dataset name
/// and searched by parameter dominance.
///
/// Results are stored (and returned) in the owning dataset's *tree
/// order*; they are only meaningful together with the
/// [`PreparedIndex`](variantdbscan::PreparedIndex) they were computed on,
/// which the registry keeps alive for the dataset's whole lifetime.
#[derive(Debug)]
pub struct DominanceCache {
    entries: Vec<CacheEntry>,
    bytes: usize,
    budget: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    evicted_bytes: u64,
    rejected_oversize: u64,
    repaired: u64,
    repair_dropped: u64,
}

/// Estimated resident size of one cached result: the label array plus the
/// per-cluster member lists, four bytes per id each.
pub fn result_bytes(result: &ClusterResult) -> usize {
    let members: usize = result.iter_clusters().map(|(_, m)| m.len()).sum();
    (result.len() + members) * 4 + ENTRY_OVERHEAD_BYTES
}

impl DominanceCache {
    /// An empty cache with the given byte budget. A budget of zero
    /// disables storage entirely (every lookup misses, every insert is
    /// rejected as oversize).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: Vec::new(),
            bytes: 0,
            budget: budget_bytes,
            clock: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            evicted_bytes: 0,
            rejected_oversize: 0,
            repaired: 0,
            repair_dropped: 0,
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds the best warm-start source for `v` on `dataset`: among the
    /// entries `v` dominates, the one at minimal normalized parameter
    /// distance (ties broken by ascending ε then descending minpts, so
    /// the answer is deterministic). Refreshes the winner's LRU stamp.
    pub fn lookup(&mut self, dataset: &str, v: Variant) -> Option<CacheHit> {
        // Normalize distances over the candidate neighborhood: the spread
        // of parameters across v and everything it dominates here.
        let (mut eps_lo, mut eps_hi) = (v.eps, v.eps);
        let (mut mp_lo, mut mp_hi) = (v.minpts, v.minpts);
        let mut any = false;
        for e in &self.entries {
            if e.dataset == dataset && v.can_reuse(&e.variant) {
                any = true;
                eps_lo = eps_lo.min(e.variant.eps);
                eps_hi = eps_hi.max(e.variant.eps);
                mp_lo = mp_lo.min(e.variant.minpts);
                mp_hi = mp_hi.max(e.variant.minpts);
            }
        }
        if !any {
            self.misses += 1;
            return None;
        }
        // Zero-width guard: when every candidate (and `v` itself) shares
        // one ε — or one minpts — that component's spread is 0 and the
        // normalized distance would divide by it. Substituting a neutral
        // divisor of 1.0 makes the degenerate component contribute
        // exactly 0 for every candidate (all numerators are 0 too),
        // instead of routing 0/0-shaped inputs through subnormal
        // divisors. Distances stay finite for every entry — pinned by
        // the `cache_props` zero-width property test.
        let eps_width = eps_hi - eps_lo;
        let eps_range = if eps_width > 0.0 { eps_width } else { 1.0 };
        let minpts_range = (mp_hi - mp_lo).max(1) as f64;

        let mut best: Option<(f64, usize)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.dataset != dataset || !v.can_reuse(&e.variant) {
                continue;
            }
            let d = v.param_distance(&e.variant, eps_range, minpts_range);
            debug_assert!(d.is_finite(), "non-finite candidate distance {d}");
            let better = match best {
                None => true,
                Some((bd, bi)) => {
                    let b = &self.entries[bi].variant;
                    d < bd
                        || (d == bd
                            && (e.variant.eps < b.eps
                                || (e.variant.eps == b.eps && e.variant.minpts > b.minpts)))
                }
            };
            if better {
                best = Some((d, i));
            }
        }
        let (_, i) = best.expect("candidate set was non-empty");
        self.hits += 1;
        self.clock += 1;
        self.entries[i].stamp = self.clock;
        Some(CacheHit {
            variant: self.entries[i].variant,
            result: Arc::clone(&self.entries[i].result),
        })
    }

    /// Stores a completed clustering. An existing entry for the same
    /// `(dataset, variant)` is refreshed in place; otherwise stale
    /// entries are evicted (least-recently-used first) until the new
    /// entry fits the budget.
    pub fn insert(&mut self, dataset: &str, variant: Variant, result: Arc<ClusterResult>) {
        let bytes = result_bytes(&result);
        if bytes > self.budget {
            self.rejected_oversize += 1;
            return;
        }
        self.clock += 1;
        self.insertions += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.dataset == dataset && e.variant == variant)
        {
            self.bytes = self.bytes - e.bytes + bytes;
            e.result = result;
            e.bytes = bytes;
            e.stamp = self.clock;
        } else {
            self.entries.push(CacheEntry {
                dataset: dataset.to_string(),
                variant,
                result,
                bytes,
                stamp: self.clock,
            });
            self.bytes += bytes;
        }
        self.evict_to_budget();
    }

    /// Evicts least-recently-used entries until the byte ledger fits the
    /// budget again.
    fn evict_to_budget(&mut self) {
        while self.bytes > self.budget {
            let stalest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("bytes > 0 implies entries");
            let gone = self.entries.swap_remove(stalest);
            self.bytes -= gone.bytes;
            self.evictions += 1;
            self.evicted_bytes += gone.bytes as u64;
        }
    }

    /// Maintains every entry of `dataset` after a streaming append: the
    /// judge inspects each `(variant, cached result)` and returns either
    /// the repaired result (the old clustering extended to the mutated
    /// dataset's length — only sound when the insertion provably did not
    /// touch the entry's ε-region) or `None` to drop the entry. Repaired
    /// entries are re-charged at their new size and the LRU is re-evicted
    /// to budget afterwards; dropped entries do not count as evictions.
    pub fn maintain_after_append(
        &mut self,
        dataset: &str,
        mut judge: impl FnMut(&Variant, &ClusterResult) -> Option<Arc<ClusterResult>>,
    ) -> RepairStats {
        let mut stats = RepairStats::default();
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].dataset != dataset {
                i += 1;
                continue;
            }
            match judge(&self.entries[i].variant, &self.entries[i].result) {
                Some(next) => {
                    let bytes = result_bytes(&next);
                    let e = &mut self.entries[i];
                    self.bytes = self.bytes - e.bytes + bytes;
                    e.result = next;
                    e.bytes = bytes;
                    stats.repaired += 1;
                    i += 1;
                }
                None => {
                    // swap_remove moves an unvisited tail entry into `i`,
                    // so the index is intentionally not advanced.
                    let gone = self.entries.swap_remove(i);
                    self.bytes -= gone.bytes;
                    stats.dropped += 1;
                }
            }
        }
        self.repaired += stats.repaired as u64;
        self.repair_dropped += stats.dropped as u64;
        self.evict_to_budget();
        stats
    }

    /// A counter-neutral copy of every live entry, in deterministic
    /// `(dataset, ε, minpts)` order regardless of insertion, refresh, or
    /// `swap_remove` history — the streaming equivalence suite audits
    /// these against the mutated datasets, and the warm-state store
    /// relies on the ordering so that snapshotting an unchanged daemon
    /// twice yields byte-identical files.
    pub fn snapshot_entries(&self) -> Vec<(String, Variant, Arc<ClusterResult>)> {
        let mut out: Vec<_> = self
            .entries
            .iter()
            .map(|e| (e.dataset.clone(), e.variant, Arc::clone(&e.result)))
            .collect();
        out.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.eps.total_cmp(&b.1.eps))
                .then_with(|| a.1.minpts.cmp(&b.1.minpts))
        });
        out
    }

    /// Rewrites the stored result of every entry of `dataset` through
    /// `f`, dropping entries for which `f` returns `None`. Counter-
    /// neutral: unlike [`DominanceCache::maintain_after_append`] this
    /// touches neither the repaired/dropped counters nor the eviction
    /// counters beyond what a genuine size increase forces — it exists
    /// for *order-preserving* rewrites, specifically re-keying cached
    /// tree-order labels after the warm-state store flushes a dirty
    /// append tail through a full re-sort (same points, new
    /// permutation).
    pub fn remap_results(
        &mut self,
        dataset: &str,
        mut f: impl FnMut(&Variant, &ClusterResult) -> Option<Arc<ClusterResult>>,
    ) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].dataset != dataset {
                i += 1;
                continue;
            }
            match f(&self.entries[i].variant, &self.entries[i].result) {
                Some(next) => {
                    let bytes = result_bytes(&next);
                    let e = &mut self.entries[i];
                    self.bytes = self.bytes - e.bytes + bytes;
                    e.result = next;
                    e.bytes = bytes;
                    i += 1;
                }
                None => {
                    let gone = self.entries.swap_remove(i);
                    self.bytes -= gone.bytes;
                }
            }
        }
        self.evict_to_budget();
    }

    /// Structural self-check, used by the chaos suite after every fault
    /// schedule: the byte ledger matches the entries, the budget holds,
    /// no stamp outruns the clock, and no `(dataset, variant)` key is
    /// duplicated. Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let summed: usize = self.entries.iter().map(|e| e.bytes).sum();
        if summed != self.bytes {
            return Err(format!(
                "byte ledger drift: entries sum to {summed}, ledger says {}",
                self.bytes
            ));
        }
        if self.bytes > self.budget {
            return Err(format!(
                "over budget: {} bytes held, {} allowed",
                self.bytes, self.budget
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.stamp > self.clock {
                return Err(format!(
                    "entry {} stamp {} outruns clock {}",
                    e.variant, e.stamp, self.clock
                ));
            }
            for other in &self.entries[i + 1..] {
                if other.dataset == e.dataset && other.variant == e.variant {
                    return Err(format!("duplicate key ({}, {})", e.dataset, e.variant));
                }
            }
        }
        Ok(())
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            bytes: self.bytes,
            budget_bytes: self.budget,
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            evicted_bytes: self.evicted_bytes,
            rejected_oversize: self.rejected_oversize,
            repaired: self.repaired,
            repair_dropped: self.repair_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbp_dbscan::ClusterResult;

    fn result_of(labels: Vec<u32>) -> Arc<ClusterResult> {
        Arc::new(ClusterResult::from_labels(vbp_dbscan::Labels::from_raw(
            labels,
        )))
    }

    #[test]
    fn lookup_honors_dominance() {
        let mut cache = DominanceCache::new(1 << 20);
        cache.insert("d", Variant::new(1.0, 8), result_of(vec![0, 0, 1, 1]));
        // ε too small: the cached ε exceeds the request's.
        assert!(cache.lookup("d", Variant::new(0.5, 8)).is_none());
        // minpts too large on the request side is fine; too small cached
        // minpts is not representable here — the valid direction:
        let hit = cache.lookup("d", Variant::new(1.5, 4)).unwrap();
        assert_eq!(hit.variant, Variant::new(1.0, 8));
        // Wrong dataset never matches.
        assert!(cache.lookup("other", Variant::new(1.5, 4)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn lookup_prefers_nearest_dominated_entry() {
        let mut cache = DominanceCache::new(1 << 20);
        cache.insert("d", Variant::new(0.2, 9), result_of(vec![0; 4]));
        cache.insert("d", Variant::new(0.9, 6), result_of(vec![0; 4]));
        cache.insert("d", Variant::new(1.0, 5), result_of(vec![0; 4]));
        let hit = cache.lookup("d", Variant::new(1.0, 5)).unwrap();
        assert_eq!(hit.variant, Variant::new(1.0, 5), "identity is distance 0");
        let hit = cache.lookup("d", Variant::new(0.95, 6)).unwrap();
        assert_eq!(hit.variant, Variant::new(0.9, 6));
    }

    #[test]
    fn identity_insert_refreshes_in_place() {
        let mut cache = DominanceCache::new(1 << 20);
        cache.insert("d", Variant::new(1.0, 4), result_of(vec![0, 0]));
        cache.insert("d", Variant::new(1.0, 4), result_of(vec![0, 1]));
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup("d", Variant::new(1.0, 4)).unwrap();
        assert_eq!(hit.result.num_clusters(), 2);
    }

    #[test]
    fn lru_eviction_respects_budget_and_counts() {
        // Each 4-point result costs (4 + members)*4 + 96 bytes; pick a
        // budget that holds exactly two.
        // Mutually non-dominating variants, so each probe below can only
        // be answered by its own exact entry.
        let one = result_bytes(&result_of(vec![0, 0, 1, 1]));
        let mut cache = DominanceCache::new(2 * one);
        cache.insert("d", Variant::new(1.0, 9), result_of(vec![0, 0, 1, 1]));
        cache.insert("d", Variant::new(0.5, 5), result_of(vec![0, 0, 1, 1]));
        // Touch the older entry so the newer one is the LRU victim.
        assert!(cache.lookup("d", Variant::new(1.0, 9)).is_some());
        cache.insert("d", Variant::new(2.0, 20), result_of(vec![0, 0, 1, 1]));
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert!(s.bytes <= s.budget_bytes);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, one as u64);
        assert!(cache.lookup("d", Variant::new(1.0, 9)).is_some());
        assert!(cache.lookup("d", Variant::new(0.5, 5)).is_none());
    }

    #[test]
    fn zero_budget_disables_storage() {
        let mut cache = DominanceCache::new(0);
        cache.insert("d", Variant::new(1.0, 4), result_of(vec![0, 0]));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected_oversize, 1);
        assert!(cache.lookup("d", Variant::new(2.0, 2)).is_none());
    }

    #[test]
    fn invariants_hold_through_churn() {
        let one = result_bytes(&result_of(vec![0, 0, 1, 1]));
        let mut cache = DominanceCache::new(3 * one);
        for i in 0..20u32 {
            let v = Variant::new(0.1 + f64::from(i) * 0.07, 3 + (i as usize % 7));
            cache.insert("d", v, result_of(vec![0, 0, 1, 1]));
            let _ = cache.lookup("d", v);
            cache.check_invariants().unwrap();
        }
        assert!(cache.stats().evictions > 0, "churn must have evicted");
    }

    #[test]
    fn maintain_after_append_repairs_and_drops() {
        let mut cache = DominanceCache::new(1 << 20);
        cache.insert("d", Variant::new(1.0, 4), result_of(vec![0, 0]));
        cache.insert("d", Variant::new(2.0, 4), result_of(vec![0, 1]));
        cache.insert("other", Variant::new(3.0, 4), result_of(vec![0]));
        let stats = cache.maintain_after_append("d", |v, r| {
            if v.eps > 1.5 {
                None // pretend the insertion touched this ε-region
            } else {
                let mut raw: Vec<u32> = r.labels().iter_raw().collect();
                raw.push(u32::MAX); // appended point judged noise
                Some(result_of(raw))
            }
        });
        assert_eq!(
            stats,
            RepairStats {
                repaired: 1,
                dropped: 1
            }
        );
        cache.check_invariants().unwrap();
        let hit = cache.lookup("d", Variant::new(1.0, 4)).unwrap();
        assert_eq!(hit.result.len(), 3, "repaired entry was extended");
        assert!(
            cache
                .lookup("d", Variant::new(2.5, 4))
                .unwrap()
                .result
                .len()
                == 3,
            "dropped entry must not answer; nearest survivor does"
        );
        let untouched = cache.lookup("other", Variant::new(3.0, 4)).unwrap();
        assert_eq!(untouched.result.len(), 1, "other datasets untouched");
        let s = cache.stats();
        assert_eq!((s.repaired, s.repair_dropped), (1, 1));
        assert_eq!(cache.snapshot_entries().len(), 2);
    }

    #[test]
    fn maintain_after_append_re_evicts_to_budget() {
        let small = result_bytes(&result_of(vec![0, 0, 1, 1]));
        let mut cache = DominanceCache::new(2 * small);
        cache.insert("d", Variant::new(1.0, 9), result_of(vec![0, 0, 1, 1]));
        cache.insert("d", Variant::new(0.5, 5), result_of(vec![0, 0, 1, 1]));
        // Repair doubles every entry: the ledger overflows and the LRU
        // must shed entries until the budget holds again.
        cache.maintain_after_append("d", |_, r| {
            let mut raw: Vec<u32> = r.labels().iter_raw().collect();
            raw.extend_from_slice(&[u32::MAX; 8]);
            Some(result_of(raw))
        });
        cache.check_invariants().unwrap();
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn snapshot_entries_order_is_deterministic() {
        // Two caches fed the same entries through *different* histories
        // (insertion order, refreshes, interleaved lookups) must snapshot
        // identically — the warm-state store's repeat-snapshot guarantee.
        let entries = [
            ("b", Variant::new(1.0, 4)),
            ("a", Variant::new(2.0, 4)),
            ("a", Variant::new(1.0, 9)),
            ("a", Variant::new(1.0, 4)),
        ];
        let mut x = DominanceCache::new(1 << 20);
        for (d, v) in entries {
            x.insert(d, v, result_of(vec![0, 0]));
        }
        let mut y = DominanceCache::new(1 << 20);
        for (d, v) in entries.iter().rev() {
            y.insert(d, *v, result_of(vec![0, 0]));
            let _ = y.lookup(d, Variant::new(9.0, 1));
        }
        // Refresh one entry in place; order must not depend on it.
        y.insert("a", Variant::new(1.0, 9), result_of(vec![0, 0]));
        let key = |s: &[(String, Variant, Arc<ClusterResult>)]| -> Vec<(String, u64, usize)> {
            s.iter()
                .map(|(d, v, _)| (d.clone(), v.eps.to_bits(), v.minpts))
                .collect()
        };
        assert_eq!(key(&x.snapshot_entries()), key(&y.snapshot_entries()));
        assert_eq!(
            key(&x.snapshot_entries()),
            vec![
                ("a".to_string(), 1.0f64.to_bits(), 4),
                ("a".to_string(), 1.0f64.to_bits(), 9),
                ("a".to_string(), 2.0f64.to_bits(), 4),
                ("b".to_string(), 1.0f64.to_bits(), 4),
            ]
        );
        // Repeat snapshots of one unchanged cache are identical.
        assert_eq!(key(&x.snapshot_entries()), key(&x.snapshot_entries()));
    }

    #[test]
    fn remap_results_is_counter_neutral() {
        let mut cache = DominanceCache::new(1 << 20);
        cache.insert("d", Variant::new(1.0, 4), result_of(vec![0, 0, 1]));
        cache.insert("d", Variant::new(2.0, 4), result_of(vec![0, 1, 1]));
        cache.insert("other", Variant::new(1.0, 4), result_of(vec![0]));
        let before = cache.stats();
        cache.remap_results("d", |v, r| {
            if v.eps > 1.5 {
                None
            } else {
                // An order-preserving rewrite: same length, same size.
                let mut raw: Vec<u32> = r.labels().iter_raw().collect();
                raw.reverse();
                Some(result_of(raw))
            }
        });
        cache.check_invariants().unwrap();
        let after = cache.stats();
        assert_eq!(after.entries, 2);
        assert_eq!((after.repaired, after.repair_dropped), (0, 0));
        assert_eq!(after.evictions, before.evictions);
        assert_eq!(after.insertions, before.insertions);
        let hit = cache.lookup("d", Variant::new(1.0, 4)).unwrap();
        assert_eq!(
            hit.result.labels().iter_raw().collect::<Vec<_>>(),
            vec![1, 0, 0]
        );
    }

    #[test]
    fn stats_json_is_well_formed() {
        let mut cache = DominanceCache::new(1024);
        cache.insert("d", Variant::new(1.0, 4), result_of(vec![0, 0]));
        let json = cache.stats().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"hits\":0"));
        assert!(json.contains("\"insertions\":1"));
    }
}
