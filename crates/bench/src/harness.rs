//! Measurement utilities shared by the per-table/figure binaries.

use std::time::Duration;

use variantdbscan::{Engine, EngineConfig, RunReport, RunRequest, VariantSet};
use vbp_geom::Point2;

/// Command-line options common to every harness binary.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Per-dataset point cap (`--points`, default 10 000). Ignored when
    /// `full` is set.
    pub points: usize,
    /// Run at the paper's full dataset sizes (`--full`).
    pub full: bool,
    /// Trials per measurement (`--trials`, default 3 like the paper);
    /// the reported value is the mean.
    pub trials: usize,
    /// Worker threads for "T = 16" scenarios (`--threads`, default 16).
    /// On machines with fewer hardware cores the engine still runs 16 OS
    /// threads; DESIGN.md §4 explains how results are reported.
    pub threads: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            points: 10_000,
            full: false,
            trials: 3,
            threads: 16,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    /// Returns the options plus any positional (non-flag) arguments.
    pub fn parse() -> (Self, Vec<String>) {
        let mut opts = Self::default();
        let mut positional = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--points" => opts.points = expect_num(args.next(), "--points"),
                "--trials" => opts.trials = expect_num(args.next(), "--trials").max(1),
                "--threads" => opts.threads = expect_num(args.next(), "--threads").max(1),
                "--full" => opts.full = true,
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--points N] [--full] [--trials K] [--threads T] [positional…]"
                    );
                    std::process::exit(0);
                }
                other if other.starts_with("--") => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
                other => positional.push(other.to_string()),
            }
        }
        (opts, positional)
    }
}

fn expect_num(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a numeric argument");
        std::process::exit(2);
    })
}

/// One timed engine configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Mean wall time across trials.
    pub time: Duration,
    /// The report of the final trial (outcome details, reuse fractions…).
    pub report: RunReport,
}

impl Measurement {
    /// Relative speedup versus a reference time (the paper's y-axis).
    pub fn speedup_vs(&self, reference: Duration) -> f64 {
        reference.as_secs_f64() / self.time.as_secs_f64()
    }
}

/// Runs `config` on `(points, variants)` `trials` times and reports the
/// mean wall time plus the last trial's full report.
pub fn measure(
    config: EngineConfig,
    points: &[Point2],
    variants: &VariantSet,
    trials: usize,
) -> Measurement {
    assert!(trials >= 1);
    let engine = Engine::new(config);
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..trials {
        let report = engine
            .execute(&RunRequest::new(points, variants))
            .expect("bench workload is panic-free");
        total += report.total_time;
        last = Some(report);
    }
    Measurement {
        time: total / trials as u32,
        report: last.unwrap(),
    }
}

/// Formats a duration in engineering-friendly milliseconds or seconds.
pub fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 10.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Renders a crude horizontal bar for terminal figures.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use variantdbscan::Variant;

    #[test]
    fn measure_produces_report() {
        let pts: Vec<Point2> = (0..500)
            .map(|i| Point2::new((i % 25) as f64, (i / 25) as f64))
            .collect();
        let variants = VariantSet::replicated(Variant::new(1.0, 3), 2);
        let m = measure(
            EngineConfig::default().with_threads(1).with_r(8),
            &pts,
            &variants,
            2,
        );
        assert_eq!(m.report.outcomes.len(), 2);
        assert!(m.time > Duration::ZERO);
        assert!(m.speedup_vs(m.time * 2) > 1.9);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(Duration::from_millis(1500)), "1500.0 ms");
        assert_eq!(fmt_time(Duration::from_secs(12)), "12.00 s");
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
