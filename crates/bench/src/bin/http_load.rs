//! HTTP gateway load gate — ≥ 1000 concurrent keep-alive clients.
//!
//! Boots `vbp-service` in-process with both doors open (line protocol +
//! HTTP gateway on loopback), connects exactly [`CLIENTS`] concurrent
//! `HttpClient` connections (each one a real TCP socket held open for
//! the whole run — all of them established before the first request via
//! a barrier rendezvous), then for a fixed
//! wall-clock window (`--trials` is reused as *seconds*, default 3 —
//! the same convention as `soak`) every client issues back-to-back
//! `POST /v1/submit` requests over its single keep-alive connection:
//!
//! - a rotating variant grid around the dataset's k-dist knee, warmed
//!   once before the window so the measurement exercises the gateway
//!   and the admission queue rather than cold clustering;
//! - roughly 1 % of requests ask for full label arrays, so large
//!   responses stay in the mix;
//! - `503` + `Retry-After` answers are counted as load-shed
//!   rejections (never failures) and the client backs off briefly;
//!   any other non-`200` status aborts the run.
//!
//! Every client records per-request latency into its own
//! [`variantdbscan::Histogram`] — the engine's log-bucketed trace
//! histogram — and the per-client histograms are merged (merge is
//! associative, pinned in core) for the reported p50/p99. Concurrently
//! a poller scrapes `GET /v1/stats` and asserts the admission
//! invariant `submitted = completed + failed + in_flight` on every
//! observation; one violation fails the gate. The report (jobs/sec,
//! quantiles, rejection counts, invariant checks) is printed and
//! written to the positional output path (e.g. `results/http_load.txt`).
//!
//! ```text
//! cargo run --release -p vbp-bench --bin http_load -- \
//!     [--points N] [--threads T] [--trials SECONDS] [results/http_load.txt]
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use variantdbscan::{Engine, EngineConfig, Histogram};
use vbp_bench::BenchOpts;
use vbp_service::{HttpClient, Registry, Server, ServiceConfig};

/// Concurrent keep-alive connections — the gate's headline number.
const CLIENTS: usize = 1000;

/// The dataset every client hammers (scaled by `--points`).
const DATASET: &str = "cF_10k_5N";

/// What one client thread brings home.
struct ClientTally {
    hist: Histogram,
    ok: u64,
    rejected: u64,
}

fn main() {
    let (opts, positional) = BenchOpts::parse();
    let threads = opts.threads.min(8);
    let window_secs = opts.trials.max(1) as u64;
    let engine = Engine::new(EngineConfig::default().with_threads(threads).with_r(70));

    let name = if opts.full {
        DATASET.to_string()
    } else {
        format!("{DATASET}@{}", opts.points)
    };
    let registry = Registry::new();
    registry.load(&engine, &name).expect("catalog dataset");
    let knee = registry
        .get(&name)
        .and_then(|e| e.suggested_eps)
        .unwrap_or(1.0);
    let grid: Vec<(f64, usize)> = [0.9, 1.0, 1.1, 1.3]
        .iter()
        .flat_map(|scale| [4usize, 8].map(|minpts| (knee * scale, minpts)))
        .collect();

    let mut handle = Server::start(
        engine,
        registry,
        ServiceConfig {
            queue_cap: 512,
            batch_window: Duration::from_millis(2),
            http_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    let http_addr = handle.http_addr().expect("http gateway bound");

    // Warm the grid through the gateway so the window measures the HTTP
    // path over a hot cache, not eight cold clusterings.
    {
        let mut warm = HttpClient::connect(http_addr).expect("warmup connect");
        warm.set_timeout(Some(Duration::from_secs(600))).unwrap();
        for (eps, minpts) in &grid {
            let body =
                format!(r#"{{"dataset":"{name}","eps":{eps},"minpts":{minpts},"labels":false}}"#);
            let resp = warm.post("/v1/submit", &body).expect("warmup submit");
            assert_eq!(resp.status, 200, "warmup answered {}", resp.body_str());
        }
    }

    println!(
        "http_load: {CLIENTS} keep-alive clients x POST /v1/submit on {name}, \
         {} variants, T = {threads}, {window_secs} s window",
        grid.len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    // Clients connect first, then rendezvous here so all CLIENTS sockets
    // are simultaneously open before the first request is sent.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut workers = Vec::with_capacity(CLIENTS);
    for id in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let name = name.clone();
        let grid = grid.clone();
        workers.push(std::thread::spawn(move || -> ClientTally {
            // The accept backlog is finite and 1000 peers connect at
            // once; retry until the listener drains us in.
            let mut client = loop {
                match HttpClient::connect(http_addr) {
                    Ok(c) => break c,
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            };
            client.set_timeout(Some(Duration::from_secs(600))).unwrap();
            barrier.wait();
            let mut tally = ClientTally {
                hist: Histogram::new(),
                ok: 0,
                rejected: 0,
            };
            let mut i = id;
            while !stop.load(Ordering::Acquire) {
                let (eps, minpts) = grid[i % grid.len()];
                let labels = i % 97 == 0;
                let body = format!(
                    r#"{{"dataset":"{name}","eps":{eps},"minpts":{minpts},"labels":{labels}}}"#
                );
                let t = Instant::now();
                let resp = client.post("/v1/submit", &body).expect("keep-alive submit");
                match resp.status {
                    200 => {
                        tally.hist.record(t.elapsed());
                        tally.ok += 1;
                    }
                    503 => {
                        assert!(
                            resp.header("retry-after").is_some(),
                            "mid-window 503 must be overload, got {}",
                            resp.body_str()
                        );
                        tally.rejected += 1;
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    status => panic!("client {id}: status {status}: {}", resp.body_str()),
                }
                i += 1;
            }
            tally
        }));
    }

    // Invariant poller: scrapes /v1/stats through the gateway for the
    // whole window; every observation must balance.
    let checks = Arc::new(AtomicU64::new(0));
    let poller = {
        let stop = Arc::clone(&stop);
        let checks = Arc::clone(&checks);
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(http_addr).expect("poller connect");
            client.set_timeout(Some(Duration::from_secs(600))).unwrap();
            while !stop.load(Ordering::Acquire) {
                let resp = client.get("/v1/stats").expect("poller GET /v1/stats");
                assert_eq!(resp.status, 200, "stats answered {}", resp.body_str());
                let doc = resp.json().expect("stats body is JSON");
                let get = |key: &str| -> u64 {
                    doc.get(key)
                        .and_then(|v| v.as_f64())
                        .unwrap_or_else(|| panic!("stats missing {key}")) as u64
                };
                assert_eq!(
                    get("submitted"),
                    get("completed") + get("failed") + get("in_flight"),
                    "admission invariant broken mid-run: {}",
                    resp.body_str()
                );
                checks.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs(window_secs));
    stop.store(true, Ordering::Release);

    let mut merged = Histogram::new();
    let mut ok = 0u64;
    let mut rejected = 0u64;
    let mut active_clients = 0u64;
    for w in workers {
        let tally = w.join().expect("client thread panicked");
        if tally.ok + tally.rejected > 0 {
            active_clients += 1;
        }
        ok += tally.ok;
        rejected += tally.rejected;
        merged.merge(&tally.hist);
    }
    poller.join().expect("stats poller panicked");
    let elapsed = t0.elapsed().as_secs_f64();
    let checks = checks.load(Ordering::Relaxed);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "http_load: {CLIENTS} concurrent keep-alive HTTP clients, {name}, \
         {} variants, T = {threads}",
        grid.len()
    );
    let _ = writeln!(
        table,
        "window: {elapsed:.2} s   completed jobs: {ok}   load-shed 503s: {rejected}"
    );
    let _ = writeln!(
        table,
        "throughput: {:>10.1} jobs/sec over the HTTP gateway",
        ok as f64 / elapsed
    );
    let _ = writeln!(
        table,
        "latency (trace histogram, {} samples): p50 {:>9.3} ms   p99 {:>9.3} ms   mean {:>9.3} ms",
        merged.count(),
        merged.quantile_upper_ns(0.50) as f64 / 1e6,
        merged.quantile_upper_ns(0.99) as f64 / 1e6,
        merged.mean_ns() / 1e6
    );
    let _ = writeln!(
        table,
        "admission invariant: {checks} observations, 0 violations (a violation aborts the run)"
    );
    let _ = writeln!(
        table,
        "clients that completed work: {active_clients}/{CLIENTS}"
    );
    print!("{table}");

    let stats = handle.stats_json();
    println!("final STATS: {stats}");
    handle
        .cache_invariants()
        .expect("cache structural self-check");
    let drain0 = Instant::now();
    handle.shutdown();
    println!("drain: {:?} (all threads joined)", drain0.elapsed());

    if let Some(path) = positional.first() {
        std::fs::write(path, &table).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    assert!(ok > 0, "no HTTP submission completed");
    assert!(checks > 0, "the invariant poller never ran");
    assert_eq!(
        active_clients, CLIENTS as u64,
        "every keep-alive client must complete at least one request"
    );
}
