//! S1 — Table II + Figure 4: efficient indexing for variant-parallel
//! clustering.
//!
//! For each S1 dataset, T = 16 threads each cluster one of 16 *identical*
//! variants (so thread-load imbalance cannot confound the result), for
//! `r = 1` (no index optimization) and a sweep of tuned `r` values. The
//! y-axis is relative speedup versus the reference implementation
//! (T = 1, r = 1, sequential, no reuse, clustering all 16 variants).
//!
//! Paper shape to reproduce: `r = 1, T = 16` yields little gain (≤ 2.4×
//! there — memory-bound); tuned `r` in 70–110 yields large gains
//! (7.9×–32× there, +1101% on SW1). On a single hardware core the T = 16
//! gain is algorithmic only, so we additionally report the idealized
//! `T×`-scaled estimate (sum of per-variant times / 16) for the
//! parallel-hardware reading; see DESIGN.md §4.
//!
//! ```text
//! cargo run --release -p vbp-bench --bin s1_indexing [--points N] [--full] [--trials K]
//! ```

use variantdbscan::{EngineConfig, ReuseScheme, VariantSet};
use vbp_bench::harness::fmt_time;
use vbp_bench::scenarios::s1_datasets;
use vbp_bench::{generate, measure, BenchOpts, S1_R_VALUES};

fn main() {
    let (opts, _) = BenchOpts::parse();
    println!(
        "S1 (Table II + Figure 4): indexing, 16 identical variants, T = {}",
        opts.threads
    );
    println!(
        "{:<14} {:>9} | {:>11} | speedup by r (measured, [ideal-parallel])",
        "dataset", "clusters", "reference"
    );

    for (name, variant) in s1_datasets() {
        // S1's point is the size spread 10⁴–10⁶; preserve it under
        // scaling by mapping 1M-class datasets to the cap, 100k-class to
        // cap/10, and 10k-class to cap/100 (floor 500 points).
        let cap = if name.contains("100k") {
            (opts.points / 10).max(500)
        } else if name.contains("10k") {
            (opts.points / 100).max(500)
        } else {
            opts.points
        };
        let (scaled_name, points) = generate(name, cap, opts.full);
        let base = VariantSet::replicated(variant, 16);
        let variants = vbp_bench::adjust_variants_for(name, points.len(), &base);

        // Reference: T = 1, r = 1, sequential, no reuse.
        let reference = measure(EngineConfig::reference(), &points, &variants, opts.trials);
        let clusters = reference.report.outcomes[0].clusters;

        let mut row = String::new();
        for r in S1_R_VALUES {
            // Algorithmic effect of r, cleanly measurable on any machine:
            // the same 16-variant workload run sequentially with the
            // tuned index.
            let seq = measure(
                EngineConfig::default()
                    .with_threads(1)
                    .with_r(r)
                    .with_reuse(ReuseScheme::Disabled) // S1 isolates indexing
                    .with_keep_results(false),
                &points,
                &variants,
                opts.trials,
            );
            let algorithmic = seq.speedup_vs(reference.time);
            // The 16 variants are identical and independent, so T ideal
            // cores would divide the sequential time by T: the paper's
            // T = 16 configuration on real 16-core hardware.
            let ideal =
                reference.time.as_secs_f64() / (seq.time.as_secs_f64() / opts.threads as f64);
            row.push_str(&format!("r={r}:{algorithmic:.2}x[{ideal:.1}x] "));
        }
        // The engine's self-tuning configuration: RChoice::Auto picks r
        // from a sampled sweep at index-build time. Reported next to the
        // fixed-r datapoints so the committed results show what the
        // auto-tuner chose and what it cost/gained.
        let auto = measure(
            EngineConfig::default()
                .with_threads(1)
                .with_auto_r()
                .with_reuse(ReuseScheme::Disabled)
                .with_keep_results(false),
            &points,
            &variants,
            opts.trials,
        );
        let auto_r = auto.report.chosen_r;
        let auto_speedup = auto.speedup_vs(reference.time);
        // One measured T = 16 datapoint documents what this machine's
        // physical core count does to the wall clock.
        let t16 = measure(
            EngineConfig::default()
                .with_threads(opts.threads)
                .with_r(70)
                .with_reuse(ReuseScheme::Disabled)
                .with_keep_results(false),
            &points,
            &variants,
            opts.trials,
        );
        println!(
            "{:<14} {:>9} | {:>11} | {}| auto(r={}): {:.2}x | T{} wall r=70: {:.2}x",
            scaled_name,
            clusters,
            fmt_time(reference.time),
            row,
            auto_r,
            auto_speedup,
            opts.threads,
            t16.speedup_vs(reference.time)
        );
    }

    println!(
        "\nreading: 'r=N:A.AAx[B.Bx]' = algorithmic speedup of the tuned index at \
         T = 1 [projected T = {} with ideal cores, the paper's configuration]. \
         'auto(r=N)' = the engine's RChoice::Auto at T = 1, tuning cost included \
         in its wall clock. The trailing column is the measured T = {} wall-clock \
         on this machine (≈ the algorithmic value when hardware cores < T). Paper \
         shape: r = 1 gains little; r ∈ [70, 110] is the good band.",
        16, 16
    );
}
