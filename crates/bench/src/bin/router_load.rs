//! Router scale-out gate — the same workload against three deployments.
//!
//! Measures engine-bound submit throughput (every request is a fresh
//! variant, so each one costs real clustering work on its backend)
//! through three front doors, same clients, same seeded workload:
//!
//! 1. **direct** — one daemon, clients on its HTTP gateway;
//! 2. **router x1** — the same single daemon behind `vbp route`
//!    (isolates pure router overhead);
//! 3. **router x2** — two daemons behind the router, the catalog
//!    consistent-hashed across them.
//!
//! A stats poller scrapes `/v1/stats` through whichever door is being
//! measured for the whole window and asserts the admission invariant
//! `submitted = completed + failed + in_flight` on every observation
//! (the merged router document must satisfy it too — the sum of
//! consistent snapshots is consistent); one violation aborts the run.
//!
//! After the `router x2` window one backend is shut down and the gate
//! checks per-backend degradation: every request for a surviving
//! dataset still answers `200`, every request for the dead backend's
//! datasets answers a typed `503` (`unavailable` + `Retry-After`).
//!
//! **Adaptive scale gate.** The 2-backend deployment must reach
//! `>= 1.6x` the direct daemon's throughput — but only where that is
//! physically possible: each daemon runs `max(1, cpus/2)` engine
//! threads so the two-backend fleet can actually occupy more cores
//! than the single daemon. On a single-CPU host every deployment
//! timeshares one core and the router can only *cost*; there the gate
//! degrades to correctness (0 invariant violations, kill semantics)
//! plus a bounded-overhead floor (`router x2 >= 0.35x direct`), and
//! the measured scale is recorded for the table instead of gated.
//! `EXPERIMENTS.md` documents the math.
//!
//! ```text
//! cargo run --release -p vbp-bench --bin router_load -- \
//!     [--points N] [--threads T] [--trials SECONDS] [results/router_load.txt]
//! ```

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use variantdbscan::{Engine, EngineConfig};
use vbp_bench::BenchOpts;
use vbp_service::{
    HttpClient, JsonValue, Registry, Router, RouterConfig, Server, ServerHandle, ServiceConfig,
};

/// Concurrent keep-alive clients per measured window.
const CLIENTS: usize = 32;

/// Base dataset family; the catalog scales it to 12 distinct names so
/// the ring has something to partition.
const DATASET: &str = "cF_10k_5N";

/// What one measured window reports.
struct WindowReport {
    label: &'static str,
    ok: u64,
    rejected: u64,
    secs: f64,
}

impl WindowReport {
    fn rate(&self) -> f64 {
        self.ok as f64 / self.secs.max(1e-9)
    }
}

/// A seeded, per-request-unique variant: every submit is fresh engine
/// work, so throughput is backend-bound, not proxy-bound.
fn variant_for(knee: f64, i: u64) -> (f64, usize) {
    let jitter = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 1024;
    let eps = knee * (0.85 + 0.3 * jitter as f64 / 1024.0);
    let minpts = if i.is_multiple_of(2) { 4 } else { 8 };
    (eps, minpts)
}

/// One daemon with the full catalog registered and its HTTP door open.
fn start_backend(catalog: &[String], threads: usize) -> (ServerHandle, f64) {
    let engine = Engine::new(EngineConfig::default().with_threads(threads).with_r(70));
    let registry = Registry::new();
    let mut knee = 1.0;
    for name in catalog {
        registry.load(&engine, name).expect("catalog dataset");
        if let Some(k) = registry.get(name).and_then(|e| e.suggested_eps) {
            knee = k;
        }
    }
    let handle = Server::start(
        engine,
        registry,
        ServiceConfig {
            queue_cap: 512,
            batch_window: Duration::from_millis(2),
            http_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    (handle, knee)
}

/// Drives [`CLIENTS`] keep-alive clients against `addr` for
/// `window_secs`, with the invariant poller riding along. Panics on any
/// violation or non-shed error status.
fn measure(
    label: &'static str,
    addr: SocketAddr,
    catalog: &[String],
    knee: f64,
    window_secs: u64,
    checks_total: &Arc<AtomicU64>,
) -> WindowReport {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut workers = Vec::with_capacity(CLIENTS);
    for id in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let catalog = catalog.to_vec();
        workers.push(std::thread::spawn(move || -> (u64, u64) {
            let mut client = loop {
                match HttpClient::connect(addr) {
                    Ok(c) => break c,
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            };
            client.set_timeout(Some(Duration::from_secs(600))).unwrap();
            barrier.wait();
            let (mut ok, mut rejected) = (0u64, 0u64);
            let mut i = (id as u64) << 32;
            while !stop.load(Ordering::Acquire) {
                let name = &catalog[i as usize % catalog.len()];
                let (eps, minpts) = variant_for(knee, i);
                let body = format!(
                    r#"{{"dataset":"{name}","eps":{eps},"minpts":{minpts},"labels":false}}"#
                );
                let resp = client.post("/v1/submit", &body).expect("keep-alive submit");
                match resp.status {
                    200 => ok += 1,
                    503 => {
                        assert!(
                            resp.header("retry-after").is_some(),
                            "mid-window 503 must carry Retry-After: {}",
                            resp.body_str()
                        );
                        rejected += 1;
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    status => panic!("client {id}: status {status}: {}", resp.body_str()),
                }
                i += 1;
            }
            (ok, rejected)
        }));
    }

    let poller = {
        let stop = Arc::clone(&stop);
        let checks = Arc::clone(checks_total);
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("poller connect");
            client.set_timeout(Some(Duration::from_secs(600))).unwrap();
            while !stop.load(Ordering::Acquire) {
                let resp = client.get("/v1/stats").expect("poller GET /v1/stats");
                assert_eq!(resp.status, 200, "stats answered {}", resp.body_str());
                let doc = resp.json().expect("stats body is JSON");
                let get = |key: &str| -> u64 {
                    doc.get(key)
                        .and_then(JsonValue::as_f64)
                        .unwrap_or_else(|| panic!("stats missing {key}")) as u64
                };
                assert_eq!(
                    get("submitted"),
                    get("completed") + get("failed") + get("in_flight"),
                    "admission invariant broken mid-run ({}): {}",
                    resp.body_str().len(),
                    resp.body_str()
                );
                checks.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs(window_secs));
    stop.store(true, Ordering::Release);
    let (mut ok, mut rejected) = (0u64, 0u64);
    for w in workers {
        let (o, r) = w.join().expect("client thread panicked");
        ok += o;
        rejected += r;
    }
    poller.join().expect("stats poller panicked");
    WindowReport {
        label,
        ok,
        rejected,
        secs: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let (opts, positional) = BenchOpts::parse();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Half the cores per daemon, so the two-backend fleet has headroom
    // the single daemon does not — the whole point of the comparison.
    let threads = (cpus / 2).clamp(1, opts.threads.max(1));
    let window_secs = opts.trials.max(1) as u64;
    let base = opts.points.clamp(200, 2000);
    let catalog: Vec<String> = (0..12)
        .map(|i| format!("{DATASET}@{}", base + 40 * i))
        .collect();

    println!(
        "router_load: {CLIENTS} keep-alive clients, {} datasets @~{base} pts, \
         {threads} engine thread(s)/daemon, {window_secs} s windows, cpus = {cpus}",
        catalog.len()
    );

    let checks = Arc::new(AtomicU64::new(0));

    // Window 1: direct single daemon.
    let direct = {
        let (mut daemon, knee) = start_backend(&catalog, threads);
        let report = measure(
            "direct single daemon",
            daemon.http_addr().unwrap(),
            &catalog,
            knee,
            window_secs,
            &checks,
        );
        daemon.shutdown();
        report
    };

    // Window 2: the same single daemon behind the router.
    let routed1 = {
        let (mut daemon, knee) = start_backend(&catalog, threads);
        let mut router = Router::start(
            RouterConfig::builder()
                .backends(vec![daemon.http_addr().unwrap().to_string()])
                .pool_per_backend(CLIENTS + 2)
                .build()
                .unwrap(),
        )
        .expect("router binds");
        let report = measure(
            "router + 1 backend",
            router.http_addr(),
            &catalog,
            knee,
            window_secs,
            &checks,
        );
        router.shutdown();
        daemon.shutdown();
        report
    };

    // Window 3: two daemons behind the router, then the kill phase.
    let (routed2, survivor_ok, dead_typed) = {
        let (mut b0, knee) = start_backend(&catalog, threads);
        let (mut b1, _) = start_backend(&catalog, threads);
        let addrs = vec![
            b0.http_addr().unwrap().to_string(),
            b1.http_addr().unwrap().to_string(),
        ];
        let mut router = Router::start(
            RouterConfig::builder()
                .backends(addrs.clone())
                .pool_per_backend(CLIENTS + 2)
                .build()
                .unwrap(),
        )
        .expect("router binds");
        let report = measure(
            "router + 2 backends",
            router.http_addr(),
            &catalog,
            knee,
            window_secs,
            &checks,
        );

        // Kill phase: shut one backend down; its datasets must answer
        // typed 503s while the survivor's keep serving.
        let dead_ds: Vec<&String> = catalog
            .iter()
            .filter(|n| router.placement(n) == addrs[1])
            .collect();
        let live_ds: Vec<&String> = catalog
            .iter()
            .filter(|n| router.placement(n) == addrs[0])
            .collect();
        assert!(
            !dead_ds.is_empty() && !live_ds.is_empty(),
            "12 datasets left one backend empty — ring spread is broken"
        );
        b1.shutdown();
        let mut client = HttpClient::connect(router.http_addr()).expect("kill-phase connect");
        client.set_timeout(Some(Duration::from_secs(600))).unwrap();
        let mut survivor_ok = 0u32;
        for i in 0..20u64 {
            let name = live_ds[i as usize % live_ds.len()];
            let (eps, minpts) = variant_for(knee, 0xDEAD_0000 + i);
            let body =
                format!(r#"{{"dataset":"{name}","eps":{eps},"minpts":{minpts},"labels":false}}"#);
            let resp = client.post("/v1/submit", &body).expect("survivor submit");
            assert_eq!(
                resp.status,
                200,
                "survivor dataset {name} failed after the kill: {}",
                resp.body_str()
            );
            survivor_ok += 1;
        }
        let mut dead_typed = 0u32;
        for i in 0..10u64 {
            let name = dead_ds[i as usize % dead_ds.len()];
            let (eps, minpts) = variant_for(knee, 0xD1ED_0000 + i);
            let body =
                format!(r#"{{"dataset":"{name}","eps":{eps},"minpts":{minpts},"labels":false}}"#);
            let resp = client.post("/v1/submit", &body).expect("dead-shard submit");
            assert_eq!(
                resp.status,
                503,
                "dead backend's dataset {name} answered {}: {}",
                resp.status,
                resp.body_str()
            );
            assert!(
                resp.header("retry-after").is_some(),
                "dead-shard 503 lacks Retry-After"
            );
            assert!(
                resp.body_str().contains("unavailable"),
                "dead-shard 503 is not typed: {}",
                resp.body_str()
            );
            dead_typed += 1;
        }
        router.shutdown();
        b0.shutdown();
        (report, survivor_ok, dead_typed)
    };

    let checks = checks.load(Ordering::Relaxed);
    let overhead = routed1.rate() / direct.rate().max(1e-9);
    let scale = routed2.rate() / direct.rate().max(1e-9);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "router_load: {CLIENTS} keep-alive clients, {} datasets @~{base} pts, \
         {threads} engine thread(s)/daemon, {window_secs} s windows, cpus = {cpus}",
        catalog.len()
    );
    for r in [&direct, &routed1, &routed2] {
        let _ = writeln!(
            table,
            "{:<22} {:>10.1} jobs/sec   (ok {}, load-shed {})",
            r.label,
            r.rate(),
            r.ok,
            r.rejected
        );
    }
    let _ = writeln!(
        table,
        "router overhead (x1 vs direct): {overhead:.2}x   scale (x2 vs direct): {scale:.2}x"
    );
    let _ = writeln!(
        table,
        "admission invariant: {checks} observations across all windows, 0 violations"
    );
    let _ = writeln!(
        table,
        "kill phase: survivor datasets {survivor_ok}/20 ok, \
         dead datasets {dead_typed}/10 typed 503 (unavailable + Retry-After)"
    );
    let gate_line = if cpus >= 2 {
        format!("gate: multicore (cpus = {cpus}) — require scale >= 1.6x: measured {scale:.2}x")
    } else {
        format!(
            "gate: single CPU — scale gate waived (ceiling is 1.0x on one core; \
             see EXPERIMENTS.md), measured {scale:.2}x, overhead floor 0.35x: {overhead:.2}x"
        )
    };
    let _ = writeln!(table, "{gate_line}");
    print!("{table}");

    if let Some(path) = positional.first() {
        std::fs::write(path, &table).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    assert!(
        direct.ok > 0 && routed1.ok > 0 && routed2.ok > 0,
        "a window completed no jobs"
    );
    assert!(checks > 0, "the invariant poller never ran");
    assert_eq!(survivor_ok, 20, "survivor datasets must not fail");
    assert_eq!(dead_typed, 10, "dead datasets must answer typed 503s");
    if cpus >= 2 {
        assert!(
            scale >= 1.6,
            "2-backend deployment reached only {scale:.2}x the direct daemon (need 1.6x)"
        );
    } else {
        assert!(
            overhead >= 0.35 && scale >= 0.35,
            "router overhead out of bounds on one CPU: x1 {overhead:.2}x, x2 {scale:.2}x"
        );
    }
}
