//! Shard-scaling probe — how far intra-variant sharding moves the
//! makespan of a single wide variant.
//!
//! Variant-level parallelism (the paper's axis) cannot speed up a run
//! whose variant set is one huge variant: the makespan is that variant's
//! from-scratch clustering time. This bench runs exactly that workload —
//! one variant over an S1-scale cF synthetic dataset — through
//! [`sharded_dbscan`] at shards ∈ {1, 2, 4, 8} and reports, per shard
//! count:
//!
//! - the measured wall time (median of `--trials`) and its speedup over
//!   the single-shard run — on a single-core host the shard teams
//!   serialize, so this column mostly shows the partition/merge overhead
//!   is small;
//! - the **ideal-parallel projection**: the per-shard local-phase times
//!   come from [`ShardStats::local_ns`], so the projected makespan with
//!   one worker per shard is `wall − Σ local + max(local)` (partition,
//!   merge, and the label pass stay sequential). This is the same
//!   measured-plus-projection reporting convention as `results/s1.txt`;
//! - the halo census (border points, cross-shard unions) that bounds the
//!   merge phase.
//!
//! A final verification block runs the same variant through the engine's
//! two-level placement (`RunRequest::sharding`) and cross-checks label
//! equality plus the reported [`ShardTotals`].
//!
//! ```text
//! cargo run --release -p vbp-bench --bin shard_scaling -- \
//!     [--points N] [--trials K] [results/shard_scaling.txt]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use variantdbscan::{Engine, EngineConfig, RunRequest, Sharding, VariantSet};
use vbp_bench::BenchOpts;
use vbp_data::{SyntheticClass, SyntheticSpec};
use vbp_dbscan::{sharded_dbscan, DbscanParams};
use vbp_rtree::PackedRTree;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EPS: f64 = 0.5;
const MINPTS: usize = 4;

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

fn main() {
    let (opts, positional) = BenchOpts::parse();
    let out_path = positional.first().cloned();
    let trials = opts.trials.max(3);
    let n = if opts.full { 100_000 } else { opts.points };
    let points = SyntheticSpec::new(SyntheticClass::CF, n, 0.15, 4242).generate();
    let (tree, _) = PackedRTree::build(&points, 80);
    let params = DbscanParams::new(EPS, MINPTS);

    // Warm-up (page cache, allocator).
    let (reference, _) = sharded_dbscan(&tree, params, 1, 1).unwrap();

    struct Row {
        shards: usize,
        wall_ms: f64,
        ideal_ms: f64,
        border: usize,
        cross: u64,
        used: usize,
    }
    let mut rows: Vec<Row> = Vec::new();
    for shards in SHARD_COUNTS {
        // A team of 1 serializes the shard tasks, so each task's elapsed
        // time is its own work (with a real team on a single-core host,
        // per-task clocks overlap the other tasks' execution and the
        // projection double-counts). The partition/merge structure — and
        // therefore the overhead being measured — is identical.
        let team = 1;
        let mut walls = Vec::with_capacity(trials);
        let mut ideals = Vec::with_capacity(trials);
        let mut last = None;
        for _ in 0..trials {
            let t0 = Instant::now();
            let (result, stats) = sharded_dbscan(&tree, params, shards, team).unwrap();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(result, reference, "sharding must not change labels");
            // Ideal-parallel projection: local phases run one worker per
            // shard, everything else stays sequential.
            let sum_local: u64 = stats.local_ns.iter().sum();
            let max_local: u64 = stats.local_ns.iter().copied().max().unwrap_or(0);
            let ideal_ms = (wall_ms - sum_local as f64 / 1e6 + max_local as f64 / 1e6).max(0.0);
            walls.push(wall_ms);
            ideals.push(ideal_ms);
            last = Some(stats);
        }
        let stats = last.expect("at least one trial");
        rows.push(Row {
            shards,
            wall_ms: median(&walls),
            ideal_ms: median(&ideals),
            border: stats.border_points,
            cross: stats.cross_unions,
            used: stats.shards,
        });
    }

    // Engine cross-check: the same single-variant workload through
    // two-level placement must agree with the kernel and account its
    // shard work in the report.
    let variants = VariantSet::cartesian(&[EPS], &[MINPTS]);
    let engine = Engine::new(EngineConfig::default().with_threads(8).with_r(80));
    let t0 = Instant::now();
    let report = engine
        .execute(&RunRequest::new(&points, &variants).sharding(Sharding::new(8).with_min_points(0)))
        .unwrap();
    let engine_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.sharding.variants, 1, "one sharded variant expected");
    assert_eq!(
        report.results[0].num_clusters(),
        reference.num_clusters(),
        "engine shard path must match the kernel"
    );

    let base = rows[0].wall_ms;
    let ideal_base = rows[0].ideal_ms;
    let mut table = String::new();
    let w = &mut table;
    let _ = writeln!(
        w,
        "# shard_scaling — intra-variant sharded DBSCAN, single wide variant\n\
         # (cargo run --release -p vbp-bench --bin shard_scaling).\n\
         # Machine: 1 CPU core (see EXPERIMENTS.md), so shard teams serialize and\n\
         # the measured column shows overhead only; the [ideal-parallel] column\n\
         # projects one worker per shard from the per-shard local-phase times\n\
         # (same convention as results/s1.txt).\n\
         # cF {} points, eps = {EPS}, minpts = {MINPTS}, r = 80, {trials} trials, medians.\n#",
        points.len(),
    );
    let _ = writeln!(
        w,
        "shards  wall-ms   speedup[ideal-parallel]   border-pts  cross-unions"
    );
    for row in &rows {
        let _ = writeln!(
            w,
            "{:>6}  {:>7.1}   {:>6.2}x[{:.2}x]            {:>8}  {:>10}",
            row.shards,
            row.wall_ms,
            base / row.wall_ms,
            ideal_base / row.ideal_ms,
            row.border,
            row.cross,
        );
        if row.used != row.shards {
            let _ = writeln!(w, "# note: only {} stripes materialized", row.used);
        }
    }
    let _ = writeln!(
        w,
        "#\n# engine two-level placement (threads = 8, Sharding::new(8)): {engine_ms:.1} ms,\n\
         # report.sharding = {} variant(s) / {} shard task(s) / {} border / {} cross-unions.",
        report.sharding.variants,
        report.sharding.shards,
        report.sharding.border_points,
        report.sharding.cross_unions,
    );

    print!("{table}");
    if let Some(path) = out_path {
        std::fs::write(&path, &table).unwrap_or_else(|e| panic!("{path}: {e}"));
        eprintln!("wrote {path}");
    }
}
