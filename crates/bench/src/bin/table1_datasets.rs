//! Table I — characteristics of the 16 evaluation datasets.
//!
//! Regenerates the paper's dataset table, verifying each generator
//! produces the advertised size and (for synthetic classes) noise
//! fraction. With `--full`, sizes match the paper exactly; otherwise the
//! generators are validated at `--points` scale while the full-size
//! column is reported from the spec.
//!
//! ```text
//! cargo run --release -p vbp-bench --bin table1_datasets [--points N] [--full]
//! ```

use vbp_bench::{scale_dataset, BenchOpts};
use vbp_data::table1;

fn main() {
    let (opts, _) = BenchOpts::parse();
    println!("Table I: Characteristics of Datasets");
    println!(
        "{:<14} {:>10} {:>7} | generated at {} scale",
        "Dataset",
        "|D|",
        "Noise",
        if opts.full {
            "full".to_string()
        } else {
            format!("cap={}", opts.points)
        },
    );
    println!("{}", "-".repeat(78));
    for spec in table1() {
        let scaled = scale_dataset(&spec, opts.points, opts.full);
        let points = scaled.generate();
        assert_eq!(points.len(), scaled.size());
        let noise = spec
            .noise_fraction()
            .map_or("N/A".to_string(), |f| format!("{}%", (f * 100.0) as u32));
        let extent = vbp_geom::Extent::of_points(&points).map_or("(empty)".to_string(), |e| {
            format!(
                "[{:.1}, {:.1}] × [{:.1}, {:.1}]",
                e.mbb().min.x,
                e.mbb().max.x,
                e.mbb().min.y,
                e.mbb().max.y
            )
        });
        println!(
            "{:<14} {:>10} {:>7} | {:>8} pts ok  extent {}",
            spec.name(),
            spec.size(),
            noise,
            points.len(),
            extent
        );
    }
}
