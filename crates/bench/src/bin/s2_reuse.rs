//! S2 — Table III + Figures 5, 6, 7a–c: efficient data reuse.
//!
//! T = 1 throughout (the paper isolates reuse from parallelism): the
//! |V| = 24 grid `A = {0.2, 0.4, 0.6} × B = {4, 8, …, 32}` over six 1M
//! synthetic datasets and SW1.
//!
//! Subcommands (positional argument):
//!
//! - `fig5` — per-variant response time + fraction reused on SW1, one
//!   block per reuse scheme (ClusDefault / ClusDensity / ClusPtsSquared);
//! - `fig6` — the same data as (fraction reused, response time) pairs
//!   grouped by ε family, the paper's scatter plot;
//! - `fig7a` — relative speedup per dataset and scheme;
//! - `fig7b` — average fraction reused per dataset;
//! - `fig7c` — quality scores of VariantDBSCAN vs DBSCAN per dataset;
//! - `all` (default) — everything.
//!
//! ```text
//! cargo run --release -p vbp-bench --bin s2_reuse [--points N] [--full] [fig5|fig6|fig7a|fig7b|fig7c|all]
//! ```

use variantdbscan::{EngineConfig, ReuseScheme, Scheduler};
use vbp_bench::harness::{bar, fmt_time};
use vbp_bench::scenarios::{s2_datasets, s2_variants};
use vbp_bench::{generate, measure, BenchOpts, Measurement};
use vbp_dbscan::quality_score;

fn config(scheme: ReuseScheme) -> EngineConfig {
    EngineConfig::default()
        .with_threads(1)
        .with_r(70) // the paper's S2 setting
        .with_scheduler(Scheduler::SchedGreedy)
        .with_reuse(scheme)
}

fn main() {
    let (opts, positional) = BenchOpts::parse();
    let what = positional.first().map_or("all", String::as_str);
    let variants = s2_variants();
    println!(
        "S2 (Table III): |V| = {}, A = {{0.2, 0.4, 0.6}}, B = {{4, 8, …, 32}}, T = 1, r = 70\n",
        variants.len()
    );

    if matches!(what, "fig5" | "fig6" | "all") {
        let (name, points) = generate("SW1", opts.points, opts.full);
        let variants = vbp_bench::adjust_variants_for("SW1", points.len(), &variants);
        let runs: Vec<(ReuseScheme, Measurement)> = ReuseScheme::REUSING
            .iter()
            .map(|&s| (s, measure(config(s), &points, &variants, opts.trials)))
            .collect();

        if matches!(what, "fig5" | "all") {
            println!("Figure 5: per-variant response time and fraction reused ({name})");
            for (scheme, m) in &runs {
                println!("\n  scheme {scheme}  (total {})", fmt_time(m.time));
                println!(
                    "  {:<12} {:>10} {:>8}  time bar",
                    "variant", "time", "reused"
                );
                let max_t = m
                    .report
                    .outcomes
                    .iter()
                    .map(|o| o.response_time().as_secs_f64())
                    .fold(0.0, f64::max);
                for o in &m.report.outcomes {
                    println!(
                        "  {:<12} {:>10} {:>7.1}%  {}",
                        o.variant.to_string(),
                        fmt_time(o.response_time()),
                        o.fraction_reused() * 100.0,
                        bar(o.response_time().as_secs_f64(), max_t, 30)
                    );
                }
            }
            println!();
        }

        if matches!(what, "fig6" | "all") {
            println!("Figure 6: response time vs fraction reused, by ε family ({name})");
            println!(
                "  {:<16} {:<6} {:>8} {:>10}",
                "scheme", "ε", "reused", "time"
            );
            for (scheme, m) in &runs {
                for o in &m.report.outcomes {
                    println!(
                        "  {:<16} {:<6} {:>7.1}% {:>10}",
                        scheme.to_string(),
                        o.variant.eps,
                        o.fraction_reused() * 100.0,
                        fmt_time(o.response_time())
                    );
                }
            }
            println!("  (expected shape: high reuse ⇒ low response time; ε spread widest at low reuse)\n");
        }
    }

    if matches!(what, "fig7a" | "fig7b" | "fig7c" | "all") {
        println!("Figures 7a–c: all S2 datasets, SchedGreedy, r = 70, T = 1");
        println!(
            "  {:<14} {:>11} | {:>9} {:>9} {:>9} | {:>7} | {:>8} {:>8} {:>8}",
            "dataset",
            "reference",
            "Default",
            "Density",
            "PtsSq",
            "reuse%",
            "qDefault",
            "qDensity",
            "qPtsSq"
        );
        for name in s2_datasets() {
            let (scaled_name, points) = generate(name, opts.points, opts.full);
            let variants = vbp_bench::adjust_variants_for(name, points.len(), &variants);
            let reference = measure(EngineConfig::reference(), &points, &variants, opts.trials);
            let mut speedups = Vec::new();
            let mut qualities = Vec::new();
            let mut density_reuse = 0.0;
            for scheme in ReuseScheme::REUSING {
                let m = measure(config(scheme), &points, &variants, opts.trials);
                speedups.push(m.speedup_vs(reference.time));
                if scheme == ReuseScheme::ClusDensity {
                    density_reuse = m.report.mean_fraction_reused();
                }
                // Figure 7c: mean quality across all variants vs the
                // reference run's results (identical tree order, so the
                // results are directly comparable).
                let q = (0..variants.len())
                    .map(|i| {
                        quality_score(&reference.report.results[i], &m.report.results[i]).mean_score
                    })
                    .sum::<f64>()
                    / variants.len() as f64;
                qualities.push(q);
            }
            println!(
                "  {:<14} {:>11} | {:>8.2}x {:>8.2}x {:>8.2}x | {:>6.1}% | {:>8.4} {:>8.4} {:>8.4}",
                scaled_name,
                fmt_time(reference.time),
                speedups[0],
                speedups[1],
                speedups[2],
                density_reuse * 100.0,
                qualities[0],
                qualities[1],
                qualities[2]
            );
        }
        println!(
            "\n  reading: 7a = speedup columns (paper: 6.9×–28×, noisiest datasets lowest);\n\
             \x20 7b = ClusDensity mean reuse (paper: ≥ ~60%); 7c = quality (paper: ≥ 0.998)."
        );
    }
}
