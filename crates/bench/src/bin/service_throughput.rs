//! Service cold-vs-warm throughput — the `vbp-service` acceptance
//! scenario.
//!
//! Boots the daemon in-process with two registered datasets, then drives
//! the same per-dataset variant grid through loopback TCP twice:
//!
//! - **cold** — empty dominance cache, every variant clusters from
//!   scratch (modulo in-batch reuse);
//! - **warm** — the cache now holds round 1's results, so every request
//!   finds a distance-0 reuse source.
//!
//! Reported: wall seconds and variants/second per round, the warm/cold
//! speedup, cache hit counters, and the daemon's final `STATS` line.
//!
//! ```text
//! cargo run --release -p vbp-bench --bin service_throughput [--points N] [--threads T]
//! ```
//!
//! Capture to `results/service_throughput.txt`.

use std::time::Duration;

use variantdbscan::{Engine, EngineConfig};
use vbp_bench::BenchOpts;
use vbp_service::{run_cold_warm_on, Client, Registry, Server, ServiceConfig};

const DATASETS: [&str; 2] = ["cF_10k_5N", "SW1"];

fn main() {
    let (opts, _) = BenchOpts::parse();
    let threads = opts.threads.min(8);
    let config = EngineConfig::default().with_threads(threads).with_r(70);
    let engine = Engine::new(config);

    let registry = Registry::new();
    let mut names = Vec::new();
    for base in DATASETS {
        let name = if opts.full {
            base.to_string()
        } else {
            format!("{base}@{}", opts.points)
        };
        registry.load(&engine, &name).expect("catalog dataset");
        names.push(name);
    }

    // Ten variants per dataset around each k-dist knee — the same grid
    // `vbp bench-service` and the loopback smoke test use.
    let mut requests = Vec::new();
    for name in &names {
        let base = registry
            .get(name)
            .and_then(|e| e.suggested_eps)
            .unwrap_or(1.0);
        for scale in [0.8, 1.0, 1.2, 1.5, 2.0] {
            for minpts in [4usize, 8] {
                requests.push((name.clone(), base * scale, minpts));
            }
        }
    }

    let handle = Server::start(
        engine,
        registry,
        ServiceConfig {
            batch_window: Duration::ZERO,
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    let mut handle = handle;

    println!(
        "service_throughput: {} requests/round over {:?}, T = {threads}, r = 70",
        requests.len(),
        names
    );
    let mut probe = Client::connect(handle.local_addr()).expect("connect probe");
    let report = run_cold_warm_on(&mut probe, &requests).expect("workload");
    probe.quit();
    handle.shutdown();

    println!(
        "{:<6} {:>12} {:>16} {:>11}",
        "round", "seconds", "variants/sec", "cache hits"
    );
    println!(
        "{:<6} {:>12.4} {:>16.1} {:>11}",
        "cold",
        report.cold_secs,
        report.cold_vps(),
        0
    );
    println!(
        "{:<6} {:>12.4} {:>16.1} {:>11}",
        "warm",
        report.warm_secs,
        report.warm_vps(),
        report.warm_hits
    );
    println!("warm speedup over cold: {:.2}×", report.speedup());
    println!("final STATS: {}", report.stats_json);
    assert!(
        report.warm_hits > 0,
        "warm round never hit the cache — reuse is broken"
    );
}
